#!/usr/bin/env bash
# Checks that the committed BENCH_*.json envelopes were produced by the code
# they sit next to.
#
# Every benchmark artifact carries a `"commit"` stamp (written by
# `bench_commit()`: `$BIOCHIP_COMMIT`, or the repo's short HEAD). The stamp
# is allowed to trail HEAD — docs, CI and bench-artifact commits do not
# invalidate measurements — but only while nothing that can change the
# numbers has changed since: if any path under crates/ or a Cargo manifest
# differs between the stamped commit and HEAD, the artifact is stale and CI
# fails until it is regenerated.
#
# BENCH_arch_baseline.json is exempt: it is the pinned pre-refactor
# baseline, intentionally frozen at the commit named in its description.
#
# Usage: ci/check_bench_provenance.sh [repo-root]
set -euo pipefail

root="${1:-.}"
cd "$root"

expected="${BIOCHIP_COMMIT:-$(git rev-parse --short HEAD)}"
failed=0

for artifact in BENCH_*.json; do
  [ -e "$artifact" ] || continue
  case "$artifact" in
    *_baseline.json)
      echo "$artifact: pinned baseline, skipped"
      continue
      ;;
  esac

  stamp=$(sed -n 's/^[[:space:]]*"commit": "\([^"]*\)".*/\1/p' "$artifact" | head -n 1)
  if [ -z "$stamp" ]; then
    echo "$artifact: no commit stamp in the envelope" >&2
    failed=1
    continue
  fi

  # Exact match against the expected stamp (either may be the abbreviated
  # form of the other).
  case "$expected" in
    "$stamp"*)
      echo "$artifact: stamped $stamp (current)"
      continue
      ;;
  esac
  case "$stamp" in
    "$expected"*)
      echo "$artifact: stamped $stamp (current)"
      continue
      ;;
  esac

  # Older stamp: acceptable only when it is an ancestor of HEAD and no
  # result-bearing path changed since.
  if ! git rev-parse --verify --quiet "${stamp}^{commit}" >/dev/null; then
    echo "$artifact: stamped '$stamp', which is not a commit in this repository" >&2
    failed=1
    continue
  fi
  if ! git merge-base --is-ancestor "$stamp" HEAD; then
    echo "$artifact: stamped $stamp, which is not an ancestor of HEAD" >&2
    failed=1
    continue
  fi
  changed=$(git diff --name-only "$stamp" HEAD -- 'crates/' 'Cargo.toml' 'Cargo.lock' || true)
  if [ -n "$changed" ]; then
    echo "$artifact: stamped $stamp but result-bearing paths changed since:" >&2
    echo "$changed" | sed 's/^/  /' >&2
    echo "  regenerate the artifact on the current commit" >&2
    failed=1
  else
    echo "$artifact: stamped $stamp (ancestor, no result-bearing changes since)"
  fi
done

exit "$failed"
