#!/usr/bin/env bash
# Single-thread cold-route perf smoke.
#
# Reads the RA1000 `threads = 1` row out of a freshly generated
# BENCH_pipeline.json and fails when its route stage exceeds a generous
# wall-time ceiling. The ceiling is two orders of magnitude above the
# routinely measured time (< 0.1 s), so it never trips on a slow shared
# runner — it exists to catch the catastrophic regression class: an
# accidentally quadratic path, a lost oracle, a search that stopped
# pruning.
#
# Usage: ci/check_pipeline_perf.sh <BENCH_pipeline.json> [ceiling-seconds]
set -euo pipefail

artifact="${1:?usage: check_pipeline_perf.sh <BENCH_pipeline.json> [ceiling-seconds]}"
ceiling="${2:-5.0}"

route=$(awk '
  /"assay": "RA1000"/ { in_row = 1 }
  in_row && /"threads":/ { threads = $2 + 0 }
  in_row && /"route_seconds":/ {
    if (threads == 1) { print $2 + 0; exit }
    in_row = 0
  }
' "$artifact" | tr -d ',')

if [ -z "$route" ]; then
  echo "$artifact: no RA1000 threads=1 row found" >&2
  exit 1
fi

echo "RA1000 cold route (1 thread): ${route}s (ceiling ${ceiling}s)"
awk -v r="$route" -v c="$ceiling" 'BEGIN { exit !(r <= c) }' || {
  echo "single-thread RA1000 route regressed past the ${ceiling}s ceiling" >&2
  exit 1
}
