#!/usr/bin/env bash
# Runs the in-repo static analyzer over every workspace crate and fails on
# any finding that is neither inline-waived (`// biochip-lint: allow(RULE,
# "reason")`) nor accepted by ci/lint-baseline.tsv, and on baseline entries
# whose finding no longer exists (a stale entry means a fix landed without
# retiring its acceptance — the baseline must shrink with the code).
#
# Usage: ci/lint.sh [repo-root]
set -euo pipefail

root="${1:-.}"
cd "$root"

cargo build --release -q -p biochip-lint
./target/release/biochip-lint --root .
