//! The synthesis result: a planar connection graph plus the routed paths.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::placement::Placement;
use crate::reservation::Interval;
use crate::routing::RoutedPath;
use crate::synthesis::SynthesisStats;
use crate::transport::{TransportKind, TransportTask};

/// One transportation task together with the path that realizes it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedTransport {
    /// The transportation task from the schedule.
    pub task: TransportTask,
    /// The routed path (nodes, edges, occupation window).
    pub path: RoutedPath,
    /// The channel segment caching the sample (store/fetch tasks only).
    pub cache_edge: Option<GridEdgeId>,
}

/// The devices, switches and kept channel segments of a synthesized chip —
/// the "connection graph" of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionGraph {
    grid: ConnectionGrid,
    placement: Placement,
    used_edges: BTreeSet<GridEdgeId>,
}

impl ConnectionGraph {
    /// Builds a connection graph from the grid, the placement and the edges
    /// kept after synthesis.
    #[must_use]
    pub fn new(
        grid: ConnectionGrid,
        placement: Placement,
        used_edges: impl IntoIterator<Item = GridEdgeId>,
    ) -> Self {
        ConnectionGraph {
            grid,
            placement,
            used_edges: used_edges.into_iter().collect(),
        }
    }

    /// The underlying connection grid.
    #[must_use]
    pub fn grid(&self) -> &ConnectionGrid {
        &self.grid
    }

    /// The device placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Channel segments kept in the chip (used by at least one path).
    #[must_use]
    pub fn used_edges(&self) -> &BTreeSet<GridEdgeId> {
        &self.used_edges
    }

    /// Number of kept channel segments (`n_e` in Table 2).
    #[must_use]
    pub fn used_edge_count(&self) -> usize {
        self.used_edges.len()
    }

    /// Switch nodes: grid nodes that are not devices and touch at least one
    /// kept segment.
    #[must_use]
    pub fn switch_nodes(&self) -> Vec<NodeId> {
        self.grid
            .nodes()
            .filter(|&n| {
                self.placement.device_at(n).is_none()
                    && self
                        .grid
                        .incident_edges(n)
                        .iter()
                        .any(|e| self.used_edges.contains(e))
            })
            .collect()
    }

    /// Valve count of the synthesized chip (`n_v` in Table 2).
    ///
    /// Every kept channel segment incident to a switch node needs one valve
    /// at that switch port so the switch can block or admit flow on that
    /// side (Fig. 5(a) of the paper shows the four-valve switch of a full
    /// crossing). Valves inside mixers are not counted, matching the paper.
    #[must_use]
    pub fn valve_count(&self) -> usize {
        self.switch_nodes()
            .iter()
            .map(|&n| {
                self.grid
                    .incident_edges(n)
                    .iter()
                    .filter(|e| self.used_edges.contains(e))
                    .count()
            })
            .sum()
    }

    /// Valve count of the *full* connection grid (all segments kept), the
    /// denominator of the Fig. 8 valve ratio.
    #[must_use]
    pub fn full_grid_valve_count(&self) -> usize {
        self.grid
            .nodes()
            .filter(|&n| self.placement.device_at(n).is_none())
            .map(|n| self.grid.incident_edges(n).len())
            .sum()
    }

    /// Ratio of kept segments to all grid segments (Fig. 8, "Edge").
    #[must_use]
    pub fn edge_ratio(&self) -> f64 {
        if self.grid.num_edges() == 0 {
            0.0
        } else {
            self.used_edge_count() as f64 / self.grid.num_edges() as f64
        }
    }

    /// Ratio of chip valves to full-grid valves (Fig. 8, "Valve").
    #[must_use]
    pub fn valve_ratio(&self) -> f64 {
        let full = self.full_grid_valve_count();
        if full == 0 {
            0.0
        } else {
            self.valve_count() as f64 / full as f64
        }
    }
}

/// The complete result of architectural synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    connection_graph: ConnectionGraph,
    routes: Vec<RoutedTransport>,
    stats: SynthesisStats,
}

impl Architecture {
    /// Builds an architecture from its connection graph and routed paths.
    #[must_use]
    pub fn new(connection_graph: ConnectionGraph, routes: Vec<RoutedTransport>) -> Self {
        Architecture {
            connection_graph,
            routes,
            stats: SynthesisStats::default(),
        }
    }

    /// Attaches the synthesis work counters (see [`SynthesisStats`]).
    #[must_use]
    pub fn with_stats(mut self, stats: SynthesisStats) -> Self {
        self.stats = stats;
        self
    }

    /// Per-stage work counters of the synthesis that produced this chip.
    #[must_use]
    pub fn stats(&self) -> &SynthesisStats {
        &self.stats
    }

    /// The planar connection graph (devices, switches, kept segments).
    #[must_use]
    pub fn connection_graph(&self) -> &ConnectionGraph {
        &self.connection_graph
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &ConnectionGrid {
        self.connection_graph.grid()
    }

    /// The device placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        self.connection_graph.placement()
    }

    /// All routed transportation paths, in routing order.
    #[must_use]
    pub fn routes(&self) -> &[RoutedTransport] {
        &self.routes
    }

    /// Number of kept channel segments (`n_e`).
    #[must_use]
    pub fn used_edge_count(&self) -> usize {
        self.connection_graph.used_edge_count()
    }

    /// Number of valves (`n_v`).
    #[must_use]
    pub fn valve_count(&self) -> usize {
        self.connection_graph.valve_count()
    }

    /// Paths that cache a sample, i.e. the chip's distributed storage events.
    #[must_use]
    pub fn storage_routes(&self) -> Vec<&RoutedTransport> {
        self.routes
            .iter()
            .filter(|r| r.task.kind == TransportKind::Store)
            .collect()
    }

    /// Total transport postponement: the summed time by which routed
    /// transports finish after their schedule-derived deadlines.
    ///
    /// Zero for conflict-free syntheses; positive when the schedule demanded
    /// more simultaneous movements at a device than its ports allow and the
    /// router had to serialize them (the execution of the affected consumer
    /// operations is delayed by at most this much).
    #[must_use]
    pub fn transport_postponement(&self) -> biochip_assay::Seconds {
        self.routes
            .iter()
            .map(|r| r.path.window.end.saturating_sub(r.task.deadline))
            .sum()
    }

    /// Largest single-transport postponement (see
    /// [`transport_postponement`](Self::transport_postponement)).
    #[must_use]
    pub fn max_transport_postponement(&self) -> biochip_assay::Seconds {
        self.routes
            .iter()
            .map(|r| r.path.window.end.saturating_sub(r.task.deadline))
            .max()
            .unwrap_or(0)
    }

    /// Checks the paper's structural invariants on the synthesized chip.
    ///
    /// * every path is connected (consecutive nodes joined by the listed
    ///   edge) and starts/ends at the right device or cache segment,
    /// * paths with overlapping occupation windows share no edge and no
    ///   interior node,
    /// * a segment caching a sample is not used by any path whose window
    ///   overlaps the storage interval,
    /// * the kept-edge set is exactly the union of all path edges.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Inconsistent`] describing the first violation.
    pub fn verify(&self) -> Result<(), ArchError> {
        let grid = self.grid();
        let placement = self.placement();

        // Path-local invariants.
        for route in &self.routes {
            let path = &route.path;
            if path.nodes.is_empty() {
                return Err(ArchError::Inconsistent {
                    reason: format!("empty path for {}", route.task.describe()),
                });
            }
            if path.edges.len() + 1 != path.nodes.len() {
                return Err(ArchError::Inconsistent {
                    reason: format!("path length mismatch for {}", route.task.describe()),
                });
            }
            for (i, &edge) in path.edges.iter().enumerate() {
                let (a, b) = grid.endpoints(edge);
                let (from, to) = (path.nodes[i], path.nodes[i + 1]);
                if !((a == from && b == to) || (a == to && b == from)) {
                    return Err(ArchError::Inconsistent {
                        reason: format!(
                            "edge {edge} does not connect {from} and {to} in {}",
                            route.task.describe()
                        ),
                    });
                }
            }
            match route.task.kind {
                TransportKind::Direct => {
                    let expected_from = placement.node_of(route.task.from_device);
                    let expected_to = placement.node_of(route.task.to_device);
                    if path.nodes.first() != Some(&expected_from)
                        || path.nodes.last() != Some(&expected_to)
                    {
                        return Err(ArchError::Inconsistent {
                            reason: format!(
                                "direct path endpoints are wrong for {}",
                                route.task.describe()
                            ),
                        });
                    }
                }
                TransportKind::Store => {
                    let expected_from = placement.node_of(route.task.from_device);
                    if path.nodes.first() != Some(&expected_from) {
                        return Err(ArchError::Inconsistent {
                            reason: format!(
                                "store path does not start at the producer for {}",
                                route.task.describe()
                            ),
                        });
                    }
                    if route.cache_edge.is_none() || path.edges.last().copied() != route.cache_edge
                    {
                        return Err(ArchError::Inconsistent {
                            reason: format!(
                                "store path does not end in its cache segment for {}",
                                route.task.describe()
                            ),
                        });
                    }
                }
                TransportKind::Fetch => {
                    let expected_to = placement.node_of(route.task.to_device);
                    if path.nodes.last() != Some(&expected_to) {
                        return Err(ArchError::Inconsistent {
                            reason: format!(
                                "fetch path does not end at the consumer for {}",
                                route.task.describe()
                            ),
                        });
                    }
                    if route.cache_edge.is_none() || path.edges.first().copied() != route.cache_edge
                    {
                        return Err(ArchError::Inconsistent {
                            reason: format!(
                                "fetch path does not start from its cache segment for {}",
                                route.task.describe()
                            ),
                        });
                    }
                }
            }
        }

        // Conflicts between concurrently occupied paths, checked per
        // resource: two paths can only collide on an edge (or interior node)
        // that both of them use, so it suffices to sort each resource's
        // occupations by window start and sweep for overlaps — linear in the
        // total path length instead of quadratic in the number of routes.
        // BTreeMaps so that when several resources conflict, *which* one is
        // reported is deterministic (the error text can reach serialized
        // failure reports).
        let mut edge_usage: BTreeMap<GridEdgeId, Vec<(Interval, usize)>> = BTreeMap::new();
        let mut node_usage: BTreeMap<NodeId, Vec<(Interval, usize)>> = BTreeMap::new();
        for (i, route) in self.routes.iter().enumerate() {
            let window = route.path.window;
            if window.is_empty() {
                continue;
            }
            for &edge in &route.path.edges {
                edge_usage.entry(edge).or_default().push((window, i));
            }
            if route.path.nodes.len() > 2 {
                for &node in &route.path.nodes[1..route.path.nodes.len() - 1] {
                    node_usage.entry(node).or_default().push((window, i));
                }
            }
        }
        let sweep = |usage: &mut Vec<(Interval, usize)>| -> Option<(usize, usize)> {
            usage.sort_unstable_by_key(|(w, i)| (w.start, w.end, *i));
            let mut frontier: Option<(Interval, usize)> = None;
            for &(window, i) in usage.iter() {
                if let Some((held, holder)) = frontier {
                    // A route may touch the same resource twice in its own
                    // window (hand-built paths); only cross-route overlaps
                    // are conflicts, matching the old pairwise check.
                    if window.start < held.end && holder != i {
                        return Some((holder, i));
                    }
                }
                if frontier.is_none_or(|(held, _)| window.end > held.end) {
                    frontier = Some((window, i));
                }
            }
            None
        };
        for (edge, usage) in &mut edge_usage {
            if let Some((a, b)) = sweep(usage) {
                return Err(ArchError::Inconsistent {
                    reason: format!(
                        "edge {edge} shared by concurrent paths ({} / {})",
                        self.routes[a].task.describe(),
                        self.routes[b].task.describe()
                    ),
                });
            }
        }
        for (node, usage) in &mut node_usage {
            if let Some((a, b)) = sweep(usage) {
                return Err(ArchError::Inconsistent {
                    reason: format!(
                        "node {node} shared by concurrent paths ({} / {})",
                        self.routes[a].task.describe(),
                        self.routes[b].task.describe()
                    ),
                });
            }
        }

        // Storage exclusivity: no path may use a cached segment while the
        // sample rests in it. Only the paths that traverse the cached
        // segment (already grouped in `edge_usage`) need checking.
        for (i, store) in self.routes.iter().enumerate() {
            let (Some(cache), Some((from, until))) =
                (store.cache_edge, store.task.storage_interval)
            else {
                continue;
            };
            if store.task.kind != TransportKind::Store {
                continue;
            }
            let storage = Interval::new(from, until);
            for &(window, other) in edge_usage.get(&cache).map_or(&[][..], Vec::as_slice) {
                if other != i && window.overlaps(&storage) {
                    return Err(ArchError::Inconsistent {
                        reason: format!(
                            "segment {cache} is used by {} while caching sample {}",
                            self.routes[other].task.describe(),
                            store.task.sample
                        ),
                    });
                }
            }
        }

        // Kept edges = union of path edges.
        let mut union: BTreeSet<GridEdgeId> = BTreeSet::new();
        for route in &self.routes {
            union.extend(route.path.edges.iter().copied());
        }
        if &union != self.connection_graph.used_edges() {
            return Err(ArchError::Inconsistent {
                reason: "kept-edge set does not match the union of path edges".to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoord;
    use biochip_assay::OpId;
    use biochip_schedule::DeviceId;

    fn simple_setup() -> (ConnectionGrid, Placement) {
        let grid = ConnectionGrid::new(1, 3);
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(2)]);
        (grid, placement)
    }

    fn direct_route(grid: &ConnectionGrid) -> RoutedTransport {
        let e01 = grid.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = grid.edge_between(NodeId(1), NodeId(2)).unwrap();
        RoutedTransport {
            task: TransportTask {
                sample: 0,
                producer: OpId(0),
                consumer: OpId(1),
                from_device: DeviceId(0),
                to_device: DeviceId(1),
                kind: TransportKind::Direct,
                window_start: 0,
                window_end: 5,
                storage_interval: None,
                earliest_start: 0,
                deadline: 5,
            },
            path: RoutedPath {
                nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
                edges: vec![e01, e12],
                window: Interval::new(0, 5),
            },
            cache_edge: None,
        }
    }

    #[test]
    fn counts_and_ratios() {
        let (grid, placement) = simple_setup();
        let route = direct_route(&grid);
        let cg = ConnectionGraph::new(grid.clone(), placement, route.path.edges.clone());
        assert_eq!(cg.used_edge_count(), 2);
        // Node 1 is the only switch; both kept edges touch it -> 2 valves.
        assert_eq!(cg.switch_nodes(), vec![NodeId(1)]);
        assert_eq!(cg.valve_count(), 2);
        assert_eq!(cg.full_grid_valve_count(), 2);
        assert!((cg.edge_ratio() - 1.0).abs() < 1e-9);
        assert!((cg.valve_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn verify_accepts_consistent_architecture() {
        let (grid, placement) = simple_setup();
        let route = direct_route(&grid);
        let cg = ConnectionGraph::new(grid, placement, route.path.edges.clone());
        let arch = Architecture::new(cg, vec![route]);
        assert!(arch.verify().is_ok());
    }

    #[test]
    fn verify_rejects_wrong_endpoint() {
        let (grid, placement) = simple_setup();
        let mut route = direct_route(&grid);
        route.path.nodes.reverse();
        route.path.edges.reverse();
        let cg = ConnectionGraph::new(grid, placement, route.path.edges.clone());
        let arch = Architecture::new(cg, vec![route]);
        assert!(matches!(arch.verify(), Err(ArchError::Inconsistent { .. })));
    }

    #[test]
    fn verify_rejects_conflicting_paths() {
        let (grid, placement) = simple_setup();
        let a = direct_route(&grid);
        let mut b = direct_route(&grid);
        b.task.sample = 1;
        // Same window, same edges: conflict.
        let edges = a.path.edges.clone();
        let cg = ConnectionGraph::new(grid, placement, edges);
        let arch = Architecture::new(cg, vec![a, b]);
        assert!(matches!(arch.verify(), Err(ArchError::Inconsistent { .. })));
    }

    #[test]
    fn verify_rejects_mismatched_used_edges() {
        let (grid, placement) = simple_setup();
        let route = direct_route(&grid);
        // Claim only one of the two edges is kept.
        let cg = ConnectionGraph::new(grid, placement, vec![route.path.edges[0]]);
        let arch = Architecture::new(cg, vec![route]);
        assert!(matches!(arch.verify(), Err(ArchError::Inconsistent { .. })));
    }

    #[test]
    fn verify_rejects_disconnected_path() {
        let grid = ConnectionGrid::square(3);
        let placement = Placement::from_nodes(vec![
            grid.node_at(GridCoord { row: 0, col: 0 }),
            grid.node_at(GridCoord { row: 2, col: 2 }),
        ]);
        let e = grid
            .edge_between(
                grid.node_at(GridCoord { row: 0, col: 0 }),
                grid.node_at(GridCoord { row: 0, col: 1 }),
            )
            .unwrap();
        let route = RoutedTransport {
            task: TransportTask {
                sample: 0,
                producer: OpId(0),
                consumer: OpId(1),
                from_device: DeviceId(0),
                to_device: DeviceId(1),
                kind: TransportKind::Direct,
                window_start: 0,
                window_end: 5,
                storage_interval: None,
                earliest_start: 0,
                deadline: 5,
            },
            path: RoutedPath {
                // Jumps from (0,1) to (2,2) without an edge in between.
                nodes: vec![
                    grid.node_at(GridCoord { row: 0, col: 0 }),
                    grid.node_at(GridCoord { row: 0, col: 1 }),
                    grid.node_at(GridCoord { row: 2, col: 2 }),
                ],
                edges: vec![e, e],
                window: Interval::new(0, 5),
            },
            cache_edge: None,
        };
        let cg = ConnectionGraph::new(grid, placement, vec![e]);
        let arch = Architecture::new(cg, vec![route]);
        assert!(matches!(arch.verify(), Err(ArchError::Inconsistent { .. })));
    }

    #[test]
    fn storage_routes_filter() {
        let (grid, placement) = simple_setup();
        let route = direct_route(&grid);
        let cg = ConnectionGraph::new(grid, placement, route.path.edges.clone());
        let arch = Architecture::new(cg, vec![route]);
        assert!(arch.storage_routes().is_empty());
    }
}
