//! The dedicated storage unit baseline (Fig. 1(c) / Fig. 3 of the paper).
//!
//! Previous synthesis flows park every waiting sample in a dedicated storage
//! unit: a bank of side-by-side channel cells addressed through a
//! multiplexer-like valve structure at its port. Compared to distributed
//! channel storage this costs extra valves and — because the port can admit
//! only one sample at a time — serializes concurrent storage accesses,
//! prolonging the assay. This module provides the valve-cost model; the
//! port-queueing execution model lives in `biochip-sim`.

use serde::{Deserialize, Serialize};

/// A dedicated storage unit with a fixed number of storage cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DedicatedStorageUnit {
    cells: usize,
}

impl DedicatedStorageUnit {
    /// Creates a storage unit with the given number of cells (at least one
    /// cell even if the schedule never stores, because previous flows always
    /// provision the unit).
    #[must_use]
    pub fn new(cells: usize) -> Self {
        DedicatedStorageUnit {
            cells: cells.max(1),
        }
    }

    /// Number of storage cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of samples that can enter or leave the unit simultaneously.
    ///
    /// The multiplexer port admits a single transfer at a time — the
    /// bandwidth bottleneck the paper's Fig. 3(c) illustrates.
    #[must_use]
    pub fn port_bandwidth(&self) -> usize {
        1
    }

    /// Valve count of the unit: see [`dedicated_storage_valves`].
    #[must_use]
    pub fn valve_count(&self) -> usize {
        dedicated_storage_valves(self.cells)
    }
}

/// Valve cost of a dedicated storage unit with `cells` cells.
///
/// The model follows the multiplexer-addressed bank of Fig. 1(c):
///
/// * two valves per cell seal the cell at both ends (`2·cells`),
/// * a binary multiplexer selecting one of `cells` cells needs
///   `2·ceil(log2 cells)` valves on the shared address lines,
/// * the port itself is a four-valve switch connecting the unit to the
///   transport network.
///
/// # Examples
///
/// ```
/// use biochip_arch::dedicated_storage_valves;
/// // The eight-cell unit of the paper's Fig. 1(c).
/// assert_eq!(dedicated_storage_valves(8), 8 * 2 + 2 * 3 + 4);
/// ```
#[must_use]
pub fn dedicated_storage_valves(cells: usize) -> usize {
    let cells = cells.max(1);
    let address_bits = usize::BITS as usize - (cells - 1).leading_zeros() as usize;
    2 * cells + 2 * address_bits + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valve_model_matches_formula() {
        assert_eq!(dedicated_storage_valves(1), 2 + 4);
        assert_eq!(dedicated_storage_valves(2), 4 + 2 + 4);
        assert_eq!(dedicated_storage_valves(4), 8 + 4 + 4);
        assert_eq!(dedicated_storage_valves(8), 16 + 6 + 4);
    }

    #[test]
    fn valves_grow_monotonically_with_cells() {
        let mut previous = 0;
        for cells in 1..64 {
            let v = dedicated_storage_valves(cells);
            assert!(v >= previous, "valve count must not shrink");
            previous = v;
        }
    }

    #[test]
    fn unit_accessors() {
        let unit = DedicatedStorageUnit::new(3);
        assert_eq!(unit.cells(), 3);
        assert_eq!(unit.port_bandwidth(), 1);
        assert_eq!(unit.valve_count(), dedicated_storage_valves(3));
    }

    #[test]
    fn zero_cells_is_clamped_to_one() {
        let unit = DedicatedStorageUnit::new(0);
        assert_eq!(unit.cells(), 1);
        assert_eq!(dedicated_storage_valves(0), dedicated_storage_valves(1));
    }
}
