//! Error type for architectural synthesis.

use std::fmt;

use biochip_schedule::DeviceId;

/// Errors produced during architectural synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// The schedule does not satisfy the scheduling constraints.
    InvalidSchedule {
        /// Explanation from the schedule validator.
        reason: String,
    },
    /// The connection grid has fewer nodes than there are devices to place.
    GridTooSmall {
        /// Number of devices to place.
        devices: usize,
        /// Number of grid nodes available.
        nodes: usize,
    },
    /// No conflict-free path could be found for a transportation task.
    RoutingFailed {
        /// Producer-side device of the failed task.
        from: DeviceId,
        /// Consumer-side device of the failed task.
        to: DeviceId,
        /// Human-readable description of the task (kind and time window).
        task: String,
    },
    /// No free channel segment could be found to cache a fluid sample.
    NoStorageSegment {
        /// Description of the storage interval that could not be placed.
        task: String,
    },
    /// An internal consistency check failed (reported by
    /// [`Architecture::verify`](crate::Architecture::verify)).
    Inconsistent {
        /// Explanation of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidSchedule { reason } => {
                write!(f, "schedule is not valid for synthesis: {reason}")
            }
            ArchError::GridTooSmall { devices, nodes } => write!(
                f,
                "connection grid with {nodes} nodes cannot hold {devices} devices"
            ),
            ArchError::RoutingFailed { from, to, task } => {
                write!(f, "no conflict-free path from {from} to {to} for {task}")
            }
            ArchError::NoStorageSegment { task } => {
                write!(f, "no free channel segment to cache sample for {task}")
            }
            ArchError::Inconsistent { reason } => {
                write!(f, "architecture consistency check failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ArchError::GridTooSmall {
            devices: 5,
            nodes: 4,
        };
        assert!(e.to_string().contains("5 devices"));
        let e = ArchError::RoutingFailed {
            from: DeviceId(0),
            to: DeviceId(1),
            task: "direct [10, 15)".to_owned(),
        };
        assert!(e.to_string().contains("d0"));
        assert!(e.to_string().contains("direct"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ArchError>();
    }
}
