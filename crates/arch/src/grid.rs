//! The connection grid: nodes (devices or switches) and orthogonal channel
//! segments (edges).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in the connection grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Dense index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge (channel segment) in the connection grid.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GridEdgeId(pub usize);

impl GridEdgeId {
    /// Dense index of the edge.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GridEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Row/column coordinate of a grid node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridCoord {
    /// Row (0 at the top).
    pub row: usize,
    /// Column (0 at the left).
    pub col: usize,
}

impl GridCoord {
    /// Manhattan distance to another coordinate.
    #[must_use]
    pub fn manhattan(self, other: GridCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

/// A rectangular connection grid (Fig. 6 of the paper).
///
/// Every node can hold either a device or a switch; every edge is a channel
/// segment long enough to cache one fluid sample. Edges connect horizontally
/// and vertically adjacent nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionGrid {
    rows: usize,
    cols: usize,
    /// Edge endpoints, indexed by [`GridEdgeId::index`]; each entry is
    /// `(low node, high node)` with `low < high`.
    edges: Vec<(NodeId, NodeId)>,
    /// For each node, the ids of its incident edges.
    incident: Vec<Vec<GridEdgeId>>,
}

impl ConnectionGrid {
    /// Creates a `rows × cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let num_nodes = rows * cols;
        let mut edges = Vec::new();
        let mut incident = vec![Vec::new(); num_nodes];
        for r in 0..rows {
            for c in 0..cols {
                let here = NodeId(r * cols + c);
                if c + 1 < cols {
                    let right = NodeId(r * cols + c + 1);
                    let id = GridEdgeId(edges.len());
                    edges.push((here, right));
                    incident[here.index()].push(id);
                    incident[right.index()].push(id);
                }
                if r + 1 < rows {
                    let below = NodeId((r + 1) * cols + c);
                    let id = GridEdgeId(edges.len());
                    edges.push((here, below));
                    incident[here.index()].push(id);
                    incident[below.index()].push(id);
                }
            }
        }
        ConnectionGrid {
            rows,
            cols,
            edges,
            incident,
        }
    }

    /// Creates a square `size × size` grid.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn square(size: usize) -> Self {
        ConnectionGrid::new(size, size)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of edges (channel segments).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The node at the given coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the grid.
    #[must_use]
    pub fn node_at(&self, coord: GridCoord) -> NodeId {
        assert!(
            coord.row < self.rows && coord.col < self.cols,
            "coordinate outside grid"
        );
        NodeId(coord.row * self.cols + coord.col)
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this grid.
    #[must_use]
    pub fn coord(&self, node: NodeId) -> GridCoord {
        assert!(node.index() < self.num_nodes(), "node outside grid");
        GridCoord {
            row: node.index() / self.cols,
            col: node.index() % self.cols,
        }
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = GridEdgeId> {
        (0..self.num_edges()).map(GridEdgeId)
    }

    /// The two endpoint nodes of an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not belong to this grid.
    #[must_use]
    pub fn endpoints(&self, edge: GridEdgeId) -> (NodeId, NodeId) {
        self.edges[edge.index()]
    }

    /// Edges incident to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this grid.
    #[must_use]
    pub fn incident_edges(&self, node: NodeId) -> &[GridEdgeId] {
        &self.incident[node.index()]
    }

    /// Nodes adjacent to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this grid.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.incident_edges(node)
            .iter()
            .map(|&e| self.other_endpoint(e, node))
            .collect()
    }

    /// The endpoint of `edge` that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `edge`.
    #[must_use]
    pub fn other_endpoint(&self, edge: GridEdgeId, node: NodeId) -> NodeId {
        let (a, b) = self.endpoints(edge);
        if a == node {
            b
        } else {
            assert_eq!(b, node, "node is not an endpoint of the edge");
            a
        }
    }

    /// The edge between two adjacent nodes, if any.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<GridEdgeId> {
        self.incident[a.index()]
            .iter()
            .copied()
            .find(|&e| self.other_endpoint(e, a) == b)
    }

    /// Manhattan distance between two nodes.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.coord(a).manhattan(self.coord(b))
    }

    /// A short textual description such as `"4×4"` (the `G` column of
    /// Table 2).
    #[must_use]
    pub fn dimensions(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }
}

impl fmt::Display for ConnectionGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} connection grid ({} nodes, {} segments)",
            self.rows,
            self.cols,
            self.num_nodes(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_counts() {
        let g = ConnectionGrid::square(4);
        assert_eq!(g.num_nodes(), 16);
        // 2 * 4 * 3 = 24 edges in a 4x4 grid.
        assert_eq!(g.num_edges(), 24);
        let g = ConnectionGrid::new(2, 3);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 7);
    }

    #[test]
    fn coords_roundtrip() {
        let g = ConnectionGrid::new(3, 5);
        for node in g.nodes() {
            assert_eq!(g.node_at(g.coord(node)), node);
        }
    }

    #[test]
    fn corner_and_center_degrees() {
        let g = ConnectionGrid::square(3);
        let corner = g.node_at(GridCoord { row: 0, col: 0 });
        let center = g.node_at(GridCoord { row: 1, col: 1 });
        assert_eq!(g.incident_edges(corner).len(), 2);
        assert_eq!(g.incident_edges(center).len(), 4);
        assert_eq!(g.neighbors(center).len(), 4);
    }

    #[test]
    fn edge_between_adjacent_nodes() {
        let g = ConnectionGrid::square(3);
        let a = g.node_at(GridCoord { row: 0, col: 0 });
        let b = g.node_at(GridCoord { row: 0, col: 1 });
        let c = g.node_at(GridCoord { row: 2, col: 2 });
        let e = g.edge_between(a, b).expect("adjacent");
        assert_eq!(g.edge_between(b, a), Some(e));
        assert_eq!(g.edge_between(a, c), None);
        assert_eq!(g.other_endpoint(e, a), b);
    }

    #[test]
    fn distances() {
        let g = ConnectionGrid::square(4);
        let a = g.node_at(GridCoord { row: 0, col: 0 });
        let b = g.node_at(GridCoord { row: 3, col: 2 });
        assert_eq!(g.distance(a, b), 5);
        assert_eq!(g.distance(a, a), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = ConnectionGrid::new(0, 3);
    }

    #[test]
    fn dimensions_string() {
        assert_eq!(ConnectionGrid::new(4, 5).dimensions(), "4x5");
    }

    proptest! {
        #[test]
        fn edge_endpoints_are_adjacent(rows in 1usize..6, cols in 1usize..6) {
            let g = ConnectionGrid::new(rows, cols);
            // Expected edge count for a grid graph.
            prop_assert_eq!(g.num_edges(), rows * (cols - 1) + cols * (rows - 1));
            for e in g.edges() {
                let (a, b) = g.endpoints(e);
                prop_assert_eq!(g.distance(a, b), 1);
                prop_assert!(g.incident_edges(a).contains(&e));
                prop_assert!(g.incident_edges(b).contains(&e));
            }
        }
    }
}
