//! ILP-based path construction on the connection grid (eqs. 8–13).
//!
//! The paper formulates architectural synthesis as an ILP: 0-1 variables
//! select which grid edges every transportation path covers, concurrent paths
//! may not share edges or nodes, and the number of edges used at least once
//! is minimized. This module provides that exact formulation for small
//! instances — it is used to validate the scalable heuristic
//! [`Router`](crate::Router) and to reproduce the paper's "resource usage is
//! confined to a few edges" observation exactly. Instead of the paper's
//! degree-counting constraints (eq. 9) it uses an equivalent single-commodity
//! flow formulation per path, which avoids the big-M constructions and keeps
//! the model small enough for the in-repo branch & bound solver.

use biochip_ilp::{Model, SolverOptions, VarId};

use crate::error::ArchError;
use crate::grid::{ConnectionGrid, NodeId};
use crate::placement::Placement;
use crate::reservation::Interval;
use crate::routing::RoutedPath;

/// A set of transportation requests to be routed simultaneously by the ILP.
#[derive(Debug, Clone)]
pub struct IlpRoutingProblem<'a> {
    /// The connection grid.
    pub grid: &'a ConnectionGrid,
    /// Device placement (device nodes may only be path endpoints).
    pub placement: &'a Placement,
    /// Requests as `(source node, target node, occupation window)`.
    pub requests: Vec<(NodeId, NodeId, Interval)>,
}

/// Routes all requests exactly, minimizing the number of distinct edges used
/// (the paper's objective, eq. 12), with per-arc tie-breaking so that paths
/// contain no superfluous cycles.
///
/// # Errors
///
/// Returns [`ArchError::RoutingFailed`]-style errors wrapped as
/// [`ArchError::Inconsistent`] if the model is infeasible (no conflict-free
/// set of paths exists) and propagates solver failures.
pub fn route_with_ilp(
    problem: &IlpRoutingProblem<'_>,
    options: &SolverOptions,
) -> Result<Vec<RoutedPath>, ArchError> {
    let grid = problem.grid;
    let num_requests = problem.requests.len();
    if num_requests == 0 {
        return Ok(Vec::new());
    }

    let mut model = Model::new("arch-routing");

    // Arc variables: x[r][e][dir], dir 0 = low->high endpoint, 1 = reverse.
    let mut arc: Vec<Vec<[VarId; 2]>> = Vec::with_capacity(num_requests);
    for (r, _) in problem.requests.iter().enumerate() {
        let mut per_edge = Vec::with_capacity(grid.num_edges());
        for e in grid.edges() {
            let forward = model.add_binary(format!("x_r{r}_e{}_f", e.index()));
            let backward = model.add_binary(format!("x_r{r}_e{}_b", e.index()));
            per_edge.push([forward, backward]);
        }
        arc.push(per_edge);
    }

    // Kept-edge indicators s_e >= every arc over e (eq. 11).
    let mut kept: Vec<VarId> = Vec::with_capacity(grid.num_edges());
    for e in grid.edges() {
        let s = model.add_binary(format!("s_e{}", e.index()));
        for (r, _) in problem.requests.iter().enumerate() {
            for (dir, &arc_var) in arc[r][e.index()].iter().enumerate() {
                model.add_ge(
                    format!("keep_e{}_r{r}_{dir}", e.index()),
                    [(s, 1.0), (arc_var, -1.0)],
                    0.0,
                );
            }
        }
        kept.push(s);
    }

    // Flow conservation per request and node; foreign device nodes are
    // excluded entirely (their arcs are forced to zero).
    for (r, &(source, target, _)) in problem.requests.iter().enumerate() {
        for node in grid.nodes() {
            let is_foreign_device =
                problem.placement.device_at(node).is_some() && node != source && node != target;
            // out(node) - in(node).
            let mut balance: Vec<(VarId, f64)> = Vec::new();
            let mut incident_arcs: Vec<(VarId, f64)> = Vec::new();
            for &e in grid.incident_edges(node) {
                let (low, high) = grid.endpoints(e);
                let [forward, backward] = arc[r][e.index()];
                let (out_var, in_var) = if node == low {
                    (forward, backward)
                } else {
                    debug_assert_eq!(node, high);
                    (backward, forward)
                };
                balance.push((out_var, 1.0));
                balance.push((in_var, -1.0));
                incident_arcs.push((out_var, 1.0));
                incident_arcs.push((in_var, 1.0));
            }
            if is_foreign_device {
                model.add_eq(
                    format!("blocked_r{r}_n{}", node.index()),
                    incident_arcs,
                    0.0,
                );
                continue;
            }
            let rhs = if node == source {
                1.0
            } else if node == target {
                -1.0
            } else {
                0.0
            };
            model.add_eq(format!("flow_r{r}_n{}", node.index()), balance, rhs);
            // Intermediate nodes are visited at most once per path (prevents
            // a path from crossing itself at a switch).
            if node != source && node != target {
                let inbound: Vec<(VarId, f64)> = grid
                    .incident_edges(node)
                    .iter()
                    .map(|&e| {
                        let (low, _) = grid.endpoints(e);
                        let [forward, backward] = arc[r][e.index()];
                        if node == low {
                            (backward, 1.0)
                        } else {
                            (forward, 1.0)
                        }
                    })
                    .collect();
                model.add_le(format!("visit_r{r}_n{}", node.index()), inbound, 1.0);
            }
        }
    }

    // Time multiplexing (eq. 10): requests with overlapping windows may not
    // share an edge, nor meet at an intermediate node.
    for r1 in 0..num_requests {
        for r2 in (r1 + 1)..num_requests {
            let w1 = problem.requests[r1].2;
            let w2 = problem.requests[r2].2;
            if !w1.overlaps(&w2) {
                continue;
            }
            for e in grid.edges() {
                model.add_le(
                    format!("share_e{}_r{r1}_r{r2}", e.index()),
                    [
                        (arc[r1][e.index()][0], 1.0),
                        (arc[r1][e.index()][1], 1.0),
                        (arc[r2][e.index()][0], 1.0),
                        (arc[r2][e.index()][1], 1.0),
                    ],
                    1.0,
                );
            }
            let endpoints = [
                problem.requests[r1].0,
                problem.requests[r1].1,
                problem.requests[r2].0,
                problem.requests[r2].1,
            ];
            for node in grid.nodes() {
                if endpoints.contains(&node) {
                    continue;
                }
                // At most one of the two paths may enter this node.
                let mut entering: Vec<(VarId, f64)> = Vec::new();
                for &r in &[r1, r2] {
                    for &e in grid.incident_edges(node) {
                        let (low, _) = grid.endpoints(e);
                        let [forward, backward] = arc[r][e.index()];
                        entering.push(if node == low {
                            (backward, 1.0)
                        } else {
                            (forward, 1.0)
                        });
                    }
                }
                model.add_le(format!("meet_n{}_r{r1}_r{r2}", node.index()), entering, 1.0);
            }
        }
    }

    // Objective (eq. 12): minimize kept edges, with a small per-arc term so
    // optimal paths contain no gratuitous detours.
    let mut objective: Vec<(VarId, f64)> = kept.iter().map(|&s| (s, 100.0)).collect();
    for per_edge in &arc {
        for arcs in per_edge {
            objective.push((arcs[0], 1.0));
            objective.push((arcs[1], 1.0));
        }
    }
    model.minimize(objective);

    let result = biochip_ilp::solve(&model, options).map_err(|e| ArchError::Inconsistent {
        reason: format!("architectural ILP failed: {e}"),
    })?;
    let Some(solution) = result.solution else {
        return Err(ArchError::Inconsistent {
            reason: "architectural ILP found no conflict-free routing".to_owned(),
        });
    };

    // Walk each path from its source following selected arcs.
    let mut paths = Vec::with_capacity(num_requests);
    for (r, &(source, target, window)) in problem.requests.iter().enumerate() {
        let mut nodes = vec![source];
        let mut edges = Vec::new();
        let mut current = source;
        let mut guard = 0;
        while current != target {
            guard += 1;
            if guard > grid.num_edges() + 1 {
                return Err(ArchError::Inconsistent {
                    reason: format!("request {r}: selected arcs do not form a path"),
                });
            }
            let mut advanced = false;
            for &e in grid.incident_edges(current) {
                let (low, _) = grid.endpoints(e);
                let [forward, backward] = arc[r][e.index()];
                let out_var = if current == low { forward } else { backward };
                if solution.is_set(out_var) && edges.last() != Some(&e) {
                    let next = grid.other_endpoint(e, current);
                    nodes.push(next);
                    edges.push(e);
                    current = next;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Err(ArchError::Inconsistent {
                    reason: format!("request {r}: path stops before reaching its target"),
                });
            }
        }
        paths.push(RoutedPath {
            nodes,
            edges,
            window,
        });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoord;
    use std::time::Duration;

    fn options() -> SolverOptions {
        SolverOptions::default()
            .with_time_limit(Duration::from_secs(30))
            .with_node_limit(200_000)
    }

    #[test]
    fn single_request_gets_a_shortest_path() {
        let grid = ConnectionGrid::square(3);
        let a = grid.node_at(GridCoord { row: 0, col: 0 });
        let b = grid.node_at(GridCoord { row: 2, col: 2 });
        let placement = Placement::from_nodes(vec![a, b]);
        let problem = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![(a, b, Interval::new(0, 5))],
        };
        let paths = route_with_ilp(&problem, &options()).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].edges.len(), 4, "Manhattan distance is 4");
        assert_eq!(paths[0].nodes.first(), Some(&a));
        assert_eq!(paths[0].nodes.last(), Some(&b));
    }

    #[test]
    fn sequential_requests_share_edges_concurrent_do_not() {
        let grid = ConnectionGrid::new(2, 3);
        let a = grid.node_at(GridCoord { row: 0, col: 0 });
        let b = grid.node_at(GridCoord { row: 0, col: 2 });
        let placement = Placement::from_nodes(vec![a, b]);

        // Two transports in disjoint windows: minimizing kept edges makes
        // them share one route of length 2.
        let problem = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![(a, b, Interval::new(0, 5)), (a, b, Interval::new(10, 15))],
        };
        let paths = route_with_ilp(&problem, &options()).unwrap();
        let mut used: std::collections::BTreeSet<crate::grid::GridEdgeId> =
            std::collections::BTreeSet::new();
        for p in &paths {
            used.extend(p.edges.iter().copied());
        }
        assert_eq!(used.len(), 2, "sequential paths reuse the same segments");

        // The same two transports with overlapping windows need disjoint
        // paths, so more edges are kept.
        let problem = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![(a, b, Interval::new(0, 5)), (a, b, Interval::new(0, 5))],
        };
        let paths = route_with_ilp(&problem, &options()).unwrap();
        for e in &paths[0].edges {
            assert!(!paths[1].edges.contains(e), "concurrent paths share {e}");
        }
    }

    #[test]
    fn concurrent_paths_cannot_cross_at_a_node() {
        let grid = ConnectionGrid::square(3);
        // Devices at the four edge-midpoints; both transports have to pass
        // through the centre switch because the corners dead-end into the
        // other devices.
        let north = grid.node_at(GridCoord { row: 0, col: 1 });
        let south = grid.node_at(GridCoord { row: 2, col: 1 });
        let west = grid.node_at(GridCoord { row: 1, col: 0 });
        let east = grid.node_at(GridCoord { row: 1, col: 2 });
        let placement = Placement::from_nodes(vec![north, south, west, east]);
        let centre = grid.node_at(GridCoord { row: 1, col: 1 });

        // Concurrent windows: sharing the centre switch is forbidden, so no
        // conflict-free routing exists at all.
        let concurrent = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![
                (north, south, Interval::new(0, 5)),
                (west, east, Interval::new(0, 5)),
            ],
        };
        assert!(route_with_ilp(&concurrent, &options()).is_err());

        // With disjoint windows both paths are routed, each through the
        // centre (time multiplexing of the same switch).
        let sequential = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![
                (north, south, Interval::new(0, 5)),
                (west, east, Interval::new(10, 15)),
            ],
        };
        let paths = route_with_ilp(&sequential, &options()).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert!(p.nodes.contains(&centre));
        }
    }

    #[test]
    fn infeasible_routing_is_reported() {
        // Two concurrent transports between the two ends of a 1x2 grid: only
        // one edge exists, so the second path cannot be routed.
        let grid = ConnectionGrid::new(1, 2);
        let a = NodeId(0);
        let b = NodeId(1);
        let placement = Placement::from_nodes(vec![a, b]);
        let problem = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![(a, b, Interval::new(0, 5)), (b, a, Interval::new(0, 5))],
        };
        assert!(route_with_ilp(&problem, &options()).is_err());
    }

    #[test]
    fn empty_request_list_is_trivial() {
        let grid = ConnectionGrid::square(2);
        let placement = Placement::from_nodes(vec![NodeId(0)]);
        let problem = IlpRoutingProblem {
            grid: &grid,
            placement: &placement,
            requests: vec![],
        };
        assert!(route_with_ilp(&problem, &options()).unwrap().is_empty());
    }
}
