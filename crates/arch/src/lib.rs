//! Architectural synthesis with distributed channel storage.
//!
//! This crate implements Section 3.2 of the paper. Starting from a schedule
//! (operations bound to devices with start/end times), it
//!
//! 1. extracts every **transportation task** between devices, splitting long
//!    waits into *store → cache-in-channel → fetch* triples
//!    ([`transport`]),
//! 2. places the devices on a square **connection grid**
//!    ([`ConnectionGrid`], [`placement`]),
//! 3. routes every transportation path over grid edges connected by
//!    switches, with **time multiplexing**: paths whose time windows overlap
//!    may not share an edge or an intersection node, and a channel segment
//!    caching a fluid sample is blocked for its entire storage interval
//!    (its two end nodes stay usable, as in the paper) ([`routing`]),
//! 4. keeps only the edges actually used, yielding the planar
//!    [`ConnectionGraph`] and its valve count ([`synthesis`]),
//! 5. and provides the **dedicated storage unit** baseline against which the
//!    paper compares (valve cost of a multiplexer-addressed cell bank and its
//!    port-bandwidth limit) ([`dedicated`]).
//!
//! # Example
//!
//! ```
//! use biochip_assay::library;
//! use biochip_schedule::{ListScheduler, ScheduleProblem, Scheduler};
//! use biochip_arch::{ArchitectureSynthesizer, SynthesisOptions};
//!
//! let problem = ScheduleProblem::new(library::pcr()).with_mixers(2);
//! let schedule = ListScheduler::default().schedule(&problem)?;
//! let synthesizer = ArchitectureSynthesizer::new(SynthesisOptions::default());
//! let architecture = synthesizer.synthesize(&problem, &schedule)?;
//! assert!(architecture.used_edge_count() > 0);
//! assert!(architecture.verify().is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connection_graph;
mod dedicated;
mod error;
mod grid;
mod ilp_route;
mod placement;
mod reservation;
mod routing;
mod synthesis;
mod transport;

pub use connection_graph::{Architecture, ConnectionGraph, RoutedTransport};
pub use dedicated::{dedicated_storage_valves, DedicatedStorageUnit};
pub use error::ArchError;
pub use grid::{ConnectionGrid, GridCoord, GridEdgeId, NodeId};
pub use ilp_route::{route_with_ilp, IlpRoutingProblem};
pub use placement::{place_devices, Placement, PlacementOptions};
pub use reservation::{Interval, ReservationTable};
pub use routing::{Router, RoutingOptions};
pub use synthesis::{ArchitectureSynthesizer, SynthesisOptions};
pub use transport::{extract_transport_tasks, TransportKind, TransportTask};

/// Re-exported scheduling types used in this crate's public API.
pub use biochip_schedule::{DeviceId, Schedule, ScheduleProblem};
