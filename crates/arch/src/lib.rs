//! Architectural synthesis with distributed channel storage.
//!
//! This crate implements Section 3.2 of the paper. Starting from a schedule
//! (operations bound to devices with start/end times), it
//!
//! 1. extracts every **transportation task** between devices, splitting long
//!    waits into *store → cache-in-channel → fetch* triples
//!    ([`transport`]),
//! 2. places the devices on a square **connection grid**
//!    ([`ConnectionGrid`], [`placement`]),
//! 3. routes every transportation path over grid edges connected by
//!    switches, with **time multiplexing**: paths whose time windows overlap
//!    may not share an edge or an intersection node, and a channel segment
//!    caching a fluid sample is blocked for its entire storage interval
//!    (its two end nodes stay usable, as in the paper) ([`routing`]),
//! 4. keeps only the edges actually used, yielding the planar
//!    [`ConnectionGraph`] and its valve count ([`synthesis`]),
//! 5. and provides the **dedicated storage unit** baseline against which the
//!    paper compares (valve cost of a multiplexer-addressed cell bank and its
//!    port-bandwidth limit) ([`dedicated`]).
//!
//! # Scaling to 10k-op assays
//!
//! Place & route runs on indexed data structures so the 1k/10k-operation
//! transport-task streams produced by the list scheduler are absorbed
//! without quadratic hot paths:
//!
//! * every grid edge and node owns a sorted, coalesced **reservation
//!   calendar** ([`ReservationCalendar`]) with `O(log n)` occupancy queries
//!   and a [`first_free`](ReservationCalendar::first_free) primitive that
//!   hands the router feasible windows directly,
//! * store tasks pick their cache segment through a per-device-pair
//!   **segment index** (distance-sorted, lazily priced) instead of scanning
//!   every grid edge,
//! * placement refinement prices annealing moves by **delta cost** from the
//!   traffic-matrix rows of the touched devices,
//! * [`Router::route`] is an explicit staged pipeline — window selection →
//!   path search → commit — whose per-stage effort ([`RouterStats`]) is
//!   surfaced through [`SynthesisStats`] and the synthesis report, and
//! * the connection grid is sized from the schedule's **peak concurrent
//!   storage**, so scale assays get a grid with enough channel segments to
//!   cache their samples up front.
//!
//! # Example
//!
//! ```
//! use biochip_assay::library;
//! use biochip_schedule::{ListScheduler, ScheduleProblem, Scheduler};
//! use biochip_arch::{ArchitectureSynthesizer, SynthesisOptions};
//!
//! let problem = ScheduleProblem::new(library::pcr()).with_mixers(2);
//! let schedule = ListScheduler::default().schedule(&problem)?;
//! let synthesizer = ArchitectureSynthesizer::new(SynthesisOptions::default());
//! let architecture = synthesizer.synthesize(&problem, &schedule)?;
//! assert!(architecture.used_edge_count() > 0);
//! assert!(architecture.verify().is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod connection_graph;
mod dedicated;
mod error;
mod grid;
mod ilp_route;
mod oracle;
mod parallel;
mod placement;
mod reservation;
mod route_plan;
mod routing;
mod segment_index;
mod synthesis;
mod transport;

pub use connection_graph::{Architecture, ConnectionGraph, RoutedTransport};
pub use dedicated::{dedicated_storage_valves, DedicatedStorageUnit};
pub use error::ArchError;
pub use grid::{ConnectionGrid, GridCoord, GridEdgeId, NodeId};
pub use ilp_route::{route_with_ilp, IlpRoutingProblem};
pub use oracle::{OracleCache, RoutingOracle};
pub use parallel::Parallelism;
pub use placement::{place_devices, place_devices_threaded, Placement, PlacementOptions};
pub use reservation::{Interval, ReservationCalendar, ReservationTable};
pub use route_plan::validate_route_plan;
pub use routing::{RoutedPath, Router, RouterStats, RoutingOptions};
pub use synthesis::{
    ArchitectureSynthesizer, SynthesisOptions, SynthesisStats, WarmReuse, WarmStart,
};
pub use transport::{extract_transport_tasks, TransportKind, TransportTask};

/// Re-exported scheduling types used in this crate's public API.
pub use biochip_schedule::{DeviceId, Schedule, ScheduleProblem};
