//! Precomputed per-architecture routing oracle.
//!
//! Once placement lands, the grid topology and device assignment are frozen
//! for the lifetime of the architecture — but the router used to rebuild its
//! placement-derived lookup tables per [`Router`](crate::Router) and pay
//! full path searches even for queries that are statically or locally
//! doomed. The [`RoutingOracle`] hoists everything derivable from the frozen
//! `(grid, placement)` pair into one immutable, `Arc`-shared structure built
//! exactly once per architecture:
//!
//! - **Dense device tables** — `device_of_node` and the per-node adjacent
//!   device-port counts, the O(1) lookups on the Dijkstra hot path,
//!   previously rebuilt by every router (per grid attempt, per warm
//!   restart, per job).
//! - **Transit components** — connected components of the switch graph (the
//!   grid minus device nodes). Device placement can wall transit regions off
//!   from each other; a node in the wrong component can never lie on a path
//!   to the target, whatever the reservation calendars say. The router uses
//!   this as an *h = ∞* tightening of its admissible A* bound: such nodes
//!   are never pushed onto the frontier.
//! - **Port skeletons** — for every device node, the set of transit
//!   components its ports open into, so source/target components resolve in
//!   O(1) during a search.
//!
//! The oracle carries no [`RoutingOptions`](crate::RoutingOptions): it is a
//! pure function of topology and placement, so strict and
//! deadline-relaxed routing passes — and concurrent server jobs on the same
//! architecture — all share one build through the [`OracleCache`].
//!
//! Everything the oracle feeds back into the router is *reject-only*: it
//! refuses searches and candidates the exact search would also have failed,
//! and prunes frontier nodes that provably cannot reach the target. The
//! routed chips are byte-identical with the oracle on or off; only the work
//! counters shrink.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use biochip_schedule::DeviceId;
use biochip_telemetry as telemetry;

use crate::grid::{ConnectionGrid, NodeId};
use crate::placement::Placement;

/// Component id marking device nodes, which are not part of the transit
/// fabric.
const NO_COMPONENT: u32 = u32::MAX;

/// Maximum distinct transit components a single device node can border (grid
/// degree).
const MAX_PORT_COMPONENTS: usize = 4;

/// The resolved reachability target of one path search: either the transit
/// component the (switch) destination lies in, or the set of components a
/// device destination's ports open into.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OracleTarget {
    components: [u32; MAX_PORT_COMPONENTS],
    len: u8,
}

impl OracleTarget {
    #[inline]
    fn contains(&self, component: u32) -> bool {
        self.components[..self.len as usize].contains(&component)
    }
}

/// Immutable per-architecture search structure shared by every router over
/// the same `(grid, placement)` pair. See the module docs for what it holds
/// and why each piece is sound.
#[derive(Debug)]
pub struct RoutingOracle {
    rows: usize,
    cols: usize,
    num_devices: usize,
    /// Device occupying each grid node, if any (dense O(1) lookup).
    pub(crate) device_of_node: Vec<Option<DeviceId>>,
    /// For each node, how many device nodes are adjacent to it (a switch
    /// next to a device is one of that device's ports). One byte per node:
    /// the router's relax loop only needs the count (corrected for the
    /// search endpoints), and the flat array stays cache-resident.
    pub(crate) adjacent_device_count: Vec<u8>,
    /// Number of transit components (`next_component` after the flood).
    /// When the placement leaves a single component the per-edge
    /// reachability test can never prune and the router skips it wholesale.
    transit_component_count: u32,
    /// Transit-component id per node; [`NO_COMPONENT`] for device nodes.
    component: Vec<u32>,
    /// For each node, the transit components reachable in one hop — the
    /// node's own component for switches, the port components for devices.
    reach: Vec<OracleTarget>,
}

impl RoutingOracle {
    /// Builds the oracle for one frozen `(grid, placement)` pair. Linear in
    /// the grid size; traced as a `route.oracle_build` span so the one-time
    /// cost stays attributable next to the searches it amortizes over.
    #[must_use]
    pub fn build(grid: &ConnectionGrid, placement: &Placement) -> Self {
        let _span = telemetry::span("router", "route.oracle_build");
        let nodes = grid.num_nodes();
        let mut device_of_node = vec![None; nodes];
        for (device, &node) in placement.device_nodes().iter().enumerate() {
            device_of_node[node.index()] = Some(DeviceId(device));
        }
        let mut adjacent_device_count = vec![0u8; nodes];
        for &device_node in placement.device_nodes() {
            for &edge in grid.incident_edges(device_node) {
                let port = grid.other_endpoint(edge, device_node);
                adjacent_device_count[port.index()] += 1;
            }
        }

        // Flood-fill the switch graph (device nodes excluded) into components.
        let mut component = vec![NO_COMPONENT; nodes];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut next_component = 0u32;
        for start in grid.nodes() {
            if device_of_node[start.index()].is_some() || component[start.index()] != NO_COMPONENT {
                continue;
            }
            component[start.index()] = next_component;
            stack.push(start);
            while let Some(node) = stack.pop() {
                for &edge in grid.incident_edges(node) {
                    let next = grid.other_endpoint(edge, node);
                    if device_of_node[next.index()].is_none()
                        && component[next.index()] == NO_COMPONENT
                    {
                        component[next.index()] = next_component;
                        stack.push(next);
                    }
                }
            }
            next_component += 1;
        }

        let mut reach = Vec::with_capacity(nodes);
        for node in grid.nodes() {
            let mut target = OracleTarget {
                components: [NO_COMPONENT; MAX_PORT_COMPONENTS],
                len: 0,
            };
            let mut push = |c: u32| {
                if c != NO_COMPONENT && !target.contains(c) {
                    target.components[target.len as usize] = c;
                    target.len += 1;
                }
            };
            if device_of_node[node.index()].is_some() {
                // A device is reachable exactly through the components its
                // ports open into.
                for &edge in grid.incident_edges(node) {
                    let port = grid.other_endpoint(edge, node);
                    push(component[port.index()]);
                }
            } else {
                push(component[node.index()]);
            }
            reach.push(target);
        }

        RoutingOracle {
            rows: grid.rows(),
            cols: grid.cols(),
            num_devices: placement.len(),
            device_of_node,
            adjacent_device_count,
            component,
            reach,
            transit_component_count: next_component,
        }
    }

    /// Whether this oracle was built for the given grid and placement shape.
    #[must_use]
    pub fn matches(&self, grid: &ConnectionGrid, placement: &Placement) -> bool {
        self.rows == grid.rows() && self.cols == grid.cols() && self.num_devices == placement.len()
    }

    /// Number of transit components the device placement splits the switch
    /// graph into.
    #[must_use]
    pub fn transit_components(&self) -> usize {
        self.transit_component_count as usize
    }

    /// The reachability target for a search destination.
    #[inline]
    pub(crate) fn target_of(&self, to: NodeId) -> OracleTarget {
        self.reach[to.index()]
    }

    /// Whether a transit node can lie on a path that reaches `target`.
    #[inline]
    pub(crate) fn reaches(&self, node: NodeId, target: &OracleTarget) -> bool {
        target.contains(self.component[node.index()])
    }
}

/// Cache key: the architecture identity an oracle is valid for. `scope` is
/// the placement-stage content key when a [`StageStore`] provides one (so
/// distinct problems can never collide), plus the grid shape and the exact
/// device placement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OracleKey {
    scope: Option<String>,
    rows: usize,
    cols: usize,
    devices: Vec<usize>,
}

/// Shared build-once store of [`RoutingOracle`]s, keyed by architecture
/// identity. One lives inside the server's `StageCaches` (so concurrent and
/// warm jobs on the same architecture share one build); synthesis runs
/// without a store fall back to a private instance, which still shares the
/// build across a run's strict/relaxed passes and repeated grid attempts.
///
/// Builds happen *under* the entry lock: when two jobs race on the same
/// architecture, the second blocks for the few milliseconds the first needs
/// rather than duplicating the build.
#[derive(Debug, Default)]
pub struct OracleCache {
    entries: Mutex<HashMap<OracleKey, Arc<RoutingOracle>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

/// Entry ceiling: an architecture oracle is a few hundred KB at storage
/// scale, and a server mixes at most a handful of live grid shapes. On
/// overflow the map is cleared wholesale (same policy as the warm-start
/// store) — correctness never depends on a hit.
const ORACLE_CACHE_CAPACITY: usize = 64;

impl OracleCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        OracleCache::default()
    }

    /// Returns the oracle for `(grid, placement)`, building and inserting it
    /// on first sight. The boolean is `true` when this call performed the
    /// build.
    pub fn get_or_build(
        &self,
        scope: Option<&str>,
        grid: &ConnectionGrid,
        placement: &Placement,
    ) -> (Arc<RoutingOracle>, bool) {
        let key = OracleKey {
            scope: scope.map(str::to_owned),
            rows: grid.rows(),
            cols: grid.cols(),
            devices: placement.device_nodes().iter().map(|n| n.index()).collect(),
        };
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(oracle) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(oracle), false);
        }
        if entries.len() >= ORACLE_CACHE_CAPACITY {
            entries.clear();
        }
        let oracle = Arc::new(RoutingOracle::build(grid, placement));
        entries.insert(key, Arc::clone(&oracle));
        self.builds.fetch_add(1, Ordering::Relaxed);
        (oracle, true)
    }

    /// Oracles built (cache misses) since creation.
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Lookups answered from the cache since creation.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Oracles currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no oracle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoord;

    fn placement_at(grid: &ConnectionGrid, coords: &[(usize, usize)]) -> Placement {
        Placement::from_nodes(
            coords
                .iter()
                .map(|&(row, col)| grid.node_at(GridCoord { row, col }))
                .collect(),
        )
    }

    #[test]
    fn open_grid_is_one_component() {
        let grid = ConnectionGrid::square(6);
        let placement = placement_at(&grid, &[(0, 0), (2, 3)]);
        let oracle = RoutingOracle::build(&grid, &placement);
        assert_eq!(oracle.transit_components(), 1);
        let device = grid.node_at(GridCoord { row: 2, col: 3 });
        let far = grid.node_at(GridCoord { row: 5, col: 5 });
        let target = oracle.target_of(device);
        assert!(oracle.reaches(far, &target));
    }

    #[test]
    fn walled_corner_splits_components() {
        // Devices at (0,1) and (1,0) wall the corner switch (0,0) off from
        // the rest of the fabric.
        let grid = ConnectionGrid::square(5);
        let placement = placement_at(&grid, &[(0, 1), (1, 0)]);
        let oracle = RoutingOracle::build(&grid, &placement);
        assert_eq!(oracle.transit_components(), 2);
        let corner = grid.node_at(GridCoord { row: 0, col: 0 });
        let open = grid.node_at(GridCoord { row: 4, col: 4 });
        assert!(!oracle.reaches(corner, &oracle.target_of(open)));
        assert!(oracle.reaches(corner, &oracle.target_of(corner)));
        // Both devices border both components: reachable from either side.
        let walled_device = grid.node_at(GridCoord { row: 0, col: 1 });
        assert!(oracle.reaches(corner, &oracle.target_of(walled_device)));
        assert!(oracle.reaches(open, &oracle.target_of(walled_device)));
    }

    #[test]
    fn cache_builds_once_per_architecture() {
        let grid = ConnectionGrid::square(6);
        let placement = placement_at(&grid, &[(0, 0), (2, 3)]);
        let cache = OracleCache::new();
        let (first, built) = cache.get_or_build(Some("scope-a"), &grid, &placement);
        assert!(built);
        let (second, built) = cache.get_or_build(Some("scope-a"), &grid, &placement);
        assert!(!built);
        assert!(Arc::ptr_eq(&first, &second));
        // A different scope is a different architecture, even on the same
        // grid shape.
        let (_, built) = cache.get_or_build(Some("scope-b"), &grid, &placement);
        assert!(built);
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }
}
