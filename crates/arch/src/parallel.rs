//! Intra-job parallelism configuration.
//!
//! A single cold synthesis job can spread its work over several cores while
//! staying **bit-identical to the sequential result**: every parallel section
//! of the synthesizer evaluates candidates that are pure functions of a
//! frozen snapshot of the router/placement state, and the winner is always
//! reduced by candidate *index* (never by completion order). Running with
//! one thread, eight threads, or eight threads on one core therefore
//! produces the same chip, the same stage counters and the same report —
//! parallelism is an execution policy, not part of a job's identity. (The
//! job service exploits exactly that: `parallelism` is stripped from the
//! content key of a submission, so a result computed with 8 threads answers
//! a later 1-thread submission of the same problem.)
//!
//! The three parallel sections are
//!
//! * the **multi-start placement annealer** — K independent refinement
//!   starts, each with its own RNG stream split from the seed
//!   ([`split_seed`]; start 0 uses the seed unchanged, so K = 1 reproduces
//!   the original stream exactly), winner chosen by `(cost, start index)`;
//! * the router's **window scoring** — candidate occupation windows of a
//!   transport task are priced concurrently against an immutable calendar
//!   snapshot, and the earliest feasible window (by candidate order)
//!   commits;
//! * the router's **store-candidate scoring** — cache-segment pricing and
//!   claim probing for a store task are batched over the worker set, again
//!   reduced by candidate order.

use serde::{Deserialize, Serialize};

/// How many worker threads a single synthesis job may use.
///
/// This knob never changes the synthesized chip — only how fast it is
/// found. It is therefore deliberately *not* part of the result identity:
/// the job service strips it before hashing a submission into its content
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads for one synthesis job. `0` means "all available
    /// cores" ([`std::thread::available_parallelism`]); `1` (the default)
    /// runs the classic sequential path with no pool at all.
    pub threads: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism { threads: 1 }
    }
}

impl Parallelism {
    /// Sequential execution (the default).
    #[must_use]
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// Use every core the host offers.
    #[must_use]
    pub fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// A fixed thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// The concrete worker count this configuration resolves to on the
    /// current host (always at least 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// Splits an RNG seed into per-start streams for the multi-start annealer.
///
/// Start 0 returns the seed **unchanged**, so a single-start run reproduces
/// the historical stream (and thus the committed goldens) bit for bit.
/// Later starts are decorrelated through a SplitMix64-style mix of the seed
/// and the start index.
#[must_use]
pub fn split_seed(seed: u64, start: usize) -> u64 {
    if start == 0 {
        return seed;
    }
    let mut z = seed ^ (start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_zero_keeps_the_seed() {
        for seed in [0, 1, 0xC0FFEE, u64::MAX] {
            assert_eq!(split_seed(seed, 0), seed);
        }
    }

    #[test]
    fn later_starts_decorrelate() {
        let streams: Vec<u64> = (0..8).map(|k| split_seed(0xC0FFEE, k)).collect();
        let mut unique = streams.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), streams.len(), "{streams:?}");
    }

    #[test]
    fn effective_threads_is_at_least_one() {
        assert_eq!(Parallelism::sequential().effective_threads(), 1);
        assert_eq!(Parallelism::with_threads(5).effective_threads(), 5);
        assert!(Parallelism::auto().effective_threads() >= 1);
    }

    #[test]
    fn parallelism_round_trips_as_json() {
        use serde::{Deserialize, Serialize};
        let p = Parallelism::with_threads(4);
        let back = Parallelism::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }
}
