//! Device placement on the connection grid.
//!
//! Devices that exchange many fluid samples should sit close together so that
//! transportation paths stay short and use few channel segments. Placement
//! runs in two stages: a greedy constructive placement ordered by traffic,
//! followed by an optional simulated-annealing refinement (seeded, hence
//! deterministic) that swaps/moves devices to reduce the total
//! traffic-weighted Manhattan distance.
//!
//! The refinement evaluates every candidate move **incrementally**: a swap or
//! move only changes the cost terms of the touched devices, so the delta is
//! computed from the affected [`TrafficMatrix`] rows in `O(devices)` instead
//! of recomputing the full `O(devices²)` [`Placement::weighted_cost`] per
//! step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use biochip_schedule::DeviceId;

use crate::error::ArchError;
use crate::grid::{ConnectionGrid, GridCoord, NodeId};
use crate::transport::TransportTask;

/// Options for the placement stage.
///
/// `Deserialize` is hand-written (not derived) so that documents from
/// before the multi-start annealer existed — which lack the `starts`
/// field — still load with the single-start behaviour they were written
/// under.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlacementOptions {
    /// Run the simulated-annealing refinement after greedy placement.
    pub refine: bool,
    /// Number of annealing moves per start.
    pub annealing_moves: usize,
    /// RNG seed for the refinement (placement is deterministic in this seed).
    pub seed: u64,
    /// Independent annealing starts. Each start refines the greedy
    /// placement with its own RNG stream split from `seed`
    /// ([`split_seed`](crate::parallel::split_seed)); the winner is the
    /// start with the lowest cost, ties broken by start index, so the
    /// result is deterministic no matter how many threads refine the starts
    /// concurrently. The default of 1 reproduces the single-chain annealer
    /// (and its committed goldens) exactly.
    pub starts: usize,
    /// Allow a warm start: when an edit-loop caller supplies a prior
    /// placement whose inputs (grid, traffic matrix, these options) are
    /// identical to the current ones, the placer adopts it instead of
    /// re-annealing. Adoption is gated on *exact* input equality — seeding
    /// the anneal with a prior placement under changed traffic would
    /// produce a result a cold run cannot reproduce, breaking the
    /// byte-identity contract of the warm-start differential suite — so a
    /// warm placement is always bit-identical to what the annealer would
    /// have found. `true` by default; set `false` to force cold placement.
    pub warm_start: bool,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        PlacementOptions {
            refine: true,
            annealing_moves: 2_000,
            seed: 0xC0FFEE,
            starts: 1,
            warm_start: true,
        }
    }
}

impl serde::Deserialize for PlacementOptions {
    fn from_json(value: &serde::Json) -> Result<Self, serde::JsonError> {
        Ok(PlacementOptions {
            refine: value.field("refine")?,
            annealing_moves: value.field("annealing_moves")?,
            seed: value.field("seed")?,
            // Absent in pre-multi-start documents: those ran one chain.
            starts: match value.get("starts") {
                Some(raw) => serde::Deserialize::from_json(raw)?,
                None => 1,
            },
            // Absent in pre-warm-start documents: warm adoption is safe by
            // construction (exact-input gate), so it defaults on.
            warm_start: match value.get("warm_start") {
                Some(raw) => serde::Deserialize::from_json(raw)?,
                None => true,
            },
        })
    }
}

/// A placement of devices onto grid nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Node occupied by each device, indexed by [`DeviceId::index`].
    node_of_device: Vec<NodeId>,
}

impl Placement {
    /// Creates a placement from explicit device → node assignments (device
    /// `i` occupies `nodes[i]`). Useful for tests and for replaying a
    /// placement produced elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if two devices share a node.
    #[must_use]
    pub fn from_nodes(nodes: Vec<NodeId>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for node in &nodes {
            assert!(seen.insert(*node), "two devices share node {node}");
        }
        Placement {
            node_of_device: nodes,
        }
    }

    /// The node a device occupies.
    ///
    /// # Panics
    ///
    /// Panics if the device was not placed.
    #[must_use]
    pub fn node_of(&self, device: DeviceId) -> NodeId {
        self.node_of_device[device.index()]
    }

    /// The device occupying a node, if any.
    #[must_use]
    pub fn device_at(&self, node: NodeId) -> Option<DeviceId> {
        self.node_of_device
            .iter()
            .position(|&n| n == node)
            .map(DeviceId)
    }

    /// Nodes occupied by devices, in device order.
    #[must_use]
    pub fn device_nodes(&self) -> &[NodeId] {
        &self.node_of_device
    }

    /// Number of placed devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.node_of_device.len()
    }

    /// Whether no device is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_of_device.is_empty()
    }

    /// Total traffic-weighted Manhattan distance of this placement.
    #[must_use]
    pub fn weighted_cost(&self, grid: &ConnectionGrid, traffic: &TrafficMatrix) -> usize {
        let mut cost = 0;
        for a in 0..self.len() {
            for b in (a + 1)..self.len() {
                let weight = traffic.weight(DeviceId(a), DeviceId(b));
                if weight > 0 {
                    cost += weight * grid.distance(self.node_of_device[a], self.node_of_device[b]);
                }
            }
        }
        cost
    }
}

/// Symmetric device-to-device traffic counts derived from transport tasks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficMatrix {
    counts: Vec<Vec<usize>>,
}

impl TrafficMatrix {
    /// Builds the traffic matrix for `num_devices` devices from transport
    /// tasks.
    #[must_use]
    pub fn from_tasks(num_devices: usize, tasks: &[TransportTask]) -> Self {
        let mut counts = vec![vec![0usize; num_devices]; num_devices];
        for task in tasks {
            let a = task.from_device.index();
            let b = task.to_device.index();
            if a != b && a < num_devices && b < num_devices {
                counts[a][b] += 1;
                counts[b][a] += 1;
            }
        }
        TrafficMatrix { counts }
    }

    /// Number of transports between two devices.
    #[must_use]
    pub fn weight(&self, a: DeviceId, b: DeviceId) -> usize {
        self.counts
            .get(a.index())
            .and_then(|row| row.get(b.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Total traffic of one device.
    #[must_use]
    pub fn total(&self, a: DeviceId) -> usize {
        self.counts
            .get(a.index())
            .map(|row| row.iter().sum())
            .unwrap_or(0)
    }

    /// Number of devices covered by this matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the matrix covers no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Places `num_devices` devices on the grid, minimizing traffic-weighted
/// distance.
///
/// Devices are spread out (never adjacent to each other when the grid allows
/// it) so that every device keeps free channel segments around it for
/// transportation and caching.
///
/// # Errors
///
/// Returns [`ArchError::GridTooSmall`] if the grid has fewer nodes than
/// devices.
pub fn place_devices(
    grid: &ConnectionGrid,
    num_devices: usize,
    tasks: &[TransportTask],
    options: &PlacementOptions,
) -> Result<Placement, ArchError> {
    place_devices_threaded(grid, num_devices, tasks, options, 1)
}

/// Like [`place_devices`], but refining the [`PlacementOptions::starts`]
/// independent annealing starts on up to `threads` worker threads.
///
/// The thread count never changes the result: every start runs its own
/// seed-split RNG stream and the winner is reduced by `(cost, start
/// index)`, so one thread and eight threads pick the same placement.
///
/// # Errors
///
/// Returns [`ArchError::GridTooSmall`] if the grid has fewer nodes than
/// devices.
pub fn place_devices_threaded(
    grid: &ConnectionGrid,
    num_devices: usize,
    tasks: &[TransportTask],
    options: &PlacementOptions,
    threads: usize,
) -> Result<Placement, ArchError> {
    if num_devices > grid.num_nodes() {
        return Err(ArchError::GridTooSmall {
            devices: num_devices,
            nodes: grid.num_nodes(),
        });
    }
    let traffic = TrafficMatrix::from_tasks(num_devices, tasks);

    // Candidate positions: prefer nodes on a regular sub-lattice so devices
    // are separated by switch nodes (this keeps segments free for caching),
    // then fall back to all nodes. Small grids use the paper's every-other-
    // node spacing; storage-sized grids (side ≥ 12 with room to spare)
    // spread devices four apart so the corridors between them are several
    // channels wide — transit, caching and zero-slack port traffic then
    // stop competing for the same single-segment alleys.
    let side = grid.rows().max(grid.cols());
    let wide_lattice_fits = (side / 4 + 1).pow(2) >= num_devices;
    let spacing = if side >= 12 && wide_lattice_fits {
        4
    } else {
        2
    };
    let mut preferred: Vec<NodeId> = grid
        .nodes()
        .filter(|&n| {
            let c = grid.coord(n);
            c.row.is_multiple_of(spacing) && c.col.is_multiple_of(spacing)
        })
        .collect();
    if preferred.len() < num_devices {
        preferred = grid
            .nodes()
            .filter(|&n| {
                let c = grid.coord(n);
                c.row.is_multiple_of(2) && c.col.is_multiple_of(2)
            })
            .collect();
    }
    if preferred.len() < num_devices {
        preferred = grid.nodes().collect();
    }

    // Greedy: place devices in order of decreasing traffic; each at the free
    // preferred node minimizing weighted distance to already placed devices,
    // starting near the grid centre.
    let mut order: Vec<DeviceId> = (0..num_devices).map(DeviceId).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(traffic.total(d)));

    let centre = GridCoord {
        row: grid.rows() / 2,
        col: grid.cols() / 2,
    };
    let mut node_of_device = vec![NodeId(usize::MAX); num_devices];
    let mut occupied: Vec<NodeId> = Vec::new();
    for &device in &order {
        let best = preferred
            .iter()
            .copied()
            .filter(|n| !occupied.contains(n))
            .min_by_key(|&candidate| {
                let mut cost = 0usize;
                for &placed in &order {
                    let node = node_of_device[placed.index()];
                    if node != NodeId(usize::MAX) {
                        cost +=
                            traffic.weight(device, placed) * grid.distance(candidate, node) * 10;
                    }
                }
                // Tie-break: stay near the centre.
                (cost, grid.coord(candidate).manhattan(centre), candidate)
            })
            .expect("grid has enough nodes");
        node_of_device[device.index()] = best;
        occupied.push(best);
    }
    let placement = Placement { node_of_device };

    if !(options.refine && num_devices > 1) {
        return Ok(placement);
    }
    let starts = options.starts.max(1);
    if starts == 1 {
        // The historical single-chain path: same seed, same stream, same
        // placement as before multi-start existed.
        let mut refined = placement;
        refine(
            grid,
            &traffic,
            &mut refined,
            &preferred,
            options,
            options.seed,
        );
        return Ok(refined);
    }

    let workers = threads.max(1).min(starts);
    let slots: Vec<std::sync::Mutex<Option<(i64, Placement)>>> =
        (0..starts).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let run = || loop {
        let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if k >= starts {
            break;
        }
        let mut candidate = placement.clone();
        let cost = refine(
            grid,
            &traffic,
            &mut candidate,
            &preferred,
            options,
            crate::parallel::split_seed(options.seed, k),
        );
        *slots[k]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((cost, candidate));
    };
    if workers <= 1 {
        run();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                // `&run` trips needless_borrows_for_generic_args, the
                // closure trips redundant_closure; the closure reads better.
                #[allow(clippy::redundant_closure)]
                scope.spawn(|| run());
            }
            run();
        });
    }

    // Deterministic reduction: lowest cost wins, ties go to the earliest
    // start (k ascends, so a strict `<` implements the `(cost, k)` order).
    let mut best: Option<(i64, Placement)> = None;
    for slot in slots {
        let (cost, candidate) = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .expect("every annealing start reports a result");
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            best = Some((cost, candidate));
        }
    }
    Ok(best.expect("at least one annealing start ran").1)
}

/// Cost delta of moving one device to `to`, with `ignore` (the swap partner,
/// if any) excluded because its own terms are accounted for by the caller.
fn move_delta(
    grid: &ConnectionGrid,
    traffic: &TrafficMatrix,
    nodes: &[NodeId],
    device: usize,
    to: NodeId,
    ignore: Option<usize>,
) -> i64 {
    let from = nodes[device];
    let mut delta = 0i64;
    for (other, &other_node) in nodes.iter().enumerate() {
        if other == device || Some(other) == ignore {
            continue;
        }
        let weight = traffic.weight(DeviceId(device), DeviceId(other)) as i64;
        if weight > 0 {
            delta += weight
                * (grid.distance(to, other_node) as i64 - grid.distance(from, other_node) as i64);
        }
    }
    delta
}

/// Simulated-annealing refinement: swap two devices or move one device to a
/// free preferred node, accepting uphill moves with a temperature-dependent
/// probability. Returns the cost of the placement it settles on (the
/// multi-start reduction key).
///
/// Each candidate move is priced by its **delta cost** — only the traffic
/// rows of the touched devices are visited — and applied in place; the full
/// quadratic cost is never recomputed inside the loop.
fn refine(
    grid: &ConnectionGrid,
    traffic: &TrafficMatrix,
    placement: &mut Placement,
    candidates: &[NodeId],
    options: &PlacementOptions,
    seed: u64,
) -> i64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial_cost = placement.weighted_cost(grid, traffic) as i64;
    let mut current_cost = initial_cost;
    let mut best = placement.node_of_device.clone();
    let mut best_cost = current_cost;
    let mut occupied: std::collections::HashSet<NodeId> =
        placement.node_of_device.iter().copied().collect();
    let moves = options.annealing_moves.max(1);
    for step in 0..moves {
        let temperature = 1.0 - (step as f64 / moves as f64);
        let nodes = &mut placement.node_of_device;
        let (delta, action) = if rng.gen_bool(0.5) && nodes.len() >= 2 {
            // Swap two devices.
            let a = rng.gen_range(0..nodes.len());
            let mut b = rng.gen_range(0..nodes.len());
            while b == a {
                b = rng.gen_range(0..nodes.len());
            }
            let delta = move_delta(grid, traffic, nodes, a, nodes[b], Some(b))
                + move_delta(grid, traffic, nodes, b, nodes[a], Some(a));
            (delta, Action::Swap(a, b))
        } else {
            // Move one device to a free candidate node. The free list is
            // materialized exactly as before the delta-cost rewrite so the
            // seeded RNG stream — and therefore every placement — stays
            // bit-identical to the original annealer's.
            let d = rng.gen_range(0..nodes.len());
            let free: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|n| !occupied.contains(n))
                .collect();
            if free.is_empty() {
                continue;
            }
            let to = free[rng.gen_range(0..free.len())];
            let delta = move_delta(grid, traffic, nodes, d, to, None);
            (delta, Action::Move(d, to))
        };
        let accept = delta <= 0 || rng.gen_bool((0.05 + 0.4 * temperature).clamp(0.0, 1.0));
        if accept {
            match action {
                Action::Swap(a, b) => nodes.swap(a, b),
                Action::Move(d, to) => {
                    occupied.remove(&nodes[d]);
                    occupied.insert(to);
                    nodes[d] = to;
                }
            }
            current_cost += delta;
            if current_cost < best_cost {
                best.copy_from_slice(nodes);
                best_cost = current_cost;
            }
        }
    }
    placement.node_of_device = best;
    debug_assert_eq!(
        placement.weighted_cost(grid, traffic) as i64,
        best_cost,
        "delta-cost bookkeeping diverged from the full recompute"
    );
    best_cost
}

/// A candidate annealing move, applied only after acceptance.
enum Action {
    Swap(usize, usize),
    Move(usize, NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;
    use biochip_assay::OpId;

    fn task(from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample: 0,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Direct,
            window_start: 0,
            window_end: 5,
            storage_interval: None,
            earliest_start: 0,
            deadline: 5,
        }
    }

    #[test]
    fn placement_fits_devices_on_distinct_nodes() {
        let grid = ConnectionGrid::square(4);
        let tasks = vec![task(0, 1), task(1, 2), task(0, 2)];
        let p = place_devices(&grid, 3, &tasks, &PlacementOptions::default()).unwrap();
        assert_eq!(p.len(), 3);
        let mut nodes: Vec<NodeId> = p.device_nodes().to_vec();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "devices must occupy distinct nodes");
    }

    #[test]
    fn heavily_communicating_devices_are_close() {
        let grid = ConnectionGrid::square(5);
        // Devices 0 and 1 exchange a lot of traffic, 2 and 3 are quiet.
        let mut tasks = Vec::new();
        for _ in 0..10 {
            tasks.push(task(0, 1));
        }
        tasks.push(task(2, 3));
        let p = place_devices(&grid, 4, &tasks, &PlacementOptions::default()).unwrap();
        let busy = grid.distance(p.node_of(DeviceId(0)), p.node_of(DeviceId(1)));
        assert!(
            busy <= 2,
            "busy pair should be adjacent-ish, got distance {busy}"
        );
    }

    #[test]
    fn grid_too_small_is_reported() {
        let grid = ConnectionGrid::new(1, 2);
        let err = place_devices(&grid, 5, &[], &PlacementOptions::default()).unwrap_err();
        assert!(matches!(err, ArchError::GridTooSmall { .. }));
    }

    #[test]
    fn placement_is_deterministic() {
        let grid = ConnectionGrid::square(4);
        let tasks = vec![task(0, 1), task(1, 2), task(2, 0)];
        let a = place_devices(&grid, 3, &tasks, &PlacementOptions::default()).unwrap();
        let b = place_devices(&grid, 3, &tasks, &PlacementOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn refinement_never_worsens_the_greedy_cost() {
        let grid = ConnectionGrid::square(5);
        let tasks: Vec<TransportTask> = vec![
            task(0, 1),
            task(1, 2),
            task(2, 3),
            task(3, 4),
            task(4, 0),
            task(0, 2),
        ];
        let traffic = TrafficMatrix::from_tasks(5, &tasks);
        let greedy = place_devices(
            &grid,
            5,
            &tasks,
            &PlacementOptions {
                refine: false,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        let refined = place_devices(&grid, 5, &tasks, &PlacementOptions::default()).unwrap();
        assert!(refined.weighted_cost(&grid, &traffic) <= greedy.weighted_cost(&grid, &traffic));
    }

    #[test]
    fn traffic_matrix_is_symmetric() {
        let tasks = vec![task(0, 1), task(0, 1), task(1, 2)];
        let m = TrafficMatrix::from_tasks(3, &tasks);
        assert_eq!(m.weight(DeviceId(0), DeviceId(1)), 2);
        assert_eq!(m.weight(DeviceId(1), DeviceId(0)), 2);
        assert_eq!(m.total(DeviceId(1)), 3);
        assert_eq!(m.weight(DeviceId(0), DeviceId(2)), 0);
    }

    #[test]
    fn device_at_reverse_lookup() {
        let grid = ConnectionGrid::square(3);
        let p = place_devices(&grid, 2, &[task(0, 1)], &PlacementOptions::default()).unwrap();
        let node = p.node_of(DeviceId(1));
        assert_eq!(p.device_at(node), Some(DeviceId(1)));
        let free = grid.nodes().find(|n| p.device_at(*n).is_none()).unwrap();
        assert_eq!(p.device_at(free), None);
    }

    #[test]
    fn move_delta_matches_full_recompute() {
        let grid = ConnectionGrid::square(5);
        let tasks = vec![task(0, 1), task(0, 1), task(1, 2), task(2, 3), task(0, 3)];
        let traffic = TrafficMatrix::from_tasks(4, &tasks);
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(6), NodeId(12), NodeId(24)]);
        let base = placement.weighted_cost(&grid, &traffic) as i64;
        // Move device 2 to a free node.
        let mut moved = placement.clone();
        let delta = move_delta(
            &grid,
            &traffic,
            &placement.node_of_device,
            2,
            NodeId(20),
            None,
        );
        moved.node_of_device[2] = NodeId(20);
        assert_eq!(moved.weighted_cost(&grid, &traffic) as i64, base + delta);
        // Swap devices 0 and 3.
        let nodes = &placement.node_of_device;
        let delta = move_delta(&grid, &traffic, nodes, 0, nodes[3], Some(3))
            + move_delta(&grid, &traffic, nodes, 3, nodes[0], Some(0));
        let mut swapped = placement.clone();
        swapped.node_of_device.swap(0, 3);
        assert_eq!(swapped.weighted_cost(&grid, &traffic) as i64, base + delta);
    }

    #[test]
    fn multi_start_is_deterministic_across_thread_counts() {
        let grid = ConnectionGrid::square(5);
        let tasks: Vec<TransportTask> = vec![
            task(0, 1),
            task(0, 1),
            task(1, 2),
            task(2, 3),
            task(3, 4),
            task(0, 4),
        ];
        let options = PlacementOptions {
            starts: 4,
            ..PlacementOptions::default()
        };
        let single = place_devices_threaded(&grid, 5, &tasks, &options, 1).unwrap();
        for threads in [2, 4, 8] {
            let multi = place_devices_threaded(&grid, 5, &tasks, &options, threads).unwrap();
            assert_eq!(multi, single, "{threads} threads diverged");
        }
    }

    #[test]
    fn multi_start_never_loses_to_the_single_chain() {
        let grid = ConnectionGrid::square(5);
        let tasks: Vec<TransportTask> =
            vec![task(0, 1), task(1, 2), task(2, 3), task(3, 0), task(0, 2)];
        let traffic = TrafficMatrix::from_tasks(4, &tasks);
        let single = place_devices(&grid, 4, &tasks, &PlacementOptions::default()).unwrap();
        let multi = place_devices_threaded(
            &grid,
            4,
            &tasks,
            &PlacementOptions {
                starts: 6,
                ..PlacementOptions::default()
            },
            2,
        )
        .unwrap();
        assert!(
            multi.weighted_cost(&grid, &traffic) <= single.weighted_cost(&grid, &traffic),
            "the multi-start winner must be at least as good as start 0"
        );
    }

    #[test]
    fn single_start_matches_the_historical_annealer_stream() {
        // `starts: 1` must run the seed unchanged — same stream, same
        // placement as the pre-multi-start annealer.
        let grid = ConnectionGrid::square(5);
        let tasks: Vec<TransportTask> = vec![task(0, 1), task(1, 2), task(2, 0)];
        let a = place_devices(&grid, 3, &tasks, &PlacementOptions::default()).unwrap();
        let b = place_devices_threaded(&grid, 3, &tasks, &PlacementOptions::default(), 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_device_placement_works_without_tasks() {
        let grid = ConnectionGrid::square(2);
        let p = place_devices(&grid, 1, &[], &PlacementOptions::default()).unwrap();
        assert_eq!(p.len(), 1);
    }
}
