//! Time-interval reservations of grid edges and nodes.
//!
//! Architectural synthesis must guarantee that transportation paths whose
//! time windows overlap never share a channel segment or an intersection
//! node, and that a segment caching a fluid sample is not used for transport
//! during its storage interval. The [`ReservationTable`] records who occupies
//! what and when.
//!
//! Every resource owns a [`ReservationCalendar`]: a start-sorted, coalesced
//! sequence of busy intervals. Queries and inserts are `O(log n)` binary
//! searches instead of the linear scans of the original `Vec<Interval>`
//! representation, and [`ReservationCalendar::first_free`] answers "when is
//! the earliest conflict-free window of this length?" directly — the staged
//! router asks the calendar for feasible windows instead of probing blind
//! candidate start times.

use serde::{Deserialize, Serialize};

use biochip_assay::Seconds;

use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};

/// A half-open time interval `[start, end)` in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: Seconds,
    /// Exclusive end.
    pub end: Seconds,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: Seconds, end: Seconds) -> Self {
        assert!(end >= start, "interval must not end before it starts");
        Interval { start, end }
    }

    /// Whether two intervals overlap (empty intervals never overlap).
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Length of the interval.
    #[must_use]
    pub fn len(&self) -> Seconds {
        self.end - self.start
    }

    /// Whether the interval is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Start-sorted, coalesced busy intervals of one resource.
///
/// The invariant is strict: intervals are non-empty, sorted by start, and
/// pairwise neither overlapping nor adjacent (adjacent inserts are merged,
/// so the stored set is the canonical minimal representation of the busy
/// time). Because half-open intervals merge exactly (`[a,b) ∪ [b,c) =
/// [a,c)`), coalescing never changes the answer of an overlap query.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationCalendar {
    busy: Vec<Interval>,
}

impl ReservationCalendar {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        ReservationCalendar { busy: Vec::new() }
    }

    /// The coalesced busy intervals, sorted by start.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.busy
    }

    /// Number of coalesced busy intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether nothing is reserved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Whether the whole interval is free. Empty query intervals are always
    /// free (they occupy no time).
    #[must_use]
    pub fn is_free(&self, interval: Interval) -> bool {
        if interval.is_empty() {
            return true;
        }
        // Routing reserves forward in time, so most queries land past every
        // existing reservation: answer those from the last interval alone
        // before paying for a binary search.
        match self.busy.last() {
            None => return true,
            Some(last) if last.end <= interval.start => return true,
            _ => {}
        }
        // First busy interval that ends after the query starts; only that one
        // can overlap from the left.
        let idx = self.busy.partition_point(|b| b.end <= interval.start);
        self.busy.get(idx).is_none_or(|b| b.start >= interval.end)
    }

    /// Marks the interval busy. Empty intervals are ignored (a documented
    /// no-op, consistent with [`is_free`](Self::is_free) treating them as
    /// always free).
    pub fn reserve(&mut self, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        // All stored intervals overlapping or adjacent to the new one form a
        // contiguous run [lo, hi); splice them into a single merged interval.
        let lo = self.busy.partition_point(|b| b.end < interval.start);
        let hi = self.busy.partition_point(|b| b.start <= interval.end);
        if lo == hi {
            self.busy.insert(lo, interval);
        } else {
            let merged = Interval {
                start: self.busy[lo].start.min(interval.start),
                end: self.busy[hi - 1].end.max(interval.end),
            };
            self.busy.splice(lo..hi, std::iter::once(merged));
        }
        debug_assert!(self.invariant_holds(), "calendar invariant violated");
    }

    /// Earliest start `s` with `earliest <= s <= latest_start` such that
    /// `[s, s + duration)` is completely free, or `None` when no such window
    /// exists. `duration` is clamped to at least 1.
    #[must_use]
    pub fn first_free(
        &self,
        duration: Seconds,
        earliest: Seconds,
        latest_start: Seconds,
    ) -> Option<Seconds> {
        if latest_start < earliest {
            return None;
        }
        let duration = duration.max(1);
        let mut candidate = earliest;
        // Jump straight to the first busy interval that could block the
        // candidate, then walk the (coalesced, hence strictly separated)
        // busy intervals — each step either returns or advances past one.
        let mut idx = self.busy.partition_point(|b| b.end <= candidate);
        loop {
            match self.busy.get(idx) {
                None => return Some(candidate),
                Some(b) if candidate.checked_add(duration)? <= b.start => return Some(candidate),
                Some(b) => {
                    candidate = candidate.max(b.end);
                    if candidate > latest_start {
                        return None;
                    }
                    idx += 1;
                }
            }
        }
    }

    /// Checks the sorted/coalesced invariant (debug assertions only).
    fn invariant_holds(&self) -> bool {
        self.busy.iter().all(|b| !b.is_empty())
            && self.busy.windows(2).all(|w| w[0].end < w[1].start)
    }
}

/// Occupancy of every grid edge and node over time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationTable {
    edge_busy: Vec<ReservationCalendar>,
    node_busy: Vec<ReservationCalendar>,
}

impl ReservationTable {
    /// Creates an empty table for the given grid.
    #[must_use]
    pub fn new(grid: &ConnectionGrid) -> Self {
        ReservationTable {
            edge_busy: vec![ReservationCalendar::new(); grid.num_edges()],
            node_busy: vec![ReservationCalendar::new(); grid.num_nodes()],
        }
    }

    /// Whether an edge is free during the whole interval.
    #[must_use]
    pub fn edge_free(&self, edge: GridEdgeId, interval: Interval) -> bool {
        self.edge_busy[edge.index()].is_free(interval)
    }

    /// Whether a node is free during the whole interval.
    #[must_use]
    pub fn node_free(&self, node: NodeId, interval: Interval) -> bool {
        self.node_busy[node.index()].is_free(interval)
    }

    /// Marks an edge busy during the interval. Empty intervals are ignored.
    pub fn reserve_edge(&mut self, edge: GridEdgeId, interval: Interval) {
        self.edge_busy[edge.index()].reserve(interval);
    }

    /// Marks a node busy during the interval. Empty intervals are ignored.
    pub fn reserve_node(&mut self, node: NodeId, interval: Interval) {
        self.node_busy[node.index()].reserve(interval);
    }

    /// The calendar of one edge.
    #[must_use]
    pub fn edge_calendar(&self, edge: GridEdgeId) -> &ReservationCalendar {
        &self.edge_busy[edge.index()]
    }

    /// The calendar of one node.
    #[must_use]
    pub fn node_calendar(&self, node: NodeId) -> &ReservationCalendar {
        &self.node_busy[node.index()]
    }

    /// All (coalesced) reservations of an edge, for inspection and
    /// verification.
    #[must_use]
    pub fn edge_reservations(&self, edge: GridEdgeId) -> &[Interval] {
        self.edge_busy[edge.index()].intervals()
    }

    /// All (coalesced) reservations of a node.
    #[must_use]
    pub fn node_reservations(&self, node: NodeId) -> &[Interval] {
        self.node_busy[node.index()].intervals()
    }

    /// Earliest conflict-free start of a `duration`-long window on an edge
    /// within `[earliest, latest_start]` (see
    /// [`ReservationCalendar::first_free`]).
    #[must_use]
    pub fn first_free_edge_window(
        &self,
        edge: GridEdgeId,
        duration: Seconds,
        earliest: Seconds,
        latest_start: Seconds,
    ) -> Option<Seconds> {
        self.edge_busy[edge.index()].first_free(duration, earliest, latest_start)
    }

    /// Earliest conflict-free start of a `duration`-long window on a node
    /// within `[earliest, latest_start]`.
    #[must_use]
    pub fn first_free_node_window(
        &self,
        node: NodeId,
        duration: Seconds,
        earliest: Seconds,
        latest_start: Seconds,
    ) -> Option<Seconds> {
        self.node_busy[node.index()].first_free(duration, earliest, latest_start)
    }

    /// Total number of coalesced edge reservations (used in statistics).
    #[must_use]
    pub fn total_edge_reservations(&self) -> usize {
        self.edge_busy.iter().map(ReservationCalendar::len).sum()
    }

    /// Largest calendar over all edges and nodes: the worst-case `n` of the
    /// `O(log n)` queries, reported by the scale benchmarks.
    #[must_use]
    pub fn peak_calendar_len(&self) -> usize {
        self.edge_busy
            .iter()
            .chain(self.node_busy.iter())
            .map(ReservationCalendar::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_overlap_rules() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        let c = Interval::new(5, 15);
        let empty = Interval::new(7, 7);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&empty));
        assert_eq!(a.len(), 10);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn inverted_interval_panics() {
        let _ = Interval::new(5, 1);
    }

    #[test]
    fn edge_and_node_reservations() {
        let grid = ConnectionGrid::square(3);
        let mut table = ReservationTable::new(&grid);
        let e = GridEdgeId(0);
        let n = NodeId(0);
        assert!(table.edge_free(e, Interval::new(0, 100)));
        table.reserve_edge(e, Interval::new(10, 20));
        table.reserve_node(n, Interval::new(10, 20));
        assert!(!table.edge_free(e, Interval::new(15, 25)));
        assert!(table.edge_free(e, Interval::new(20, 25)));
        assert!(!table.node_free(n, Interval::new(0, 11)));
        assert!(table.node_free(n, Interval::new(20, 30)));
        assert_eq!(table.edge_reservations(e).len(), 1);
        assert_eq!(table.total_edge_reservations(), 1);
        assert_eq!(table.peak_calendar_len(), 1);
    }

    #[test]
    fn empty_reservations_are_ignored() {
        let grid = ConnectionGrid::square(2);
        let mut table = ReservationTable::new(&grid);
        table.reserve_edge(GridEdgeId(0), Interval::new(5, 5));
        table.reserve_node(NodeId(0), Interval::new(5, 5));
        assert!(table.edge_free(GridEdgeId(0), Interval::new(0, 10)));
        assert!(table.node_free(NodeId(0), Interval::new(0, 10)));
        assert_eq!(table.total_edge_reservations(), 0);
    }

    #[test]
    fn calendar_coalesces_overlapping_and_adjacent_inserts() {
        let mut cal = ReservationCalendar::new();
        cal.reserve(Interval::new(10, 20));
        cal.reserve(Interval::new(30, 40));
        assert_eq!(cal.len(), 2);
        // Overlapping insert merges with the first interval.
        cal.reserve(Interval::new(15, 25));
        assert_eq!(
            cal.intervals(),
            &[Interval::new(10, 25), Interval::new(30, 40)]
        );
        // Adjacent insert bridges the gap into one interval.
        cal.reserve(Interval::new(25, 30));
        assert_eq!(cal.intervals(), &[Interval::new(10, 40)]);
        assert!(!cal.is_free(Interval::new(12, 13)));
        assert!(cal.is_free(Interval::new(40, 41)));
    }

    #[test]
    fn first_free_walks_the_gaps() {
        let mut cal = ReservationCalendar::new();
        cal.reserve(Interval::new(10, 20));
        cal.reserve(Interval::new(25, 40));
        // Fits before the first busy interval.
        assert_eq!(cal.first_free(5, 0, 100), Some(0));
        assert_eq!(cal.first_free(10, 0, 100), Some(0));
        // Too long for [0,10): lands in the [20,25) gap or after 40.
        assert_eq!(cal.first_free(11, 0, 100), Some(40));
        // [5, 10) exactly fills the gap before the first busy interval.
        assert_eq!(cal.first_free(5, 5, 100), Some(5));
        // Duration 6 overflows both the [5,10) and [20,25) gaps.
        assert_eq!(cal.first_free(6, 5, 100), Some(40));
        assert_eq!(cal.first_free(5, 6, 100), Some(20));
        assert_eq!(cal.first_free(4, 12, 100), Some(20));
        // Bounded by latest_start.
        assert_eq!(cal.first_free(5, 12, 19), None);
        assert_eq!(cal.first_free(5, 12, 20), Some(20));
        // Empty calendar: the earliest start always works.
        assert_eq!(ReservationCalendar::new().first_free(5, 7, 7), Some(7));
        // Inverted range.
        assert_eq!(cal.first_free(1, 10, 9), None);
    }

    #[test]
    fn first_free_clamps_zero_durations_to_one() {
        let mut cal = ReservationCalendar::new();
        cal.reserve(Interval::new(0, 10));
        assert_eq!(cal.first_free(0, 0, 100), Some(10));
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(s1 in 0u64..100, l1 in 0u64..50, s2 in 0u64..100, l2 in 0u64..50) {
            let a = Interval::new(s1, s1 + l1);
            let b = Interval::new(s2, s2 + l2);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn free_iff_no_overlapping_reservation(
            reservations in proptest::collection::vec((0u64..50, 1u64..10), 0..8),
            query_start in 0u64..60,
            query_len in 1u64..10,
        ) {
            let grid = ConnectionGrid::square(2);
            let mut table = ReservationTable::new(&grid);
            let e = GridEdgeId(0);
            for (s, l) in &reservations {
                table.reserve_edge(e, Interval::new(*s, s + l));
            }
            let query = Interval::new(query_start, query_start + query_len);
            let expected = reservations
                .iter()
                .all(|(s, l)| !Interval::new(*s, s + l).overlaps(&query));
            prop_assert_eq!(table.edge_free(e, query), expected);
        }

        #[test]
        fn merge_preserves_busy_time_including_adjacent_and_empty(
            reservations in proptest::collection::vec((0u64..40, 0u64..8), 0..10),
            t in 0u64..60,
        ) {
            // Zero-length reservations are allowed in the input mix and must
            // behave as no-ops; adjacent intervals must coalesce without
            // changing which instants are busy.
            let mut cal = ReservationCalendar::new();
            for (s, l) in &reservations {
                cal.reserve(Interval::new(*s, s + l));
            }
            // Invariant: sorted, non-empty, strictly separated.
            for b in cal.intervals() {
                prop_assert!(!b.is_empty());
            }
            for w in cal.intervals().windows(2) {
                prop_assert!(w[0].end < w[1].start, "not coalesced: {:?}", w);
            }
            let busy_expected = reservations
                .iter()
                .any(|(s, l)| t >= *s && t < s + l);
            let busy_actual = !cal.is_free(Interval::new(t, t + 1));
            prop_assert_eq!(busy_actual, busy_expected);
        }

        #[test]
        fn first_free_returns_the_earliest_valid_window(
            reservations in proptest::collection::vec((0u64..40, 0u64..8), 0..8),
            duration in 1u64..10,
            earliest in 0u64..50,
            slack in 0u64..30,
        ) {
            let mut cal = ReservationCalendar::new();
            for (s, l) in &reservations {
                cal.reserve(Interval::new(*s, s + l));
            }
            let latest = earliest + slack;
            let found = cal.first_free(duration, earliest, latest);
            // Oracle: linear scan over every candidate start.
            let oracle = (earliest..=latest)
                .find(|&s| cal.is_free(Interval::new(s, s + duration)));
            prop_assert_eq!(found, oracle);
            if let Some(s) = found {
                prop_assert!(cal.is_free(Interval::new(s, s + duration)));
                prop_assert!(s >= earliest && s <= latest);
            }
        }
    }
}
