//! Time-interval reservations of grid edges and nodes.
//!
//! Architectural synthesis must guarantee that transportation paths whose
//! time windows overlap never share a channel segment or an intersection
//! node, and that a segment caching a fluid sample is not used for transport
//! during its storage interval. The [`ReservationTable`] records who occupies
//! what and when.

use serde::{Deserialize, Serialize};

use biochip_assay::Seconds;

use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};

/// A half-open time interval `[start, end)` in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: Seconds,
    /// Exclusive end.
    pub end: Seconds,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: Seconds, end: Seconds) -> Self {
        assert!(end >= start, "interval must not end before it starts");
        Interval { start, end }
    }

    /// Whether two intervals overlap (empty intervals never overlap).
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Length of the interval.
    #[must_use]
    pub fn len(&self) -> Seconds {
        self.end - self.start
    }

    /// Whether the interval is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Occupancy of every grid edge and node over time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationTable {
    edge_busy: Vec<Vec<Interval>>,
    node_busy: Vec<Vec<Interval>>,
}

impl ReservationTable {
    /// Creates an empty table for the given grid.
    #[must_use]
    pub fn new(grid: &ConnectionGrid) -> Self {
        ReservationTable {
            edge_busy: vec![Vec::new(); grid.num_edges()],
            node_busy: vec![Vec::new(); grid.num_nodes()],
        }
    }

    /// Whether an edge is free during the whole interval.
    #[must_use]
    pub fn edge_free(&self, edge: GridEdgeId, interval: Interval) -> bool {
        self.edge_busy[edge.index()]
            .iter()
            .all(|busy| !busy.overlaps(&interval))
    }

    /// Whether a node is free during the whole interval.
    #[must_use]
    pub fn node_free(&self, node: NodeId, interval: Interval) -> bool {
        self.node_busy[node.index()]
            .iter()
            .all(|busy| !busy.overlaps(&interval))
    }

    /// Marks an edge busy during the interval.
    pub fn reserve_edge(&mut self, edge: GridEdgeId, interval: Interval) {
        if !interval.is_empty() {
            self.edge_busy[edge.index()].push(interval);
        }
    }

    /// Marks a node busy during the interval.
    pub fn reserve_node(&mut self, node: NodeId, interval: Interval) {
        if !interval.is_empty() {
            self.node_busy[node.index()].push(interval);
        }
    }

    /// All reservations of an edge (for inspection and verification).
    #[must_use]
    pub fn edge_reservations(&self, edge: GridEdgeId) -> &[Interval] {
        &self.edge_busy[edge.index()]
    }

    /// All reservations of a node.
    #[must_use]
    pub fn node_reservations(&self, node: NodeId) -> &[Interval] {
        &self.node_busy[node.index()]
    }

    /// Total number of edge reservations (used in statistics).
    #[must_use]
    pub fn total_edge_reservations(&self) -> usize {
        self.edge_busy.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_overlap_rules() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        let c = Interval::new(5, 15);
        let empty = Interval::new(7, 7);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!a.overlaps(&empty));
        assert_eq!(a.len(), 10);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn inverted_interval_panics() {
        let _ = Interval::new(5, 1);
    }

    #[test]
    fn edge_and_node_reservations() {
        let grid = ConnectionGrid::square(3);
        let mut table = ReservationTable::new(&grid);
        let e = GridEdgeId(0);
        let n = NodeId(0);
        assert!(table.edge_free(e, Interval::new(0, 100)));
        table.reserve_edge(e, Interval::new(10, 20));
        table.reserve_node(n, Interval::new(10, 20));
        assert!(!table.edge_free(e, Interval::new(15, 25)));
        assert!(table.edge_free(e, Interval::new(20, 25)));
        assert!(!table.node_free(n, Interval::new(0, 11)));
        assert!(table.node_free(n, Interval::new(20, 30)));
        assert_eq!(table.edge_reservations(e).len(), 1);
        assert_eq!(table.total_edge_reservations(), 1);
    }

    #[test]
    fn empty_reservations_are_ignored() {
        let grid = ConnectionGrid::square(2);
        let mut table = ReservationTable::new(&grid);
        table.reserve_edge(GridEdgeId(0), Interval::new(5, 5));
        assert!(table.edge_free(GridEdgeId(0), Interval::new(0, 10)));
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(s1 in 0u64..100, l1 in 0u64..50, s2 in 0u64..100, l2 in 0u64..50) {
            let a = Interval::new(s1, s1 + l1);
            let b = Interval::new(s2, s2 + l2);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn free_iff_no_overlapping_reservation(
            reservations in proptest::collection::vec((0u64..50, 1u64..10), 0..8),
            query_start in 0u64..60,
            query_len in 1u64..10,
        ) {
            let grid = ConnectionGrid::square(2);
            let mut table = ReservationTable::new(&grid);
            let e = GridEdgeId(0);
            for (s, l) in &reservations {
                table.reserve_edge(e, Interval::new(*s, s + l));
            }
            let query = Interval::new(query_start, query_start + query_len);
            let expected = reservations
                .iter()
                .all(|(s, l)| !Interval::new(*s, s + l).overlaps(&query));
            prop_assert_eq!(table.edge_free(e, query), expected);
        }
    }
}
