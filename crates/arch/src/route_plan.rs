//! Independent route-plan validator (ROADMAP item 2's correctness oracle).
//!
//! Re-checks a synthesized [`Architecture`]'s committed routes against
//! reservation calendars rebuilt *from scratch* out of the routes
//! themselves — deliberately sharing no code with the router's
//! [`ReservationTable`](crate::ReservationTable) or with
//! [`Architecture::verify`], so router experiments (oracle pruning, rip-up
//! iteration, replay reuse) cannot silently regress correctness through a
//! bug mirrored in both the producer and the checker.
//!
//! The oracle asserts, per committed plan:
//!
//! - **Reachability** — every path is a contiguous walk over existing grid
//!   edges, starting and ending where its task kind demands (producer
//!   device, consumer device, cache segment).
//! - **Device-interior rule** — device nodes appear only as path endpoints;
//!   transit never crosses a device.
//! - **Conflict rule** — two occupations of the same edge or the same
//!   interior switch node never overlap in time.
//! - **Storage exclusivity** — a segment caching a sample is blocked from
//!   the store's arrival until the matching fetch departs; no other route
//!   may cross it inside that span, and every stored sample is fetched from
//!   the same segment it was stored into, after it has arrived.

use std::collections::BTreeMap;

use crate::connection_graph::{Architecture, RoutedTransport};
use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::reservation::Interval;
use crate::transport::TransportKind;

/// One occupation of a resource, tagged with the route that claimed it.
#[derive(Debug, Clone, Copy)]
struct Claim {
    window: Interval,
    route: usize,
}

/// Sorts a resource's claims and reports the first overlapping pair of
/// *distinct* routes (a route may legitimately touch a resource twice
/// within its own window).
fn first_conflict(claims: &mut [Claim]) -> Option<(usize, usize)> {
    claims.sort_unstable_by_key(|c| (c.window.start, c.window.end, c.route));
    let mut frontier: Option<Claim> = None;
    for &claim in claims.iter() {
        if let Some(held) = frontier {
            if claim.window.start < held.window.end && claim.route != held.route {
                return Some((held.route, claim.route));
            }
        }
        if frontier.is_none_or(|held| claim.window.end > held.window.end) {
            frontier = Some(claim);
        }
    }
    None
}

fn structural_check(
    grid: &ConnectionGrid,
    route: &RoutedTransport,
    device_nodes: &[NodeId],
) -> Result<(), String> {
    let path = &route.path;
    let task = &route.task;
    let describe = || task.describe();
    if path.nodes.is_empty() || path.edges.len() + 1 != path.nodes.len() {
        return Err(format!("malformed path for {}", describe()));
    }
    for (i, &edge) in path.edges.iter().enumerate() {
        if edge.index() >= grid.num_edges() {
            return Err(format!("edge {edge} outside the grid in {}", describe()));
        }
        let (a, b) = grid.endpoints(edge);
        let (from, to) = (path.nodes[i], path.nodes[i + 1]);
        if !((a == from && b == to) || (a == to && b == from)) {
            return Err(format!(
                "broken walk: edge {edge} does not join {from}->{to} in {}",
                describe()
            ));
        }
    }
    // Device nodes are path endpoints only — except the endpoints of the
    // route's own cache segment: on very small grids the router may cache
    // against a device-adjacent segment (`allow_device_adjacent_storage`),
    // and the store's approach / fetch's departure then legitimately steps
    // across that device node.
    let cache_endpoints = route.cache_edge.map(|edge| grid.endpoints(edge));
    for &node in &path.nodes[1..path.nodes.len().saturating_sub(1)] {
        if device_nodes.contains(&node)
            && cache_endpoints.is_none_or(|(a, b)| node != a && node != b)
        {
            return Err(format!("path crosses device node {node} in {}", describe()));
        }
    }
    let device_node = |d: crate::DeviceId| device_nodes[d.index()];
    match task.kind {
        TransportKind::Direct => {
            if path.nodes.first() != Some(&device_node(task.from_device))
                || path.nodes.last() != Some(&device_node(task.to_device))
            {
                return Err(format!("direct endpoints wrong for {}", describe()));
            }
        }
        TransportKind::Store => {
            if path.nodes.first() != Some(&device_node(task.from_device)) {
                return Err(format!(
                    "store does not leave its producer in {}",
                    describe()
                ));
            }
            if route.cache_edge.is_none() || path.edges.last().copied() != route.cache_edge {
                return Err(format!(
                    "store does not end in its segment in {}",
                    describe()
                ));
            }
        }
        TransportKind::Fetch => {
            if path.nodes.last() != Some(&device_node(task.to_device)) {
                return Err(format!(
                    "fetch does not reach its consumer in {}",
                    describe()
                ));
            }
            if route.cache_edge.is_none() || path.edges.first().copied() != route.cache_edge {
                return Err(format!(
                    "fetch does not leave its segment in {}",
                    describe()
                ));
            }
        }
    }
    Ok(())
}

/// Validates a synthesized architecture's route plan against calendars
/// rebuilt independently from the committed routes. See the module docs for
/// the invariants checked.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_route_plan(architecture: &Architecture) -> Result<(), String> {
    let grid = architecture.grid();
    let device_nodes = architecture.placement().device_nodes();
    let routes = architecture.routes();

    // BTreeMaps: with several violations present, *which* one this
    // validator reports must not depend on hash order — the differential
    // suites compare its messages verbatim.
    let mut edge_claims: BTreeMap<GridEdgeId, Vec<Claim>> = BTreeMap::new();
    let mut node_claims: BTreeMap<NodeId, Vec<Claim>> = BTreeMap::new();
    // sample id → (route index, cache edge, store window) of its store.
    let mut stores: BTreeMap<usize, (usize, GridEdgeId, Interval)> = BTreeMap::new();
    // Storage blocks resolved once the matching fetch is seen:
    // (edge, blocked span, store route, fetch route).
    let mut blocks: Vec<(GridEdgeId, Interval, usize, usize)> = Vec::new();

    for (i, route) in routes.iter().enumerate() {
        structural_check(grid, route, device_nodes)?;
        let window = route.path.window;
        if window.is_empty() {
            continue;
        }
        for &edge in &route.path.edges {
            edge_claims
                .entry(edge)
                .or_default()
                .push(Claim { window, route: i });
        }
        if route.path.nodes.len() > 2 {
            for &node in &route.path.nodes[1..route.path.nodes.len() - 1] {
                node_claims
                    .entry(node)
                    .or_default()
                    .push(Claim { window, route: i });
            }
        }
        match route.task.kind {
            TransportKind::Store => {
                let edge = route.cache_edge.expect("checked structurally");
                if let Some(&(prior, _, _)) = stores.get(&route.task.sample) {
                    return Err(format!(
                        "sample {} stored twice without a fetch ({} / {})",
                        route.task.sample,
                        routes[prior].task.describe(),
                        route.task.describe()
                    ));
                }
                stores.insert(route.task.sample, (i, edge, window));
            }
            TransportKind::Fetch => {
                let Some((store_route, edge, store_window)) = stores.remove(&route.task.sample)
                else {
                    return Err(format!(
                        "fetch of never-stored sample: {}",
                        route.task.describe()
                    ));
                };
                if route.cache_edge != Some(edge) {
                    return Err(format!(
                        "{} fetches from a different segment than its store",
                        route.task.describe()
                    ));
                }
                if window.start < store_window.end {
                    return Err(format!(
                        "{} departs before its sample arrives",
                        route.task.describe()
                    ));
                }
                blocks.push((
                    edge,
                    Interval::new(store_window.start, window.end),
                    store_route,
                    i,
                ));
            }
            TransportKind::Direct => {}
        }
    }
    if let Some((&sample, &(route, _, _))) = stores.iter().next() {
        return Err(format!(
            "sample {sample} stored but never fetched ({})",
            routes[route].task.describe()
        ));
    }

    for (edge, claims) in &mut edge_claims {
        if let Some((a, b)) = first_conflict(claims) {
            return Err(format!(
                "edge {edge} double-booked: {} vs {}",
                routes[a].task.describe(),
                routes[b].task.describe()
            ));
        }
    }
    for (node, claims) in &mut node_claims {
        if let Some((a, b)) = first_conflict(claims) {
            return Err(format!(
                "switch {node} double-booked: {} vs {}",
                routes[a].task.describe(),
                routes[b].task.describe()
            ));
        }
    }

    // Storage exclusivity: inside a segment's blocked span, only the owning
    // store and fetch may touch it.
    for &(edge, span, store_route, fetch_route) in &blocks {
        if let Some(claims) = edge_claims.get(&edge) {
            for claim in claims {
                if claim.route != store_route
                    && claim.route != fetch_route
                    && claim.window.start < span.end
                    && span.start < claim.window.end
                {
                    return Err(format!(
                        "{} crosses segment {edge} while it caches the sample of {}",
                        routes[claim.route].task.describe(),
                        routes[store_route].task.describe()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoord;
    use crate::placement::Placement;
    use crate::routing::RoutedPath;
    use crate::transport::TransportTask;
    use crate::ConnectionGraph;
    use biochip_assay::OpId;
    use biochip_schedule::DeviceId;

    fn arch_with_routes(routes: Vec<RoutedTransport>) -> Architecture {
        let grid = ConnectionGrid::square(4);
        let placement = Placement::from_nodes(vec![
            grid.node_at(GridCoord { row: 0, col: 0 }),
            grid.node_at(GridCoord { row: 3, col: 3 }),
        ]);
        let edges = routes
            .iter()
            .flat_map(|r| r.path.edges.clone())
            .collect::<Vec<_>>();
        let graph = ConnectionGraph::new(grid, placement, edges);
        Architecture::new(graph, routes)
    }

    fn task(kind: TransportKind, window: Interval) -> TransportTask {
        TransportTask {
            sample: 0,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(0),
            to_device: DeviceId(1),
            kind,
            window_start: window.start,
            window_end: window.end,
            storage_interval: None,
            earliest_start: window.start,
            deadline: window.end,
        }
    }

    fn walk(grid: &ConnectionGrid, coords: &[(usize, usize)]) -> (Vec<NodeId>, Vec<GridEdgeId>) {
        let nodes: Vec<NodeId> = coords
            .iter()
            .map(|&(row, col)| grid.node_at(GridCoord { row, col }))
            .collect();
        let edges = nodes
            .windows(2)
            .map(|w| grid.edge_between(w[0], w[1]).expect("adjacent"))
            .collect();
        (nodes, edges)
    }

    fn direct(
        grid: &ConnectionGrid,
        coords: &[(usize, usize)],
        window: Interval,
    ) -> RoutedTransport {
        let (nodes, edges) = walk(grid, coords);
        RoutedTransport {
            task: task(TransportKind::Direct, window),
            path: RoutedPath {
                nodes,
                edges,
                window,
            },
            cache_edge: None,
        }
    }

    #[test]
    fn accepts_a_clean_plan() {
        let grid = ConnectionGrid::square(4);
        let a = direct(
            &grid,
            &[(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
            Interval::new(0, 2),
        );
        let b = direct(
            &grid,
            &[(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 2), (3, 3)],
            Interval::new(4, 6),
        );
        assert_eq!(validate_route_plan(&arch_with_routes(vec![a, b])), Ok(()));
    }

    #[test]
    fn rejects_overlapping_edge_claims() {
        let grid = ConnectionGrid::square(4);
        let coords = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)];
        let a = direct(&grid, &coords, Interval::new(0, 2));
        let b = direct(&grid, &coords, Interval::new(1, 3));
        let err = validate_route_plan(&arch_with_routes(vec![a, b])).unwrap_err();
        assert!(err.contains("double-booked"), "{err}");
    }

    #[test]
    fn rejects_paths_through_devices() {
        let grid = ConnectionGrid::square(4);
        // Walks straight through the device at (3,3)... build a path whose
        // interior includes device (0,0)'s node by reversing a detour.
        let mut bad = direct(
            &grid,
            &[(0, 1), (0, 0), (1, 0), (1, 1)],
            Interval::new(0, 2),
        );
        bad.task.kind = TransportKind::Direct;
        // Force matching endpoints so only the interior rule can fire.
        bad.task.from_device = DeviceId(0);
        bad.task.to_device = DeviceId(1);
        let err = validate_route_plan(&arch_with_routes(vec![bad])).unwrap_err();
        assert!(
            err.contains("crosses device") || err.contains("endpoints wrong"),
            "{err}"
        );
    }

    #[test]
    fn rejects_a_broken_walk() {
        let grid = ConnectionGrid::square(4);
        let mut a = direct(
            &grid,
            &[(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)],
            Interval::new(0, 2),
        );
        a.path.nodes.swap(1, 2);
        let err = validate_route_plan(&arch_with_routes(vec![a])).unwrap_err();
        assert!(err.contains("broken walk"), "{err}");
    }
}
