//! Time-multiplexed routing of transportation paths on the connection grid.
//!
//! Every transportation task is routed as a path of channel segments
//! connected by switches. Paths whose occupation windows overlap in time may
//! not share an edge or an intersection node (the paper's conflict rule), a
//! segment caching a sample is blocked for its storage interval (but its end
//! nodes remain passable), and device nodes can only appear as the endpoints
//! of a path. Routing minimizes the number of *distinct* edges ever used by
//! pricing not-yet-used edges higher than already-used ones, which directly
//! drives down the `n_e`/`n_v` columns of Table 2.
//!
//! # The staged pipeline
//!
//! [`Router::route`] runs every task through three explicit stages:
//!
//! 1. **Window selection** — candidate occupation windows inside the task's
//!    slack. The preferred window comes first; further candidates are asked
//!    of the [`ReservationTable`] calendars directly
//!    ([`first_free_edge_window`](ReservationTable::first_free_edge_window)
//!    on the congested port resources) instead of probing arithmetic guesses,
//!    so a feasible window is found even when the contention pattern is
//!    irregular.
//! 2. **Scoring** — an indexed Dijkstra over the grid (dense scratch arrays
//!    reused across searches) that respects the reservation calendars for
//!    the chosen window; store tasks additionally select a cache segment
//!    through the distance-sorted [`SegmentIndex`](crate::segment_index).
//!    Scoring is **pure**: it reads a frozen snapshot of the reservation
//!    state and never mutates it, which is what lets
//!    [`Router::route_all`] fan candidate windows and cache-segment claims
//!    over a scoped worker pool while staying bit-identical to the
//!    sequential router — the winner is always the first feasible candidate
//!    *by candidate order*, never by completion order, and the stage
//!    counters only ever record work the sequential router would also have
//!    done (speculatively scored candidates past the winner are discarded,
//!    counters included).
//! 3. **Commit** — the found path reserves its edges and switch nodes in the
//!    calendars and the task is recorded. Commits always happen on the
//!    driver thread, in task order: commit order, not scoring order, defines
//!    the result.
//!
//! Each stage counts its work in [`RouterStats`], surfaced through
//! `SynthesisReport` so regressions in window rejection rates or search
//! effort are visible in the benchmark artifacts.
//!
//! # Allocation discipline
//!
//! The hot loops run on dense, index-addressed tables — a bitset for the
//! used-edge set, per-edge slots for the active caches, per-sample slots for
//! the cache assignment — and on scratch buffers (window builder, Dijkstra
//! arrays, price blocks) that are reused across all tasks of a run. The
//! steady-state allocation rate per routed task is pinned by the
//! `alloc_discipline` integration test.
//!
//! Tasks carry slack (`earliest_start ..= deadline`); when the preferred
//! window is congested — for example several samples leaving the same device
//! at once, which cannot all use its handful of ports simultaneously — the
//! router staggers the transport inside its slack instead of failing.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use serde::{Deserialize, Serialize};

use biochip_assay::Seconds;
use biochip_telemetry as telemetry;

use crate::connection_graph::RoutedTransport;
use crate::error::ArchError;
use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::oracle::{OracleTarget, RoutingOracle};
use crate::placement::Placement;
use crate::reservation::{Interval, ReservationTable};
use crate::segment_index::{OrderedCandidates, PairIndex, SegmentIndex};

/// A statically-scored, `(score, edge)`-sorted candidate list shared with
/// [`OrderedCandidates`].
type ScoredEdges = Rc<[(u64, GridEdgeId)]>;
use crate::transport::{TransportKind, TransportTask};

/// Options controlling the router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingOptions {
    /// Cost of traversing an edge that some earlier path already used.
    pub used_edge_cost: u64,
    /// Cost of traversing an edge that no path has used yet (pricing new
    /// edges higher minimizes the number of kept segments).
    pub new_edge_cost: u64,
    /// Whether cache segments may touch a device node when no pure
    /// switch-to-switch segment is free (needed on very small grids).
    pub allow_device_adjacent_storage: bool,
    /// Bounds the candidate start times tried when a task's preferred
    /// window is congested: the arithmetic stride over the slack stops at
    /// this many starts (2× with overrun steps included), and the full
    /// candidate list — calendar-derived extras appended — is truncated at
    /// 4× this value.
    pub max_window_candidates: usize,
    /// Price added per neighbouring segment that is already caching a sample
    /// while the candidate would be: spreads cache segments out instead of
    /// letting them cluster into walls that block each other's fetch egress
    /// (16 = four Manhattan-distance units of the store score).
    pub cache_neighbor_penalty: u64,
    /// Path-search price added for traversing a switch node adjacent to a
    /// device that is not an endpoint of the current task. Keeps transit
    /// traffic off device ports, which zero-slack stores and fetches need
    /// free at exactly their scheduled instant.
    pub foreign_port_penalty: u64,
    /// Last-resort postponement: how far beyond its deadline a transport may
    /// be shifted when no conflict-free window exists inside its slack.
    ///
    /// A schedule can demand more simultaneous movements at one device than
    /// the device has ports (e.g. three departing samples plus two arriving
    /// inputs around the same instant); a real chip controller serializes
    /// them. The resulting postponement is reported by
    /// [`Architecture::transport_postponement`](crate::Architecture::transport_postponement)
    /// so that the execution-time impact stays visible.
    pub max_deadline_overrun: Seconds,
}

impl Default for RoutingOptions {
    fn default() -> Self {
        RoutingOptions {
            used_edge_cost: 1,
            new_edge_cost: 4,
            allow_device_adjacent_storage: true,
            cache_neighbor_penalty: 16,
            foreign_port_penalty: 2,
            max_window_candidates: 16,
            max_deadline_overrun: 0,
        }
    }
}

/// One routed transportation path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// Nodes visited, in order (first = source, last = destination).
    pub nodes: Vec<NodeId>,
    /// Edges traversed, in order (`nodes.len() - 1` entries).
    pub edges: Vec<GridEdgeId>,
    /// Time window during which the path is occupied.
    pub window: Interval,
}

/// Per-stage work counters of the staged routing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouterStats {
    /// Tasks successfully routed (commit-stage executions).
    pub tasks_routed: usize,
    /// Candidate windows evaluated by the path-search stage.
    pub windows_tried: usize,
    /// Dijkstra invocations.
    pub path_searches: usize,
    /// Total nodes expanded (heap pops) across all path searches.
    pub nodes_expanded: usize,
    /// Cache segments priced by the store stage's segment index.
    pub segments_priced: usize,
    /// Tasks committed past their schedule-derived deadline.
    pub postponed_tasks: usize,
    /// Routing oracles this router built itself (0 when a prebuilt oracle
    /// was adopted via [`Router::with_oracle`]).
    pub oracle_builds: usize,
    /// Path searches the oracle rejected before any node expansion
    /// (destination-entry precheck) — each one a search the exact Dijkstra
    /// would have run to exhaustion and failed.
    pub oracle_rejected_searches: usize,
    /// Frontier pushes pruned by the oracle's static-reachability
    /// tightening (the admissible bound snaps to ∞ for transit nodes walled
    /// off from the target's component).
    pub oracle_tightenings: usize,
    /// Store-claim candidates pruned by the oracle's producer-region flood
    /// before any probe was paid for them.
    pub oracle_pruned_candidates: usize,
}

/// Search-effort counters of one pure scoring step. Accumulated into
/// [`RouterStats`] strictly in candidate order, and only for candidates the
/// sequential router would also have scored.
#[derive(Debug, Clone, Copy, Default)]
struct EvalCounters {
    searches: usize,
    nodes: usize,
    rejected: usize,
    tightened: usize,
}

impl RouterStats {
    fn absorb(&mut self, c: EvalCounters) {
        self.path_searches += c.searches;
        self.nodes_expanded += c.nodes;
        self.oracle_rejected_searches += c.rejected;
        self.oracle_tightenings += c.tightened;
    }
}

/// Dense bitset over grid-edge indices — the used-edge set of the chip.
/// Replaces the previous `HashSet<GridEdgeId>`: `contains` sits on the
/// Dijkstra hot path (every relaxed edge asks it for its price) and the
/// bitset answers it with one shift and mask, allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DenseEdgeSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseEdgeSet {
    fn new(edges: usize) -> Self {
        DenseEdgeSet {
            words: vec![0; edges.div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, edge: GridEdgeId) -> bool {
        let i = edge.index();
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    fn insert(&mut self, edge: GridEdgeId) -> bool {
        let i = edge.index();
        let mask = 1u64 << (i % 64);
        let fresh = self.words[i / 64] & mask == 0;
        if fresh {
            self.words[i / 64] |= mask;
            self.len += 1;
        }
        fresh
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Member edges in ascending id order (deterministic by construction,
    /// unlike the hash-set iteration it replaces).
    fn to_vec(&self) -> Vec<GridEdgeId> {
        let mut out = Vec::with_capacity(self.len);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(GridEdgeId(w * 64 + b));
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Dense per-sample cache assignment (`sample id → (cache segment, exit
/// node)`), replacing a `HashMap<usize, _>` on the store/fetch path.
#[derive(Debug, Default)]
struct SampleCaches {
    slots: Vec<Option<(GridEdgeId, NodeId)>>,
}

impl SampleCaches {
    fn get(&self, sample: usize) -> Option<(GridEdgeId, NodeId)> {
        self.slots.get(sample).copied().flatten()
    }

    fn set(&mut self, sample: usize, value: (GridEdgeId, NodeId)) {
        if self.slots.len() <= sample {
            self.slots.resize(sample + 1, None);
        }
        self.slots[sample] = Some(value);
    }

    fn remove(&mut self, sample: usize) {
        if let Some(slot) = self.slots.get_mut(sample) {
            *slot = None;
        }
    }
}

/// Bookkeeping of one segment that currently caches a sample.
#[derive(Debug, Clone, Copy)]
struct CacheInfo {
    /// Span during which the segment is blocked (arrival through planned
    /// fetch end plus the postponement guard).
    blocked: Interval,
    /// The reservation the store placed on the segment's calendar (storage
    /// arrival through `reserved_until`); lets the store stage reject a
    /// busy pool member with one indexed load instead of calendar searches.
    reserved: Interval,
    /// The window the fetch is planned to depart in.
    fetch_window: Interval,
    /// End of the reservation the store placed on the segment: planned
    /// fetch end plus `max_deadline_overrun`, so a postponed fetch still
    /// owns its segment while the sample rests past the plan.
    reserved_until: Seconds,
}

/// The time spans a store task must secure on its cache segment.
#[derive(Debug, Clone, Copy)]
struct StoreHorizon {
    /// Window of the store transport itself.
    store_window: Interval,
    /// Span the sample rests in the segment.
    storage: Interval,
    /// Planned (non-empty) departure window of the matching fetch.
    planned_fetch: Interval,
    /// Full span the segment is blocked: store arrival → planned fetch end.
    blocked: Interval,
}

impl StoreHorizon {
    fn new(task: &TransportTask, store_window: Interval, stored_until: Seconds) -> Self {
        let storage = Interval::new(store_window.end.min(stored_until), stored_until);
        let planned_fetch_end = stored_until + task.window_len().max(1);
        StoreHorizon {
            store_window,
            storage,
            planned_fetch: Interval::new(stored_until, planned_fetch_end),
            blocked: Interval::new(store_window.start, planned_fetch_end),
        }
    }
}

/// One Dijkstra frontier entry (min-heap by cost, then node id).
#[derive(Debug, PartialEq, Eq)]
struct SearchEntry {
    cost: u64,
    node: NodeId,
    /// The g-cost behind `cost` (`cost` minus the node's admissible bound),
    /// carried so a pop does not recompute the bound. Not part of the
    /// ordering — and it could not break ties anyway: entries with equal
    /// `(cost, node)` share the node's bound, hence the same `dist`.
    dist: u64,
}

impl Ord for SearchEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for SearchEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dense per-node scratch arrays reused across Dijkstra runs; `stamp`
/// versioning avoids clearing them between searches and the frontier heap
/// keeps its allocation. Every scoring thread owns one.
#[derive(Debug, Default)]
struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<(NodeId, GridEdgeId)>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: std::collections::BinaryHeap<SearchEntry>,
    // Memo of calendar answers, keyed by (window, state generation).
    // While both are unchanged, `edge_free`/`node_free` are pure: an edge
    // is examined from both of its endpoints, a node once per incoming
    // edge, and sibling probes of one candidate batch flood the same
    // region — caching the first answer elides most of the calendar
    // binary searches that dominate the relax loop.
    cal_epoch: u32,
    memo_ctx: Option<(Interval, u64)>,
    edge_free_stamp: Vec<u32>,
    edge_free_val: Vec<bool>,
    node_free_stamp: Vec<u32>,
    node_free_val: Vec<bool>,
}

impl DijkstraScratch {
    fn for_grid(grid: &ConnectionGrid) -> Self {
        DijkstraScratch {
            dist: vec![0; grid.num_nodes()],
            prev: vec![(NodeId(0), GridEdgeId(0)); grid.num_nodes()],
            stamp: vec![0; grid.num_nodes()],
            epoch: 0,
            heap: std::collections::BinaryHeap::new(),
            cal_epoch: 0,
            memo_ctx: None,
            edge_free_stamp: vec![0; grid.num_edges()],
            edge_free_val: vec![false; grid.num_edges()],
            node_free_stamp: vec![0; grid.num_nodes()],
            node_free_val: vec![false; grid.num_nodes()],
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: every stale stamp would look current, so reset.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    /// Declare the (window, state generation) the calendar memo answers
    /// for; a change invalidates every memoized answer at once.
    fn calendar_context(&mut self, window: Interval, generation: u64) {
        if self.memo_ctx == Some((window, generation)) {
            return;
        }
        self.memo_ctx = Some((window, generation));
        self.cal_epoch = self.cal_epoch.wrapping_add(1);
        if self.cal_epoch == 0 {
            // Wrapped: every stale stamp would look current, so reset.
            self.edge_free_stamp.fill(0);
            self.node_free_stamp.fill(0);
            self.cal_epoch = 1;
        }
    }

    fn edge_free_memo(&mut self, edge: GridEdgeId, query: impl FnOnce() -> bool) -> bool {
        let i = edge.index();
        if self.edge_free_stamp[i] == self.cal_epoch {
            return self.edge_free_val[i];
        }
        let free = query();
        self.edge_free_stamp[i] = self.cal_epoch;
        self.edge_free_val[i] = free;
        free
    }

    fn node_free_memo(&mut self, node: NodeId, query: impl FnOnce() -> bool) -> bool {
        let i = node.index();
        if self.node_free_stamp[i] == self.cal_epoch {
            return self.node_free_val[i];
        }
        let free = query();
        self.node_free_stamp[i] = self.cal_epoch;
        self.node_free_val[i] = free;
        free
    }

    fn dist(&self, node: NodeId) -> u64 {
        if self.stamp[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            u64::MAX
        }
    }

    fn set(&mut self, node: NodeId, dist: u64, prev: Option<(NodeId, GridEdgeId)>) {
        let i = node.index();
        self.stamp[i] = self.epoch;
        self.dist[i] = dist;
        if let Some(p) = prev {
            self.prev[i] = p;
        }
    }
}

/// Reusable buffers of the window-selection stage (driver-only). The
/// original implementation allocated a `Vec`, a `HashSet` and a `BTreeSet`
/// per task; these buffers make the stage allocation-free in steady state
/// while reproducing the exact candidate order (linear dedup over the small
/// start list, sort+dedup over the calendar extras).
#[derive(Debug, Default)]
struct WindowScratch {
    /// The produced candidate list (handed out via `mem::take`, returned
    /// after the drive).
    out: Vec<Interval>,
    starts: Vec<Seconds>,
    seen: Vec<Seconds>,
    extras: Vec<Seconds>,
    resources: Vec<WindowResource>,
    /// Viable-window buffer of the fetch stage.
    viable: Vec<Interval>,
    /// Price block of the store stage's speculative pricer.
    prices: Vec<Option<u64>>,
    /// Producer-region flood of the store stage's claim pruning.
    region: RegionScratch,
}

/// Pop budget of the claim-region flood. Small enough that an open grid —
/// where pruning can never fire — gives up after a handful of calendar
/// probes, large enough to fully map the walled-in pockets around a
/// congested producer (empirically a few dozen transit nodes).
const CLAIM_REGION_POPS: usize = 64;

/// Stamped visited-set + queue of the bounded claim-region flood: the set
/// of transit nodes the producer can reach during one store window. Reused
/// across windows and tasks (allocation-free in steady state); `complete`
/// is only set when the frontier drained within [`CLAIM_REGION_POPS`], i.e.
/// when the region is *exact* and pruning against it is sound.
#[derive(Debug, Default)]
struct RegionScratch {
    stamp: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    complete: bool,
}

impl RegionScratch {
    fn begin(&mut self, nodes: usize) {
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
        self.complete = false;
    }

    #[inline]
    fn mark(&mut self, node: NodeId) {
        self.stamp[node.index()] = self.epoch;
    }

    #[inline]
    fn contains(&self, node: NodeId) -> bool {
        self.stamp[node.index()] == self.epoch
    }
}

/// Everything about a routing run that is frozen after [`Router::new`]:
/// grid topology, placement-derived lookup tables and the options. Shared
/// read-only with every scoring thread.
#[derive(Debug)]
struct RouteCtx<'a> {
    grid: &'a ConnectionGrid,
    placement: &'a Placement,
    options: RoutingOptions,
    /// The precomputed per-architecture search structure: the dense device
    /// tables on the Dijkstra hot path plus the static transit components.
    /// Built once per `(grid, placement)` and shared — across the strict
    /// and relaxed routing passes, across warm restarts, and (through the
    /// server's [`OracleCache`](crate::OracleCache)) across jobs.
    oracle: Arc<RoutingOracle>,
    /// Whether the oracle's reject-only search assists (destination
    /// precheck, h = ∞ tightening, claim-region pruning) are armed. Only on
    /// storage-sized grids, and switchable off so tests can prove the
    /// routed output does not depend on it.
    assists: bool,
    /// Whether the grid is storage-sized (side ≥ `SCALE_GRID_SIDE`). The
    /// scale heuristics — pool-first reuse, cache guards, foreign-port
    /// pricing, A*-directed search — only engage here, so paper-scale grids
    /// reproduce the pre-refactor router's chips exactly.
    scale_mode: bool,
}

/// The mutable routing state: reservation calendars, the used-edge set and
/// the cache bookkeeping. Commits mutate it on the driver thread; scoring
/// reads a frozen snapshot of it (through an `RwLock` when a worker pool is
/// active — uncontended in sequential runs).
#[derive(Debug)]
struct RouteState {
    reservations: ReservationTable,
    used_edges: DenseEdgeSet,
    /// Cache segment and exit node chosen for each stored sample.
    cache_of_sample: SampleCaches,
    /// Per-edge slot of the segments currently caching a sample, with the
    /// span they are blocked for and the window their fetch is planned in.
    /// Drives the store stage's occupancy pricing and the egress guards.
    active_caches: Vec<Option<CacheInfo>>,
    /// Every segment that has ever cached a sample. Store tasks reuse pool
    /// members first (first-fit interval assignment), keeping the distinct
    /// cache-segment count near the schedule's storage peak.
    cache_pool: BTreeSet<GridEdgeId>,
    /// Pool members in the order they joined (drives the incremental
    /// per-pair pooled candidate lists).
    pool_log: Vec<GridEdgeId>,
    /// Bumped on every mutable acquisition of the state lock. Keys the
    /// per-(window, state) calendar memo in [`DijkstraScratch`]: a memo
    /// entry is only reused while the generation it was recorded under is
    /// still current, so probes against a frozen snapshot share answers and
    /// any commit invalidates them wholesale.
    generation: u64,
}

impl RouteState {
    fn new(grid: &ConnectionGrid) -> Self {
        RouteState {
            reservations: ReservationTable::new(grid),
            used_edges: DenseEdgeSet::new(grid.num_edges()),
            cache_of_sample: SampleCaches::default(),
            active_caches: vec![None; grid.num_edges()],
            cache_pool: BTreeSet::new(),
            pool_log: Vec::new(),
            generation: 0,
        }
    }
}

/// A resource whose reservation calendar constrains a task's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowResource {
    Edge(GridEdgeId),
    Node(NodeId),
}

/// A pure, read-only scoring view over the frozen context and a snapshot of
/// the mutable state. Every method is a function of its arguments and the
/// snapshot — no interior mutation, no completion-order dependence — which
/// is the invariant the parallel scoring pool rests on.
#[derive(Clone, Copy)]
struct Eval<'e, 'a> {
    ctx: &'e RouteCtx<'a>,
    state: &'e RouteState,
}

impl<'e, 'a> Eval<'e, 'a> {
    /// The device occupying a node, if any (dense O(1) lookup).
    fn device_at(&self, node: NodeId) -> Option<biochip_schedule::DeviceId> {
        self.ctx.oracle.device_of_node[node.index()]
    }

    /// Candidate occupation windows inside the task's slack: the preferred
    /// window first, then slack candidates in ascending start order, then
    /// postponed windows up to the configured deadline overrun (last
    /// resort). Besides the arithmetic grid of start times, the calendars
    /// of the resources a window must not conflict with (typically the port
    /// edges of the two devices) are asked for their first feasible windows
    /// directly, so congested tasks jump straight to a plausible start
    /// instead of stepping blindly through their slack.
    fn candidate_windows(
        &self,
        task: &TransportTask,
        allow_overrun: bool,
        ws: &mut WindowScratch,
        out: &mut Vec<Interval>,
    ) {
        out.clear();
        ws.resources.clear();
        self.window_resources(task, &mut ws.resources);
        let len = task.window_len().max(1);
        let cap = self.ctx.options.max_window_candidates.max(1);

        // The pre-refactor candidate sequence, reproduced exactly so every
        // task the old router placed lands in the same window: preferred
        // start, then earliest, latest and a stride over the slack, then
        // arithmetic overrun steps.
        ws.starts.clear();
        ws.starts.push(task.window_start);
        let latest = if task.deadline >= task.earliest_start + len {
            let latest = task.deadline - len;
            ws.starts.push(task.earliest_start);
            ws.starts.push(latest);
            let mut s = task.earliest_start;
            while s <= latest && ws.starts.len() < self.ctx.options.max_window_candidates {
                ws.starts.push(s);
                s += len;
            }
            Some(latest)
        } else {
            None
        };
        let overrun_latest = if allow_overrun && self.ctx.options.max_deadline_overrun > 0 {
            let base = task.deadline.saturating_sub(len).max(task.earliest_start);
            let mut overrun = len;
            while overrun <= self.ctx.options.max_deadline_overrun && ws.starts.len() < 2 * cap {
                ws.starts.push(base + overrun);
                overrun += len;
            }
            Some((base, base + self.ctx.options.max_deadline_overrun))
        } else {
            None
        };
        // First-occurrence dedup, truncated at 2·cap — a linear scan over
        // the (small, bounded) start list replaces the per-task `HashSet`.
        ws.seen.clear();
        for &s in &ws.starts {
            if ws.seen.len() >= 2 * cap {
                break;
            }
            if ws.seen.contains(&s) {
                continue;
            }
            ws.seen.push(s);
            out.push(Interval::new(s, s + len));
        }

        // Calendar-driven extras: the earliest feasible starts on the
        // constraining resources, appended after the legacy sequence — they
        // only decide the outcome when every legacy candidate fails, which
        // is exactly the congested case the calendars resolve.
        ws.extras.clear();
        if let Some(latest) = latest {
            for resource in &ws.resources {
                for earliest in [task.earliest_start, task.window_start.min(latest)] {
                    if let Some(s) = self.first_free_on(*resource, len, earliest, latest) {
                        ws.extras.push(s);
                    }
                }
            }
        }
        if let Some((base, latest)) = overrun_latest {
            for resource in &ws.resources {
                if let Some(s) = self.first_free_on(*resource, len, base + 1, latest) {
                    ws.extras.push(s);
                }
            }
        }
        // Ascending dedup order, as the former `BTreeSet` iterated.
        ws.extras.sort_unstable();
        ws.extras.dedup();
        for &s in &ws.extras {
            let w = Interval::new(s, s + len);
            if !out.contains(&w) {
                out.push(w);
            }
        }
        out.truncate(4 * cap);
    }

    /// The resources whose calendars constrain a task's window: the port
    /// edges of its endpoint devices, plus the end nodes of the cache
    /// segment for fetches.
    fn window_resources(&self, task: &TransportTask, out: &mut Vec<WindowResource>) {
        match task.kind {
            TransportKind::Direct => {
                let from = self.ctx.placement.node_of(task.from_device);
                let to = self.ctx.placement.node_of(task.to_device);
                for &node in &[from, to] {
                    for &edge in self.ctx.grid.incident_edges(node) {
                        out.push(WindowResource::Edge(edge));
                    }
                }
            }
            TransportKind::Store => {
                let from = self.ctx.placement.node_of(task.from_device);
                for &edge in self.ctx.grid.incident_edges(from) {
                    out.push(WindowResource::Edge(edge));
                }
            }
            TransportKind::Fetch => {
                if let Some((cache_edge, exit)) = self.state.cache_of_sample.get(task.sample) {
                    let entry = self.ctx.grid.other_endpoint(cache_edge, exit);
                    out.push(WindowResource::Node(exit));
                    out.push(WindowResource::Node(entry));
                }
                let to = self.ctx.placement.node_of(task.to_device);
                for &edge in self.ctx.grid.incident_edges(to) {
                    out.push(WindowResource::Edge(edge));
                }
            }
        }
    }

    fn first_free_on(
        &self,
        resource: WindowResource,
        duration: Seconds,
        earliest: Seconds,
        latest_start: Seconds,
    ) -> Option<Seconds> {
        match resource {
            WindowResource::Edge(edge) => self.state.reservations.first_free_edge_window(
                edge,
                duration,
                earliest,
                latest_start,
            ),
            WindowResource::Node(node) => self.state.reservations.first_free_node_window(
                node,
                duration,
                earliest,
                latest_start,
            ),
        }
    }

    /// Whether the producer can get a sample out through at least one of its
    /// port edges during the window. When not, no candidate segment can be
    /// reached — the store stage skips the window before pricing the pool.
    fn producer_can_leave(&self, from_node: NodeId, window: Interval) -> bool {
        self.ctx.grid.incident_edges(from_node).iter().any(|&port| {
            self.state.reservations.edge_free(port, window)
                && self
                    .state
                    .reservations
                    .node_free(self.ctx.grid.other_endpoint(port, from_node), window)
        })
    }

    /// Dynamic price of a cache-segment candidate for the given storage
    /// horizon: `None` when the segment is reserved anywhere in the horizon
    /// or a guard rejects it, otherwise the used/new price plus the
    /// cache-neighbour occupancy penalty.
    fn price_segment(
        &self,
        edge: GridEdgeId,
        horizon: &StoreHorizon,
        to_node: NodeId,
    ) -> Option<u64> {
        // O(1) fast path: a segment that currently caches a sample is
        // reserved for that sample's whole horizon; no calendar search
        // needed to reject it.
        if let Some(info) = self.state.active_caches[edge.index()] {
            if info.reserved.overlaps(&horizon.blocked) {
                return None;
            }
        }
        let r = &self.state.reservations;
        if !(r.edge_free(edge, horizon.store_window)
            && r.edge_free(edge, horizon.storage)
            && r.edge_free(edge, horizon.planned_fetch))
        {
            return None;
        }
        if self.ctx.scale_mode
            && (!self.egress_stays_open(edge, horizon.planned_fetch, to_node)
                || self.strangles_cached_neighbor(edge, horizon.blocked)
                || self.starves_device_ports(edge, horizon.blocked))
        {
            return None;
        }
        let base = if self.state.used_edges.contains(edge) {
            self.ctx.options.used_edge_cost
        } else {
            self.ctx.options.new_edge_cost
        };
        if !self.ctx.scale_mode {
            return Some(base);
        }
        Some(
            base + self.ctx.options.cache_neighbor_penalty
                * self.caching_neighbors(edge, horizon.blocked),
        )
    }

    /// Number of incident segments (at either endpoint) that cache a sample
    /// while `span` is blocked — the occupancy term of the store score.
    fn caching_neighbors(&self, edge: GridEdgeId, span: Interval) -> u64 {
        let (x, y) = self.ctx.grid.endpoints(edge);
        let mut count = 0;
        for node in [x, y] {
            for &neighbor in self.ctx.grid.incident_edges(node) {
                if neighbor == edge {
                    continue;
                }
                if let Some(info) = self.state.active_caches[neighbor.index()] {
                    if info.blocked.overlaps(&span) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Whether a sample cached in `edge` could still leave towards
    /// `to_node` during its planned fetch window: at least one incident
    /// segment at one end must be free for the fetch to depart through.
    /// Edges leading into a foreign device do not count — a fetch path may
    /// only enter its own consumer. Without this guard a distance-greedy
    /// store can pick a spot that is already walled in by longer-lived
    /// caches, and the zero-slack fetch later fails.
    fn egress_stays_open(&self, edge: GridEdgeId, fetch_window: Interval, to_node: NodeId) -> bool {
        let (x, y) = self.ctx.grid.endpoints(edge);
        [x, y].into_iter().any(|node| {
            self.device_at(node).is_none()
                && self.ctx.grid.incident_edges(node).iter().any(|&out| {
                    if out == edge {
                        return false;
                    }
                    let z = self.ctx.grid.other_endpoint(out, node);
                    (self.device_at(z).is_none() || z == to_node)
                        && self.state.reservations.edge_free(out, fetch_window)
                })
        })
    }

    /// Whether caching on `edge` would leave a device with too few
    /// cache-free port edges during the blocked span. Every transport of a
    /// device flows through its handful of ports; parking samples on them
    /// until fewer than two remain (one, on low-degree grid corners)
    /// guarantees that some zero-slack arrival or departure finds every
    /// port occupied.
    fn starves_device_ports(&self, edge: GridEdgeId, blocked: Interval) -> bool {
        let (x, y) = self.ctx.grid.endpoints(edge);
        for node in [x, y] {
            if self.device_at(node).is_none() {
                continue;
            }
            let ports = self.ctx.grid.incident_edges(node);
            let required = ports.len().saturating_sub(1).min(2);
            let cache_free = ports
                .iter()
                .filter(|&&port| {
                    port != edge
                        && self.state.active_caches[port.index()]
                            .is_none_or(|info| !info.blocked.overlaps(&blocked))
                })
                .count();
            if cache_free < required {
                return true;
            }
        }
        false
    }

    /// Whether claiming `edge` for `blocked` would take the **last** free
    /// egress segment of a neighbouring cached sample during its planned
    /// fetch window. Placing such a store would strand the neighbour, so the
    /// candidate is rejected up front.
    fn strangles_cached_neighbor(&self, edge: GridEdgeId, blocked: Interval) -> bool {
        let (x, y) = self.ctx.grid.endpoints(edge);
        for node in [x, y] {
            for &neighbor in self.ctx.grid.incident_edges(node) {
                if neighbor == edge {
                    continue;
                }
                let Some(info) = self.state.active_caches[neighbor.index()] else {
                    continue;
                };
                if !info.fetch_window.overlaps(&blocked) {
                    continue;
                }
                let (nx, ny) = self.ctx.grid.endpoints(neighbor);
                let still_escapes = [nx, ny].into_iter().any(|end| {
                    self.device_at(end).is_none()
                        && self.ctx.grid.incident_edges(end).iter().any(|&out| {
                            out != neighbor
                                && out != edge
                                // The neighbour's consumer is unknown here;
                                // conservatively require a non-device escape.
                                && self
                                    .device_at(self.ctx.grid.other_endpoint(out, end))
                                    .is_none()
                                && self.state.reservations.edge_free(out, info.fetch_window)
                        })
                });
                if !still_escapes {
                    return true;
                }
            }
        }
        false
    }

    /// Read-only probe of one store claim: can the sample be routed from the
    /// producer into `edge` for this horizon? Returns the approach path
    /// (cache segment appended) and the chosen exit node; the commit is the
    /// driver's.
    fn find_cache_entry(
        &self,
        from: NodeId,
        edge: GridEdgeId,
        horizon: &StoreHorizon,
        scratch: &mut DijkstraScratch,
        counters: &mut EvalCounters,
    ) -> Option<(RoutedPath, NodeId)> {
        let store_window = horizon.store_window;
        let (x, y) = self.ctx.grid.endpoints(edge);
        scratch.calendar_context(store_window, self.state.generation);
        // Try entering the segment from either endpoint.
        for (entry, exit) in [(x, y), (y, x)] {
            // The sample slides into the segment towards `exit`, so the far
            // end must be a free switch node; the entry may be a device node
            // only if it is the producer itself.
            if self.device_at(exit).is_some()
                || !scratch.node_free_memo(exit, || {
                    self.state.reservations.node_free(exit, store_window)
                })
            {
                continue;
            }
            if self.device_at(entry).is_some() && entry != from {
                continue;
            }
            let Some(mut path) =
                self.shortest_path(from, entry, store_window, Some(edge), scratch, counters)
            else {
                continue;
            };
            path.nodes.push(exit);
            path.edges.push(edge);
            return Some((path, exit));
        }
        None
    }

    /// Read-only probe of one fetch window: the full path (cache segment
    /// first) from the sample's resting segment to the consumer, leaving
    /// through the recorded exit node first and falling back to the other
    /// end of the segment.
    #[allow(clippy::too_many_arguments)]
    fn find_fetch_path(
        &self,
        to: NodeId,
        cache_edge: GridEdgeId,
        first: NodeId,
        second: NodeId,
        window: Interval,
        scratch: &mut DijkstraScratch,
        counters: &mut EvalCounters,
    ) -> Option<RoutedPath> {
        for leave in [first, second] {
            let Some(path) =
                self.shortest_path(leave, to, window, Some(cache_edge), scratch, counters)
            else {
                continue;
            };
            // The sample first traverses its cache segment, then the path.
            let entry = self.ctx.grid.other_endpoint(cache_edge, leave);
            let mut nodes = Vec::with_capacity(path.nodes.len() + 1);
            nodes.push(entry);
            nodes.extend(path.nodes.iter().copied());
            let mut edges = Vec::with_capacity(path.edges.len() + 1);
            edges.push(cache_edge);
            edges.extend(path.edges.iter().copied());
            return Some(RoutedPath {
                nodes,
                edges,
                window,
            });
        }
        None
    }

    /// Dijkstra shortest path from `from` to `to` during `window`, avoiding
    /// reserved edges/nodes and foreign device nodes. `skip_edge` is excluded
    /// from the search (used to keep a cache segment for the sample itself).
    fn shortest_path(
        &self,
        from: NodeId,
        to: NodeId,
        window: Interval,
        skip_edge: Option<GridEdgeId>,
        scratch: &mut DijkstraScratch,
        counters: &mut EvalCounters,
    ) -> Option<RoutedPath> {
        counters.searches += 1;
        if from == to {
            return Some(RoutedPath {
                nodes: vec![from],
                edges: Vec::new(),
                window,
            });
        }
        scratch.calendar_context(window, self.state.generation);
        let endpoint_blocked = |node: NodeId, scratch: &mut DijkstraScratch| {
            self.device_at(node).is_none()
                && !scratch.node_free_memo(node, || self.state.reservations.node_free(node, window))
        };
        if endpoint_blocked(from, scratch) || endpoint_blocked(to, scratch) {
            return None;
        }

        // Oracle precheck: the search can only succeed if some incident
        // edge of `to` admits the final hop — the edge is not the skipped
        // cache segment, its calendar is free for the window, and its far
        // endpoint is the source itself or an unreserved transit switch.
        // The relax loop below applies exactly these tests when stepping
        // into `to`, so a destination with no admissible last hop is a
        // guaranteed miss: rejecting it here skips the exhaustive failed
        // flood without touching any search that can succeed.
        if self.ctx.assists && self.destination_unenterable(from, to, window, skip_edge, scratch) {
            counters.rejected += 1;
            return None;
        }

        // On storage-sized grids the search is A*-directed by the Manhattan
        // lower bound (admissible and consistent: every step costs at least
        // the cheaper edge price). Paper-scale grids keep plain Dijkstra so
        // their tie-breaking — and thus their synthesized chips — stay
        // exactly as before the refactor.
        let min_edge_cost = self
            .ctx
            .options
            .used_edge_cost
            .min(self.ctx.options.new_edge_cost);
        let heuristic_on = self.ctx.scale_mode;
        let to_coord = self.ctx.grid.coord(to);
        let bound = |node: NodeId| -> u64 {
            if heuristic_on {
                self.ctx.grid.coord(node).manhattan(to_coord) as u64 * min_edge_cost
            } else {
                0
            }
        };
        // Oracle tightening of that bound: for transit nodes statically
        // walled off from `to`'s component by the device placement, the
        // admissible estimate snaps to ∞ — they are never pushed. Such a
        // node cannot lie on *any* path that reaches `to`, so the path the
        // search settles on (and its tie-breaking) is untouched. With a
        // single transit component the test can never exclude a node, so
        // it is skipped wholesale.
        let target: Option<OracleTarget> = (self.ctx.assists
            && self.ctx.oracle.transit_components() > 1)
            .then(|| self.ctx.oracle.target_of(to));
        let from_is_device = self.device_at(from).is_some();
        let to_is_device = self.device_at(to).is_some();

        scratch.begin();
        scratch.set(from, 0, None);
        let from_bound = bound(from);
        scratch.heap.push(SearchEntry {
            cost: from_bound,
            node: from,
            dist: 0,
        });
        let mut reached = false;

        while let Some(SearchEntry {
            cost: _,
            node,
            dist: cost,
        }) = scratch.heap.pop()
        {
            counters.nodes += 1;
            if node == to {
                reached = true;
                break;
            }
            if cost > scratch.dist(node) {
                continue;
            }
            for &edge in self.ctx.grid.incident_edges(node) {
                if Some(edge) == skip_edge {
                    continue;
                }
                let next = self.ctx.grid.other_endpoint(edge, node);
                // Device nodes may only be path endpoints.
                if next != to && self.device_at(next).is_some() {
                    continue;
                }
                if let Some(target) = &target {
                    if next != to && !self.ctx.oracle.reaches(next, target) {
                        counters.tightened += 1;
                        continue;
                    }
                }
                let edge_admits = scratch
                    .edge_free_memo(edge, || self.state.reservations.edge_free(edge, window));
                if !edge_admits
                    || (self.device_at(next).is_none()
                        && !scratch.node_free_memo(next, || {
                            self.state.reservations.node_free(next, window)
                        }))
                {
                    continue;
                }
                let mut edge_cost = if self.state.used_edges.contains(edge) {
                    self.ctx.options.used_edge_cost
                } else {
                    self.ctx.options.new_edge_cost
                };
                // Keep foreign device ports clear (scale grids): crossing a
                // switch that serves another device's port is priced up so
                // transit traffic does not squat on ports that zero-slack
                // transports will need at exactly their scheduled instant.
                // The flat per-node port count, corrected for the search
                // endpoints, equals walking `adjacent_device_nodes[next]`
                // and counting entries that are neither `from` nor `to`.
                if self.ctx.scale_mode {
                    let mut foreign =
                        u64::from(self.ctx.oracle.adjacent_device_count[next.index()]);
                    if foreign > 0 {
                        if from_is_device && self.ctx.grid.edge_between(next, from).is_some() {
                            foreign -= 1;
                        }
                        if to_is_device && self.ctx.grid.edge_between(next, to).is_some() {
                            foreign -= 1;
                        }
                        edge_cost += foreign * self.ctx.options.foreign_port_penalty;
                    }
                }
                let next_cost = cost + edge_cost;
                if next_cost < scratch.dist(next) {
                    scratch.set(next, next_cost, Some((node, edge)));
                    scratch.heap.push(SearchEntry {
                        cost: next_cost + bound(next),
                        node: next,
                        dist: next_cost,
                    });
                }
            }
        }

        if !reached {
            return None;
        }
        let mut nodes = vec![to];
        let mut edges = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let (parent, edge) = scratch.prev[cursor.index()];
            nodes.push(parent);
            edges.push(edge);
            cursor = parent;
        }
        nodes.reverse();
        edges.reverse();
        Some(RoutedPath {
            nodes,
            edges,
            window,
        })
    }

    /// Exact failure precheck of [`shortest_path`](Eval::shortest_path):
    /// `true` when no incident edge of `to` admits the final hop, i.e. the
    /// search is a guaranteed miss. O(degree) against the calendars.
    fn destination_unenterable(
        &self,
        from: NodeId,
        to: NodeId,
        window: Interval,
        skip_edge: Option<GridEdgeId>,
        scratch: &mut DijkstraScratch,
    ) -> bool {
        !self.ctx.grid.incident_edges(to).iter().any(|&edge| {
            if Some(edge) == skip_edge
                || !scratch.edge_free_memo(edge, || self.state.reservations.edge_free(edge, window))
            {
                return false;
            }
            let hop = self.ctx.grid.other_endpoint(edge, to);
            hop == from
                || (self.device_at(hop).is_none()
                    && scratch
                        .node_free_memo(hop, || self.state.reservations.node_free(hop, window)))
        })
    }

    /// Bounded flood of the transit region the producer can reach during
    /// one store window, under exactly the admission rules of
    /// [`shortest_path`](Eval::shortest_path) (minus any `skip_edge`, which
    /// makes the region a superset for every per-candidate skip — sound for
    /// rejection). Runs unconditionally before a window's claim stream so
    /// the pruning decision is a pure function of the frozen snapshot,
    /// identical at any thread count; a lazily-triggered flood would not
    /// be, because parallel claim batches form before failures are seen.
    ///
    /// `region.complete` is only set when the frontier drained within the
    /// pop budget; otherwise the region is partial and pruning stays off.
    /// The flood touches no [`EvalCounters`] — it is oracle bookkeeping,
    /// not search work the sequential router would have done.
    fn flood_claim_region(
        &self,
        from: NodeId,
        window: Interval,
        region: &mut RegionScratch,
        scratch: &mut DijkstraScratch,
    ) {
        scratch.calendar_context(window, self.state.generation);
        region.begin(self.ctx.grid.num_nodes());
        region.mark(from);
        region.queue.push(from);
        let mut cursor = 0;
        let mut pops = 0;
        while cursor < region.queue.len() {
            if pops >= CLAIM_REGION_POPS {
                return;
            }
            pops += 1;
            let node = region.queue[cursor];
            cursor += 1;
            for &edge in self.ctx.grid.incident_edges(node) {
                let next = self.ctx.grid.other_endpoint(edge, node);
                if self.device_at(next).is_some() || region.contains(next) {
                    continue;
                }
                if !scratch.edge_free_memo(edge, || self.state.reservations.edge_free(edge, window))
                    || !scratch
                        .node_free_memo(next, || self.state.reservations.node_free(next, window))
                {
                    continue;
                }
                region.mark(next);
                region.queue.push(next);
            }
        }
        region.complete = true;
    }
}

// ---------------------------------------------------------------------------
// The scoped scoring pool
// ---------------------------------------------------------------------------

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read_state(state: &RwLock<RouteState>) -> RwLockReadGuard<'_, RouteState> {
    state
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_state(state: &RwLock<RouteState>) -> RwLockWriteGuard<'_, RouteState> {
    let mut guard = state
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    guard.generation += 1;
    guard
}

/// One batch of pure scoring work, fanned over the pool. All payloads are
/// plain copies — workers never chase driver-owned pointers.
#[derive(Debug)]
enum JobKind {
    /// Price cache-segment candidates for one store horizon.
    Price {
        horizon: StoreHorizon,
        to_node: NodeId,
        edges: Vec<GridEdgeId>,
    },
    /// Probe store claims (approach path into each candidate segment).
    Claim {
        from: NodeId,
        horizon: StoreHorizon,
        edges: Vec<GridEdgeId>,
    },
    /// Score candidate windows of a direct transport.
    Direct {
        from: NodeId,
        to: NodeId,
        windows: Vec<Interval>,
    },
    /// Score candidate windows of a fetch transport.
    Fetch {
        to: NodeId,
        cache_edge: GridEdgeId,
        first: NodeId,
        second: NodeId,
        windows: Vec<Interval>,
    },
}

impl JobKind {
    fn len(&self) -> usize {
        match self {
            JobKind::Price { edges, .. } | JobKind::Claim { edges, .. } => edges.len(),
            JobKind::Direct { windows, .. } | JobKind::Fetch { windows, .. } => windows.len(),
        }
    }

    /// Items one cursor grab hands a worker: pricing items are tiny, so
    /// they are taken sixteen at a time; claims and window searches run one
    /// Dijkstra each and are grabbed singly.
    fn chunk(&self) -> usize {
        match self {
            JobKind::Price { .. } => 16,
            _ => 1,
        }
    }
}

/// The outcome of one scored item.
#[derive(Debug)]
enum ItemOut {
    Price(Option<u64>),
    Claim(EvalCounters, Option<(RoutedPath, NodeId)>),
    Window(EvalCounters, Option<RoutedPath>),
}

fn compute_item(
    eval: &Eval<'_, '_>,
    kind: &JobKind,
    i: usize,
    scratch: &mut DijkstraScratch,
) -> ItemOut {
    match kind {
        JobKind::Price {
            horizon,
            to_node,
            edges,
        } => ItemOut::Price(eval.price_segment(edges[i], horizon, *to_node)),
        JobKind::Claim {
            from,
            horizon,
            edges,
        } => {
            let mut c = EvalCounters::default();
            let found = eval.find_cache_entry(*from, edges[i], horizon, scratch, &mut c);
            ItemOut::Claim(c, found)
        }
        JobKind::Direct { from, to, windows } => {
            let mut c = EvalCounters::default();
            let found = eval.shortest_path(*from, *to, windows[i], None, scratch, &mut c);
            ItemOut::Window(c, found)
        }
        JobKind::Fetch {
            to,
            cache_edge,
            first,
            second,
            windows,
        } => {
            let mut c = EvalCounters::default();
            let found = eval.find_fetch_path(
                *to,
                *cache_edge,
                *first,
                *second,
                windows[i],
                scratch,
                &mut c,
            );
            ItemOut::Window(c, found)
        }
    }
}

/// One published batch: the work, a cursor the threads grab ranges from,
/// per-item result slots, and a completion latch the driver waits on.
#[derive(Debug)]
struct ScoreJob {
    kind: JobKind,
    n: usize,
    cursor: AtomicUsize,
    done: Mutex<usize>,
    finished: Condvar,
    results: Vec<Mutex<Option<ItemOut>>>,
}

#[derive(Debug)]
struct BoardSlot {
    generation: u64,
    job: Option<std::sync::Arc<ScoreJob>>,
    shutdown: bool,
}

/// The job board the scoped scoring threads poll. Lives only as long as one
/// [`Router::route_all`] call; workers borrow the frozen context and the
/// state lock, take a read snapshot per batch and park between batches.
#[derive(Debug)]
struct Board<'d, 'a> {
    ctx: &'d RouteCtx<'a>,
    state: &'d RwLock<RouteState>,
    slot: Mutex<BoardSlot>,
    wake: Condvar,
    panicked: AtomicBool,
    threads: usize,
}

impl<'d, 'a> Board<'d, 'a> {
    fn new(ctx: &'d RouteCtx<'a>, state: &'d RwLock<RouteState>, threads: usize) -> Self {
        Board {
            ctx,
            state,
            slot: Mutex::new(BoardSlot {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            wake: Condvar::new(),
            panicked: AtomicBool::new(false),
            threads,
        }
    }

    /// The worker body: wait for a batch generation, snapshot the state,
    /// drain cursor ranges, repeat until shutdown.
    fn worker_loop(&self) {
        let mut scratch = DijkstraScratch::for_grid(self.ctx.grid);
        let mut last_generation = 0u64;
        loop {
            let job = {
                let mut slot = lock_ignore_poison(&self.slot);
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.generation != last_generation {
                        if let Some(job) = &slot.job {
                            last_generation = slot.generation;
                            break std::sync::Arc::clone(job);
                        }
                    }
                    slot = self
                        .wake
                        .wait(slot)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let guard = read_state(self.state);
            let eval = Eval {
                ctx: self.ctx,
                state: &guard,
            };
            self.run_items(&job, &eval, &mut scratch);
        }
    }

    /// Drains cursor ranges of `job`, computing items into their slots.
    /// Shared by workers and the (participating) driver.
    fn run_items(&self, job: &ScoreJob, eval: &Eval<'_, '_>, scratch: &mut DijkstraScratch) {
        let chunk = job.kind.chunk();
        loop {
            let start = job.cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= job.n {
                break;
            }
            let end = (start + chunk).min(job.n);
            for i in start..end {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    compute_item(eval, &job.kind, i, scratch)
                }));
                match outcome {
                    Ok(out) => *lock_ignore_poison(&job.results[i]) = Some(out),
                    Err(_) => self.panicked.store(true, Ordering::Release),
                }
            }
            let mut done = lock_ignore_poison(&job.done);
            *done += end - start;
            if *done >= job.n {
                job.finished.notify_all();
            }
        }
    }

    /// Publishes a batch, participates in computing it, waits for the last
    /// item and collects the results in item order.
    ///
    /// The caller supplies its own `eval` snapshot (it may already hold a
    /// read guard); workers take their own read snapshots, which is safe
    /// because no commit can run while the driver sits in this call.
    fn scatter(
        &self,
        kind: JobKind,
        eval: &Eval<'_, '_>,
        scratch: &mut DijkstraScratch,
    ) -> Vec<ItemOut> {
        let n = kind.len();
        if n == 0 {
            return Vec::new();
        }
        let job = std::sync::Arc::new(ScoreJob {
            kind,
            n,
            cursor: AtomicUsize::new(0),
            done: Mutex::new(0),
            finished: Condvar::new(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
        });
        {
            let mut slot = lock_ignore_poison(&self.slot);
            slot.generation += 1;
            slot.job = Some(std::sync::Arc::clone(&job));
        }
        self.wake.notify_all();
        self.run_items(&job, eval, scratch);
        let mut done = lock_ignore_poison(&job.done);
        while *done < job.n {
            if self.panicked.load(Ordering::Acquire) {
                panic!("a router scoring worker panicked");
            }
            let (guard, _) = job
                .finished
                .wait_timeout(done, std::time::Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            done = guard;
        }
        drop(done);
        if self.panicked.load(Ordering::Acquire) {
            panic!("a router scoring worker panicked");
        }
        job.results
            .iter()
            .map(|slot| {
                lock_ignore_poison(slot)
                    .take()
                    .expect("every scored item leaves a result")
            })
            .collect()
    }
}

/// Ends the worker loops when the driver leaves (or unwinds out of) the
/// routing scope.
struct ShutdownGuard<'b, 'd, 'a>(&'b Board<'d, 'a>);

impl Drop for ShutdownGuard<'_, '_, '_> {
    fn drop(&mut self) {
        let mut slot = lock_ignore_poison(&self.0.slot);
        slot.shutdown = true;
        slot.job = None;
        drop(slot);
        self.0.wake.notify_all();
    }
}

/// Speculative block pricer feeding [`OrderedCandidates`].
///
/// The lazy merge consumes candidates strictly in static-score order and
/// prices each exactly once; this pricer answers those queries from a block
/// buffer that is filled ahead of the cursor — in parallel when a pool is
/// active. Prices are pure, so speculative entries past the merge's stopping
/// point are simply discarded; the consumed count (and with it the
/// `segments_priced` counter) is the merge's own, identical to a sequential
/// run.
struct Pricer<'p> {
    list: ScoredEdges,
    horizon: StoreHorizon,
    to_node: NodeId,
    /// Block buffer (borrowed from the window scratch), aligned so that
    /// `buf[cursor - base]` is the price of `list[cursor]`.
    buf: &'p mut Vec<Option<u64>>,
    base: usize,
    cursor: usize,
}

/// List positions priced per speculative block when a pool is active.
/// Blocks amortize the scatter handshake over many (sub-microsecond)
/// pricings while bounding the waste past the merge's stopping point to
/// one block per candidate stream.
const PRICE_BLOCK: usize = 64;

impl<'p> Pricer<'p> {
    fn new(
        list: ScoredEdges,
        horizon: StoreHorizon,
        to_node: NodeId,
        buf: &'p mut Vec<Option<u64>>,
    ) -> Self {
        buf.clear();
        Pricer {
            list,
            horizon,
            to_node,
            buf,
            base: 0,
            cursor: 0,
        }
    }

    /// The price of the next list position, in consumption order.
    fn next(
        &mut self,
        eval: &Eval<'_, '_>,
        board: Option<&Board<'_, '_>>,
        scratch: &mut DijkstraScratch,
    ) -> Option<u64> {
        debug_assert!(self.cursor < self.list.len());
        if self.cursor >= self.base + self.buf.len() {
            self.fill_from(self.cursor, eval, board, scratch);
        }
        let price = self.buf[self.cursor - self.base];
        self.cursor += 1;
        price
    }

    fn fill_from(
        &mut self,
        start: usize,
        eval: &Eval<'_, '_>,
        board: Option<&Board<'_, '_>>,
        scratch: &mut DijkstraScratch,
    ) {
        self.base = start;
        self.buf.clear();
        let remaining = self.list.len() - start;
        match board {
            // Blocks only pay off when enough of the stream is left; short
            // tails are priced inline like the sequential path.
            Some(board) if remaining >= 8 && board.threads > 1 => {
                let end = (start + PRICE_BLOCK).min(self.list.len());
                let edges: Vec<GridEdgeId> =
                    self.list[start..end].iter().map(|&(_, e)| e).collect();
                for out in board.scatter(
                    JobKind::Price {
                        horizon: self.horizon,
                        to_node: self.to_node,
                        edges,
                    },
                    eval,
                    scratch,
                ) {
                    match out {
                        ItemOut::Price(p) => self.buf.push(p),
                        _ => unreachable!("price batches answer price items"),
                    }
                }
            }
            _ => {
                let (_, edge) = self.list[start];
                self.buf
                    .push(eval.price_segment(edge, &self.horizon, self.to_node));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The router: driver, commits, public API
// ---------------------------------------------------------------------------

/// Driver-private lazy indexes (per-pair candidate lists and their pooled
/// subsets). Only the commit thread touches them, so they stay outside the
/// state lock.
#[derive(Debug, Default)]
struct LazyIndexes {
    segment_index: SegmentIndex,
    /// Per device pair: how much of the pool log is merged in, and the pool
    /// members sorted by that pair's static score — so the reuse scan walks
    /// candidates best-first and stops early instead of pricing the whole
    /// pool.
    pooled_by_pair: HashMap<(usize, usize), (usize, ScoredEdges)>,
}

/// Outcome of one candidate stream (pooled or fresh) for one store window.
enum CandidateOutcome {
    Won {
        edge: GridEdgeId,
        exit: NodeId,
        path: RoutedPath,
        /// The lazy merge's consumed count at the winner's yield — exactly
        /// what the sequential scan would have priced.
        consumed: usize,
    },
    Exhausted {
        consumed: usize,
    },
}

/// Reserves every switch node and edge of a path for the window and records
/// the edges as used.
///
/// Device nodes are *not* reserved: several samples may arrive at or leave
/// the same device in overlapping windows (for example the two inputs of a
/// mixing operation), entering through different channels. Channel-level
/// conflicts are still excluded because the edges and switch nodes of
/// concurrent paths may not overlap.
fn commit_path(
    st: &mut RouteState,
    ctx: &RouteCtx<'_>,
    path: &RoutedPath,
    window: Interval,
    deadline: Seconds,
    stats: &mut RouterStats,
) {
    for &node in &path.nodes {
        if ctx.oracle.device_of_node[node.index()].is_some() {
            continue;
        }
        st.reservations.reserve_node(node, window);
    }
    for &edge in &path.edges {
        st.reservations.reserve_edge(edge, window);
        st.used_edges.insert(edge);
    }
    stats.tasks_routed += 1;
    if window.end > deadline {
        stats.postponed_tasks += 1;
    }
}

/// The per-task routing driver. One instance serves one `route`/`route_all`
/// call; it owns mutable borrows of the driver-side scratch and stats and —
/// when a scoring pool is active — a handle to the job board.
struct Driver<'d, 'a> {
    ctx: &'d RouteCtx<'a>,
    state: &'d RwLock<RouteState>,
    lazy: &'d mut LazyIndexes,
    scratch: &'d mut DijkstraScratch,
    wscratch: &'d mut WindowScratch,
    stats: &'d mut RouterStats,
    board: Option<&'d Board<'d, 'a>>,
}

impl Driver<'_, '_> {
    fn width(&self) -> usize {
        self.board.map_or(1, |b| b.threads)
    }

    /// Routes one task, with the per-task postponement escalation: the
    /// first attempt only considers windows inside the task's slack;
    /// overrun windows are tried when — and only when — the task cannot be
    /// routed on time.
    fn route_task(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        match self.attempt(task, false) {
            Ok(routed) => Ok(routed),
            Err(_) if self.ctx.options.max_deadline_overrun > 0 => self.attempt(task, true),
            Err(e) => Err(e),
        }
    }

    fn attempt(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        match task.kind {
            TransportKind::Direct => self.drive_direct(task, allow_overrun),
            TransportKind::Store => self.drive_store(task, allow_overrun),
            TransportKind::Fetch => self.drive_fetch(task, allow_overrun),
        }
    }

    /// Builds the candidate-window list into the reusable output buffer
    /// (taken out of the scratch; the caller puts it back after the drive).
    fn collect_windows(&mut self, task: &TransportTask, allow_overrun: bool) -> Vec<Interval> {
        let _span = telemetry::span("router", "route.window_select");
        let mut out = std::mem::take(&mut self.wscratch.out);
        {
            let st = read_state(self.state);
            let eval = Eval {
                ctx: self.ctx,
                state: &st,
            };
            eval.candidate_windows(task, allow_overrun, self.wscratch, &mut out);
        }
        out
    }

    // -----------------------------------------------------------------
    // Direct transports
    // -----------------------------------------------------------------

    fn drive_direct(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let from = self.ctx.placement.node_of(task.from_device);
        let to = self.ctx.placement.node_of(task.to_device);
        let windows = self.collect_windows(task, allow_overrun);
        let result = self.drive_direct_windows(task, from, to, &windows);
        self.wscratch.out = windows;
        result
    }

    fn drive_direct_windows(
        &mut self,
        task: &TransportTask,
        from: NodeId,
        to: NodeId,
        windows: &[Interval],
    ) -> Result<RoutedTransport, ArchError> {
        let mut idx = 0;
        while idx < windows.len() {
            // The preferred window almost always fits, so it is scored
            // inline exactly like the sequential router; only the congested
            // tail fans out over the pool.
            if idx == 0 || self.width() == 1 {
                let (c, found) = self.score_one_direct(from, to, windows[idx]);
                self.stats.windows_tried += 1;
                self.stats.absorb(c);
                if let Some(path) = found {
                    return Ok(self.commit_direct(task, path));
                }
                idx += 1;
            } else {
                let hi = (idx + self.width()).min(windows.len());
                let outs = self.score_direct_chunk(from, to, &windows[idx..hi]);
                for (c, found) in outs {
                    self.stats.windows_tried += 1;
                    self.stats.absorb(c);
                    if let Some(path) = found {
                        return Ok(self.commit_direct(task, path));
                    }
                }
                idx = hi;
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    fn score_one_direct(
        &mut self,
        from: NodeId,
        to: NodeId,
        window: Interval,
    ) -> (EvalCounters, Option<RoutedPath>) {
        let _span = telemetry::span("router", "route.path_search");
        let st = read_state(self.state);
        let eval = Eval {
            ctx: self.ctx,
            state: &st,
        };
        let mut c = EvalCounters::default();
        let found = eval.shortest_path(from, to, window, None, self.scratch, &mut c);
        (c, found)
    }

    fn score_direct_chunk(
        &mut self,
        from: NodeId,
        to: NodeId,
        chunk: &[Interval],
    ) -> Vec<(EvalCounters, Option<RoutedPath>)> {
        let _span = telemetry::span("router", "route.path_search");
        let st = read_state(self.state);
        let eval = Eval {
            ctx: self.ctx,
            state: &st,
        };
        match self.board {
            Some(board) if chunk.len() > 1 => board
                .scatter(
                    JobKind::Direct {
                        from,
                        to,
                        windows: chunk.to_vec(),
                    },
                    &eval,
                    self.scratch,
                )
                .into_iter()
                .map(|out| match out {
                    ItemOut::Window(c, p) => (c, p),
                    _ => unreachable!("window batches answer window items"),
                })
                .collect(),
            _ => chunk
                .iter()
                .map(|&window| {
                    let mut c = EvalCounters::default();
                    let found = eval.shortest_path(from, to, window, None, self.scratch, &mut c);
                    (c, found)
                })
                .collect(),
        }
    }

    fn commit_direct(&mut self, task: &TransportTask, path: RoutedPath) -> RoutedTransport {
        let _span = telemetry::span("router", "route.commit");
        let window = path.window;
        {
            let mut st = write_state(self.state);
            commit_path(&mut st, self.ctx, &path, window, task.deadline, self.stats);
        }
        let mut routed_task = task.clone();
        routed_task.window_start = window.start;
        routed_task.window_end = window.end;
        RoutedTransport {
            task: routed_task,
            path,
            cache_edge: None,
        }
    }

    // -----------------------------------------------------------------
    // Store transports
    // -----------------------------------------------------------------

    /// Routes a store task: producer device → a free channel segment that
    /// will cache the sample.
    ///
    /// Segment selection is **pool-first**: segments that have cached a
    /// sample before (the cache pool) are tried ahead of fresh segments, in
    /// ascending score order. This is first-fit interval assignment — the
    /// number of distinct cache segments stays close to the schedule's peak
    /// concurrent storage instead of growing with the store count. Fresh
    /// segments (via the distance-sorted
    /// [`SegmentIndex`](crate::segment_index)) only join the pool when no
    /// pooled segment is free for the sample's whole storage horizon.
    fn drive_store(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let stored_until = task
            .storage_interval
            .map(|(_, until)| until)
            .unwrap_or(task.deadline);
        let pair_index = self.lazy.segment_index.pair_index(
            self.ctx.grid,
            self.ctx.placement,
            task.from_device,
            task.to_device,
            self.ctx.options.allow_device_adjacent_storage,
        );
        let windows = self.collect_windows(task, allow_overrun);
        let mut region = std::mem::take(&mut self.wscratch.region);
        let result =
            self.drive_store_windows(task, &windows, stored_until, &pair_index, &mut region);
        self.wscratch.region = region;
        self.wscratch.out = windows;
        result
    }

    fn drive_store_windows(
        &mut self,
        task: &TransportTask,
        windows: &[Interval],
        stored_until: Seconds,
        pair_index: &PairIndex,
        region: &mut RegionScratch,
    ) -> Result<RoutedTransport, ArchError> {
        let min_price = self
            .ctx
            .options
            .used_edge_cost
            .min(self.ctx.options.new_edge_cost);
        let to_node = self.ctx.placement.node_of(task.to_device);
        let from_node = self.ctx.placement.node_of(task.from_device);
        for &store_window in windows {
            if store_window.end > stored_until {
                // The sample must be resting in its segment before the fetch
                // departs; postponing the store past that point is useless.
                continue;
            }
            {
                let st = read_state(self.state);
                let eval = Eval {
                    ctx: self.ctx,
                    state: &st,
                };
                if !eval.producer_can_leave(from_node, store_window) {
                    continue;
                }
            }
            self.stats.windows_tried += 1;
            let horizon = StoreHorizon::new(task, store_window, stored_until);

            // Oracle early-reject for this window's claim stream: map the
            // transit region the producer can actually reach (bounded
            // flood) once, shared by both candidate phases — no commit
            // happens between them, so the snapshot is the same.
            region.complete = false;
            if self.ctx.assists {
                let st = read_state(self.state);
                let eval = Eval {
                    ctx: self.ctx,
                    state: &st,
                };
                eval.flood_claim_region(from_node, store_window, region, self.scratch);
            }

            // Phase 1 (scale grids only): reuse a pooled segment, cheapest
            // total score first.
            let pooled_list: ScoredEdges = if self.ctx.scale_mode {
                self.pooled_list(task, pair_index)
            } else {
                Vec::new().into()
            };
            match self.drive_candidates(
                from_node,
                to_node,
                &horizon,
                pooled_list,
                min_price,
                false,
                region,
            ) {
                CandidateOutcome::Won {
                    edge,
                    exit,
                    path,
                    consumed,
                } => {
                    self.stats.segments_priced += consumed;
                    return Ok(self.commit_store(task, edge, exit, path, &horizon));
                }
                CandidateOutcome::Exhausted { consumed } => {
                    self.stats.segments_priced += consumed;
                }
            }

            // Phase 2: bring a fresh segment into the pool.
            match self.drive_candidates(
                from_node,
                to_node,
                &horizon,
                Rc::clone(&pair_index.sorted),
                min_price,
                true,
                region,
            ) {
                CandidateOutcome::Won {
                    edge,
                    exit,
                    path,
                    consumed,
                } => {
                    self.stats.segments_priced += consumed;
                    return Ok(self.commit_store(task, edge, exit, path, &horizon));
                }
                CandidateOutcome::Exhausted { consumed } => {
                    self.stats.segments_priced += consumed;
                }
            }
        }
        Err(ArchError::NoStorageSegment {
            task: task.describe(),
        })
    }

    /// Walks one candidate stream in exact `(static + dynamic, edge id)`
    /// order — pricing speculatively ahead of the merge, probing claims in
    /// pool-width batches — and returns the first claimable segment by
    /// candidate order, with the merge's consumed count at that yield.
    #[allow(clippy::too_many_arguments)]
    fn drive_candidates(
        &mut self,
        from: NodeId,
        to_node: NodeId,
        horizon: &StoreHorizon,
        list: ScoredEdges,
        min_price: u64,
        skip_pool: bool,
        region: &RegionScratch,
    ) -> CandidateOutcome {
        if list.is_empty() {
            return CandidateOutcome::Exhausted { consumed: 0 };
        }
        // Store-side path search: segment pricing plus cache-entry claims.
        let _span = telemetry::span("router", "route.path_search");
        // One claim probe per pool thread: the waste past the winner is at
        // most one batch of speculative probes, whose counters are
        // discarded anyway.
        let claim_width = self.width();
        let skip_pool = skip_pool && self.ctx.scale_mode;
        let st = read_state(self.state);
        let eval = Eval {
            ctx: self.ctx,
            state: &st,
        };
        let mut merge = OrderedCandidates::new(Rc::clone(&list), min_price);
        let mut pricer = Pricer::new(list, *horizon, to_node, &mut self.wscratch.prices);
        let mut batch: Vec<(GridEdgeId, usize)> = Vec::with_capacity(claim_width);
        loop {
            batch.clear();
            while batch.len() < claim_width {
                let next = merge.next_available(|edge| {
                    let price = pricer.next(&eval, self.board, self.scratch);
                    if skip_pool && st.cache_pool.contains(&edge) {
                        None // already tried in phase 1
                    } else {
                        price
                    }
                });
                let Some(edge) = next else { break };
                // Oracle pruning: a candidate whose endpoints are both
                // outside the producer's (exact) reachable region is a
                // guaranteed claim miss — the entry probe is a shortest
                // path from the producer, and the flood used the same
                // admission rules. The sequential router would have priced
                // it (the merge already did) and failed its probe; only
                // the probe is skipped, so winner and consumed counts are
                // untouched.
                if region.complete {
                    let (x, y) = self.ctx.grid.endpoints(edge);
                    if !region.contains(x) && !region.contains(y) {
                        self.stats.oracle_pruned_candidates += 1;
                        continue;
                    }
                }
                batch.push((edge, merge.priced()));
            }
            if batch.is_empty() {
                return CandidateOutcome::Exhausted {
                    consumed: merge.priced(),
                };
            }
            let outs: Vec<(EvalCounters, Option<(RoutedPath, NodeId)>)> = match self.board {
                Some(board) if batch.len() > 1 => {
                    let edges: Vec<GridEdgeId> = batch.iter().map(|&(e, _)| e).collect();
                    board
                        .scatter(
                            JobKind::Claim {
                                from,
                                horizon: *horizon,
                                edges,
                            },
                            &eval,
                            self.scratch,
                        )
                        .into_iter()
                        .map(|out| match out {
                            ItemOut::Claim(c, f) => (c, f),
                            _ => unreachable!("claim batches answer claim items"),
                        })
                        .collect()
                }
                _ => batch
                    .iter()
                    .map(|&(edge, _)| {
                        let mut c = EvalCounters::default();
                        let found =
                            eval.find_cache_entry(from, edge, horizon, self.scratch, &mut c);
                        (c, found)
                    })
                    .collect(),
            };
            for (k, (c, found)) in outs.into_iter().enumerate() {
                self.stats.absorb(c);
                if let Some((path, exit)) = found {
                    return CandidateOutcome::Won {
                        edge: batch[k].0,
                        exit,
                        path,
                        consumed: batch[k].1,
                    };
                }
            }
        }
    }

    /// The pool members usable for this task's device pair, sorted by the
    /// pair's static score; newly pooled segments are merged in on demand.
    fn pooled_list(&mut self, task: &TransportTask, pair: &PairIndex) -> ScoredEdges {
        let key = (task.from_device.index(), task.to_device.index());
        let entry = self
            .lazy
            .pooled_by_pair
            .entry(key)
            .or_insert_with(|| (0, Vec::new().into()));
        let st = read_state(self.state);
        if entry.0 < st.pool_log.len() {
            let mut merged: Vec<(u64, GridEdgeId)> = entry.1.to_vec();
            for &edge in &st.pool_log[entry.0..] {
                if let Some(score) = pair.score_of[edge.index()] {
                    let item = (score, edge);
                    let pos = merged.partition_point(|&x| x < item);
                    merged.insert(pos, item);
                }
            }
            entry.0 = st.pool_log.len();
            entry.1 = merged.into();
        }
        Rc::clone(&entry.1)
    }

    fn commit_store(
        &mut self,
        task: &TransportTask,
        edge: GridEdgeId,
        exit: NodeId,
        path: RoutedPath,
        horizon: &StoreHorizon,
    ) -> RoutedTransport {
        let _span = telemetry::span("router", "route.commit");
        let store_window = horizon.store_window;
        {
            let mut st = write_state(self.state);
            commit_path(
                &mut st,
                self.ctx,
                &path,
                store_window,
                task.deadline,
                self.stats,
            );
            // Block the segment from the moment the sample arrives until the
            // end of its planned fetch window — plus the allowed
            // postponement, so a delayed fetch still owns the segment while
            // the sample rests past the plan — so no later task can claim
            // the segment for the very instant the sample has to leave it.
            // The segment's end nodes stay passable for other paths (the
            // paper's exception).
            let reserved_until = if self.ctx.scale_mode {
                horizon.planned_fetch.end + self.ctx.options.max_deadline_overrun
            } else {
                horizon.planned_fetch.end
            };
            st.reservations
                .reserve_edge(edge, Interval::new(horizon.storage.start, reserved_until));
            st.cache_of_sample.set(task.sample, (edge, exit));
            if st.cache_pool.insert(edge) {
                st.pool_log.push(edge);
            }
            st.active_caches[edge.index()] = Some(CacheInfo {
                blocked: Interval::new(horizon.blocked.start, reserved_until),
                reserved: Interval::new(horizon.storage.start, reserved_until),
                fetch_window: horizon.planned_fetch,
                reserved_until,
            });
        }
        let mut routed_task = task.clone();
        routed_task.window_start = store_window.start;
        routed_task.window_end = store_window.end;
        routed_task.storage_interval = Some((horizon.storage.start, horizon.storage.end));
        RoutedTransport {
            task: routed_task,
            path,
            cache_edge: Some(edge),
        }
    }

    // -----------------------------------------------------------------
    // Fetch transports
    // -----------------------------------------------------------------

    /// Routes a fetch task: the sample's cache segment → consumer device.
    fn drive_fetch(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let to = self.ctx.placement.node_of(task.to_device);
        let (cache_edge, exit, reserved_until) = {
            let st = read_state(self.state);
            let Some((cache_edge, exit)) = st.cache_of_sample.get(task.sample) else {
                return Err(ArchError::Inconsistent {
                    reason: format!("fetch of sample {} before it was stored", task.sample),
                });
            };
            let reserved_until = st.active_caches[cache_edge.index()]
                .map_or(task.window_end, |info| info.reserved_until);
            (cache_edge, exit, reserved_until)
        };
        let (x, y) = self.ctx.grid.endpoints(cache_edge);
        let other = if exit == x { y } else { x };

        let windows = self.collect_windows(task, allow_overrun);
        // The cache segment is already reserved for the sample through the
        // end of its planned fetch window plus the postponement guard. When
        // the fetch is postponed beyond that reservation, the segment must
        // additionally stay free (the sample keeps resting in it) until the
        // actual departure completes. Windows failing that are skipped
        // without being counted — the viability test reads the same frozen
        // snapshot the scoring does, so prefiltering is exactly the
        // sequential order.
        let mut viable = std::mem::take(&mut self.wscratch.viable);
        viable.clear();
        {
            let st = read_state(self.state);
            for &window in &windows {
                let beyond_plan = Interval::new(reserved_until.min(window.end), window.end);
                if st.reservations.edge_free(cache_edge, beyond_plan) {
                    viable.push(window);
                }
            }
        }
        let result =
            self.drive_fetch_windows(task, &viable, to, cache_edge, exit, other, reserved_until);
        self.wscratch.viable = viable;
        self.wscratch.out = windows;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_fetch_windows(
        &mut self,
        task: &TransportTask,
        windows: &[Interval],
        to: NodeId,
        cache_edge: GridEdgeId,
        exit: NodeId,
        other: NodeId,
        reserved_until: Seconds,
    ) -> Result<RoutedTransport, ArchError> {
        let mut idx = 0;
        while idx < windows.len() {
            if idx == 0 || self.width() == 1 {
                let (c, found) = self.score_one_fetch(to, cache_edge, exit, other, windows[idx]);
                self.stats.windows_tried += 1;
                self.stats.absorb(c);
                if let Some(path) = found {
                    return Ok(self.commit_fetch(task, path, cache_edge, reserved_until));
                }
                idx += 1;
            } else {
                let hi = (idx + self.width()).min(windows.len());
                let outs = self.score_fetch_chunk(to, cache_edge, exit, other, &windows[idx..hi]);
                for (c, found) in outs {
                    self.stats.windows_tried += 1;
                    self.stats.absorb(c);
                    if let Some(path) = found {
                        return Ok(self.commit_fetch(task, path, cache_edge, reserved_until));
                    }
                }
                idx = hi;
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    fn score_one_fetch(
        &mut self,
        to: NodeId,
        cache_edge: GridEdgeId,
        exit: NodeId,
        other: NodeId,
        window: Interval,
    ) -> (EvalCounters, Option<RoutedPath>) {
        let _span = telemetry::span("router", "route.path_search");
        let st = read_state(self.state);
        let eval = Eval {
            ctx: self.ctx,
            state: &st,
        };
        let mut c = EvalCounters::default();
        let found = eval.find_fetch_path(to, cache_edge, exit, other, window, self.scratch, &mut c);
        (c, found)
    }

    fn score_fetch_chunk(
        &mut self,
        to: NodeId,
        cache_edge: GridEdgeId,
        exit: NodeId,
        other: NodeId,
        chunk: &[Interval],
    ) -> Vec<(EvalCounters, Option<RoutedPath>)> {
        let _span = telemetry::span("router", "route.path_search");
        let st = read_state(self.state);
        let eval = Eval {
            ctx: self.ctx,
            state: &st,
        };
        match self.board {
            Some(board) if chunk.len() > 1 => board
                .scatter(
                    JobKind::Fetch {
                        to,
                        cache_edge,
                        first: exit,
                        second: other,
                        windows: chunk.to_vec(),
                    },
                    &eval,
                    self.scratch,
                )
                .into_iter()
                .map(|out| match out {
                    ItemOut::Window(c, p) => (c, p),
                    _ => unreachable!("window batches answer window items"),
                })
                .collect(),
            _ => chunk
                .iter()
                .map(|&window| {
                    let mut c = EvalCounters::default();
                    let found = eval.find_fetch_path(
                        to,
                        cache_edge,
                        exit,
                        other,
                        window,
                        self.scratch,
                        &mut c,
                    );
                    (c, found)
                })
                .collect(),
        }
    }

    fn commit_fetch(
        &mut self,
        task: &TransportTask,
        path: RoutedPath,
        cache_edge: GridEdgeId,
        reserved_until: Seconds,
    ) -> RoutedTransport {
        let _span = telemetry::span("router", "route.commit");
        let window = path.window;
        {
            let mut st = write_state(self.state);
            commit_path(&mut st, self.ctx, &path, window, task.deadline, self.stats);
            // Keep the segment blocked while the sample rests in it past
            // the originally planned fetch time.
            st.reservations.reserve_edge(
                cache_edge,
                Interval::new(reserved_until.min(window.end), window.end),
            );
            st.cache_of_sample.remove(task.sample);
            st.active_caches[cache_edge.index()] = None;
        }
        let mut routed_task = task.clone();
        routed_task.window_start = window.start;
        routed_task.window_end = window.end;
        RoutedTransport {
            task: routed_task,
            path,
            cache_edge: Some(cache_edge),
        }
    }
}

/// The incremental routing engine.
///
/// Tasks must be routed in the order returned by
/// [`extract_transport_tasks`](crate::extract_transport_tasks) (ascending
/// window start); each successful route immediately reserves its resources.
/// [`Router::route_all`] additionally spins up a scoped scoring pool when
/// [`with_threads`](Router::with_threads) asked for more than one thread —
/// the result is bit-identical to the sequential loop at any thread count.
#[derive(Debug)]
pub struct Router<'a> {
    ctx: RouteCtx<'a>,
    state: RwLock<RouteState>,
    lazy: LazyIndexes,
    scratch: DijkstraScratch,
    wscratch: WindowScratch,
    stats: RouterStats,
    threads: usize,
}

impl<'a> Router<'a> {
    /// Creates a router over the given grid and placement, building its own
    /// [`RoutingOracle`]. Prefer [`with_oracle`](Router::with_oracle) when a
    /// prebuilt (cached) oracle for the same architecture exists.
    #[must_use]
    pub fn new(
        grid: &'a ConnectionGrid,
        placement: &'a Placement,
        options: RoutingOptions,
    ) -> Self {
        let oracle = Arc::new(RoutingOracle::build(grid, placement));
        let mut router = Router::with_oracle(grid, placement, options, oracle);
        router.stats.oracle_builds = 1;
        router
    }

    /// Creates a router adopting a prebuilt per-architecture oracle —
    /// typically shared through an [`OracleCache`](crate::OracleCache), so
    /// the strict and relaxed routing passes, warm restarts and concurrent
    /// jobs on the same architecture all amortize one build.
    ///
    /// # Panics
    ///
    /// Panics when the oracle was built for a different grid shape or
    /// device count.
    #[must_use]
    pub fn with_oracle(
        grid: &'a ConnectionGrid,
        placement: &'a Placement,
        options: RoutingOptions,
        oracle: Arc<RoutingOracle>,
    ) -> Self {
        assert!(
            oracle.matches(grid, placement),
            "routing oracle was built for a different architecture"
        );
        let scale_mode = grid.rows().max(grid.cols()) >= crate::segment_index::SCALE_GRID_SIDE;
        Router {
            ctx: RouteCtx {
                grid,
                placement,
                options,
                oracle,
                assists: scale_mode,
                scale_mode,
            },
            state: RwLock::new(RouteState::new(grid)),
            lazy: LazyIndexes::default(),
            scratch: DijkstraScratch::for_grid(grid),
            wscratch: WindowScratch::default(),
            stats: RouterStats::default(),
            threads: 1,
        }
    }

    /// Sets the scoring-thread count used by [`route_all`](Router::route_all)
    /// (clamped to at least 1; the chip produced never depends on it).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Arms or disarms the oracle's reject-only search assists (destination
    /// precheck, h = ∞ tightening, claim-region pruning). The routed chips
    /// are identical either way — the assists only skip guaranteed-miss
    /// work — and this switch exists so tests can prove exactly that.
    /// Assists never engage on paper-scale grids regardless.
    #[must_use]
    pub fn with_oracle_assists(mut self, enabled: bool) -> Self {
        self.ctx.assists = enabled && self.ctx.scale_mode;
        self
    }

    /// Records that this router's oracle was built on its behalf (by a
    /// cache miss) rather than adopted prebuilt.
    pub(crate) fn note_oracle_build(&mut self) {
        self.stats.oracle_builds += 1;
    }

    /// A pristine router over the same grid, placement, options, oracle and
    /// thread count — used to restart cold after a failed warm-start
    /// replay, since a partial replay has already mutated this router's
    /// reservations. The oracle `Arc` is carried over, not rebuilt.
    #[must_use]
    pub fn fresh(&self) -> Router<'a> {
        Router::with_oracle(
            self.ctx.grid,
            self.ctx.placement,
            self.ctx.options.clone(),
            Arc::clone(&self.ctx.oracle),
        )
        .with_threads(self.threads)
        .with_oracle_assists(self.ctx.assists)
    }

    fn state_mut(&mut self) -> &mut RouteState {
        let state = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.generation += 1;
        state
    }

    /// Edges used by at least one routed path so far, in ascending id order.
    #[must_use]
    pub fn used_edges(&self) -> Vec<GridEdgeId> {
        read_state(&self.state).used_edges.to_vec()
    }

    /// Number of distinct edges used by the routed paths so far.
    #[must_use]
    pub fn used_edge_count(&self) -> usize {
        read_state(&self.state).used_edges.len()
    }

    /// The reservation table built up so far.
    #[must_use]
    pub fn reservations(&mut self) -> &ReservationTable {
        &self.state_mut().reservations
    }

    /// The per-stage work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Routes one transportation task through the staged pipeline, reserving
    /// its resources.
    ///
    /// The returned [`RoutedTransport`] carries the task with its *actual*
    /// window (which may have been shifted inside the task's slack) and, for
    /// store tasks, the chosen cache segment and updated storage interval.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::RoutingFailed`] when no conflict-free path exists
    /// inside the task's slack and [`ArchError::NoStorageSegment`] when no
    /// channel segment can cache the sample for its storage interval.
    pub fn route(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        let mut driver = Driver {
            ctx: &self.ctx,
            state: &self.state,
            lazy: &mut self.lazy,
            scratch: &mut self.scratch,
            wscratch: &mut self.wscratch,
            stats: &mut self.stats,
            board: None,
        };
        driver.route_task(task)
    }

    /// Re-commits a transport that an earlier run of this deterministic
    /// router produced — same grid, placement and options — without any
    /// window selection or path search.
    ///
    /// The committed router state after task *i* is a pure function of
    /// tasks `0..=i` (given grid, placement and options), so replaying the
    /// prior [`RoutedTransport`]s of an unchanged task prefix reproduces
    /// the cold router state **byte-identically** while skipping the search
    /// that dominates synthesis time. This is the warm-start fast path of
    /// the edit loop: replay the common prefix, route only the edited
    /// suffix cold. `windows_tried`/`path_searches`/`nodes_expanded`/
    /// `segments_priced` are not advanced (no search ran); `tasks_routed`
    /// and `postponed_tasks` are, exactly as the cold commit would.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Inconsistent`] when `routed` does not belong to
    /// `task` (mismatched endpoints, kind or sample) or its payload is
    /// malformed (a store without a cache edge, a fetch of a sample that is
    /// not cached). Callers fall back to cold routing on error.
    pub fn replay(
        &mut self,
        task: &TransportTask,
        routed: &RoutedTransport,
    ) -> Result<(), ArchError> {
        let _span = telemetry::span("router", "route.replay_commit");
        if routed.task.kind != task.kind
            || routed.task.sample != task.sample
            || routed.task.from_device != task.from_device
            || routed.task.to_device != task.to_device
        {
            return Err(ArchError::Inconsistent {
                reason: format!(
                    "replayed transport does not match task (sample {}, kind {:?})",
                    task.sample, task.kind
                ),
            });
        }
        let ctx = &self.ctx;
        let stats = &mut self.stats;
        let st = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let path = &routed.path;
        match task.kind {
            TransportKind::Direct => {
                commit_path(st, ctx, path, path.window, task.deadline, stats);
            }
            TransportKind::Store => {
                let edge = routed.cache_edge.ok_or_else(|| ArchError::Inconsistent {
                    reason: format!("replayed store of sample {} has no cache edge", task.sample),
                })?;
                // The store path ends in the segment's exit node (pushed by
                // the cache-entry search after the path into the segment).
                let &exit = path.nodes.last().ok_or_else(|| ArchError::Inconsistent {
                    reason: format!("replayed store of sample {} has an empty path", task.sample),
                })?;
                // Rebuild the storage horizon from the *original* task — the
                // routed copy's window and storage fields were overwritten at
                // commit time, but the horizon derives from the task's
                // scheduled fetch-window length.
                let stored_until = task
                    .storage_interval
                    .map(|(_, until)| until)
                    .unwrap_or(task.deadline);
                let horizon = StoreHorizon::new(task, path.window, stored_until);
                commit_path(st, ctx, path, horizon.store_window, task.deadline, stats);
                let reserved_until = if ctx.scale_mode {
                    horizon.planned_fetch.end + ctx.options.max_deadline_overrun
                } else {
                    horizon.planned_fetch.end
                };
                st.reservations
                    .reserve_edge(edge, Interval::new(horizon.storage.start, reserved_until));
                st.cache_of_sample.set(task.sample, (edge, exit));
                if st.cache_pool.insert(edge) {
                    st.pool_log.push(edge);
                }
                st.active_caches[edge.index()] = Some(CacheInfo {
                    blocked: Interval::new(horizon.blocked.start, reserved_until),
                    reserved: Interval::new(horizon.storage.start, reserved_until),
                    fetch_window: horizon.planned_fetch,
                    reserved_until,
                });
            }
            TransportKind::Fetch => {
                let edge = routed.cache_edge.ok_or_else(|| ArchError::Inconsistent {
                    reason: format!("replayed fetch of sample {} has no cache edge", task.sample),
                })?;
                let Some((cached_edge, _exit)) = st.cache_of_sample.get(task.sample) else {
                    return Err(ArchError::Inconsistent {
                        reason: format!(
                            "replayed fetch of sample {} before it was stored",
                            task.sample
                        ),
                    });
                };
                if cached_edge != edge {
                    return Err(ArchError::Inconsistent {
                        reason: format!(
                            "replayed fetch of sample {} names segment {edge} but it rests in {cached_edge}",
                            task.sample
                        ),
                    });
                }
                let reserved_until = st.active_caches[edge.index()]
                    .map_or(task.window_end, |info| info.reserved_until);
                let window = path.window;
                commit_path(st, ctx, path, window, task.deadline, stats);
                st.reservations.reserve_edge(
                    edge,
                    Interval::new(reserved_until.min(window.end), window.end),
                );
                st.cache_of_sample.remove(task.sample);
                st.active_caches[edge.index()] = None;
            }
        }
        Ok(())
    }

    /// Routes every task in order, fanning the pure scoring work (candidate
    /// windows, cache-segment pricing and claim probes) over a scoped
    /// thread pool when more than one thread is configured.
    ///
    /// The commit order is the task order, every winner is reduced by
    /// candidate index, and scoring reads frozen state snapshots — so the
    /// routed result and the [`RouterStats`] are byte-identical to the
    /// sequential `for task { route(task) }` loop at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first routing failure, exactly like the sequential
    /// loop would.
    pub fn route_all(
        &mut self,
        tasks: &[TransportTask],
    ) -> Result<Vec<RoutedTransport>, ArchError> {
        let result = self.route_all_inner(tasks);
        // Fold the per-stage work counters into the trace as a point event;
        // telemetry only observes the (deterministic) stats, never feeds
        // anything back.
        telemetry::instant(
            "router",
            "router.stats",
            &[
                ("tasks_routed", self.stats.tasks_routed as u64),
                ("windows_tried", self.stats.windows_tried as u64),
                ("path_searches", self.stats.path_searches as u64),
                ("nodes_expanded", self.stats.nodes_expanded as u64),
                ("segments_priced", self.stats.segments_priced as u64),
                ("postponed_tasks", self.stats.postponed_tasks as u64),
                ("oracle_builds", self.stats.oracle_builds as u64),
                (
                    "oracle_rejected_searches",
                    self.stats.oracle_rejected_searches as u64,
                ),
                ("oracle_tightenings", self.stats.oracle_tightenings as u64),
                (
                    "oracle_pruned_candidates",
                    self.stats.oracle_pruned_candidates as u64,
                ),
            ],
        );
        result
    }

    fn route_all_inner(
        &mut self,
        tasks: &[TransportTask],
    ) -> Result<Vec<RoutedTransport>, ArchError> {
        let threads = self.threads;
        if threads <= 1 || tasks.len() <= 1 {
            return tasks.iter().map(|t| self.route(t)).collect();
        }
        let ctx = &self.ctx;
        let state = &self.state;
        let lazy = &mut self.lazy;
        let scratch = &mut self.scratch;
        let wscratch = &mut self.wscratch;
        let stats = &mut self.stats;
        let board = Board::new(ctx, state, threads);
        std::thread::scope(|scope| {
            for worker in 0..threads - 1 {
                let board = &board;
                std::thread::Builder::new()
                    .name(format!("biochip-score-{worker}"))
                    .spawn_scoped(scope, move || board.worker_loop())
                    .expect("scoring threads can always be spawned");
            }
            let _guard = ShutdownGuard(&board);
            let mut driver = Driver {
                ctx,
                state,
                lazy,
                scratch,
                wscratch,
                stats,
                board: Some(&board),
            };
            tasks.iter().map(|t| driver.route_task(t)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_devices, PlacementOptions};
    use biochip_assay::OpId;
    use biochip_schedule::DeviceId;

    fn make_placement(grid: &ConnectionGrid, devices: usize) -> Placement {
        place_devices(grid, devices, &[], &PlacementOptions::default()).unwrap()
    }

    /// Test-only window-stage probe (the stage is driver-internal).
    fn windows_of(
        router: &mut Router<'_>,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut ws = WindowScratch::default();
        let state = router
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let eval = Eval {
            ctx: &router.ctx,
            state,
        };
        eval.candidate_windows(task, allow_overrun, &mut ws, &mut out);
        out
    }

    fn direct_task(from: usize, to: usize, start: u64, end: u64) -> TransportTask {
        TransportTask {
            sample: 99,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Direct,
            window_start: start,
            window_end: end,
            storage_interval: None,
            earliest_start: start,
            deadline: end,
        }
    }

    fn store_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Store,
            window_start: 10,
            window_end: 15,
            storage_interval: Some((15, 55)),
            earliest_start: 10,
            deadline: 30,
        }
    }

    fn fetch_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Fetch,
            window_start: 55,
            window_end: 60,
            storage_interval: None,
            earliest_start: 55,
            deadline: 60,
        }
    }

    #[test]
    fn direct_path_connects_the_two_devices() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let routed = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        assert!(routed.cache_edge.is_none());
        assert_eq!(
            routed.path.nodes.first().copied(),
            Some(placement.node_of(DeviceId(0)))
        );
        assert_eq!(
            routed.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
        assert_eq!(routed.path.edges.len(), routed.path.nodes.len() - 1);
        assert!(!router.used_edges().is_empty());
    }

    #[test]
    fn overlapping_paths_do_not_share_resources() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 3);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(2, 1, 0, 5)).unwrap();
        // Both may end at the same destination device, but when their actual
        // windows overlap they share no edge and no switch node.
        if r1.path.window.overlaps(&r2.path.window) {
            for e in &r1.path.edges {
                assert!(
                    !r2.path.edges.contains(e),
                    "edge {e} shared by concurrent paths"
                );
            }
            let interior1: Vec<NodeId> = r1.path.nodes[1..r1.path.nodes.len() - 1].to_vec();
            for n in &r2.path.nodes[1..r2.path.nodes.len() - 1] {
                assert!(
                    !interior1.contains(n),
                    "switch {n} shared by concurrent paths"
                );
            }
        }
    }

    #[test]
    fn sequential_paths_may_reuse_edges() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(0, 1, 10, 15)).unwrap();
        // With used-edge pricing the second path reuses the first one's edges.
        assert_eq!(r1.path.edges, r2.path.edges);
        assert_eq!(router.used_edges().len(), r1.path.edges.len());
    }

    #[test]
    fn congested_window_is_staggered_inside_the_slack() {
        // Two samples leave device 0 towards device 1 in the same preferred
        // window; the second transport has slack until t = 20 and is shifted
        // instead of failing.
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let first = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let mut second = direct_task(0, 1, 0, 5);
        second.deadline = 20;
        let second = router.route(&second).unwrap();
        if second.path.edges == first.path.edges {
            assert!(
                !second.path.window.overlaps(&first.path.window),
                "same segments may only be reused in a later window"
            );
        }
    }

    #[test]
    fn store_then_fetch_uses_the_same_cache_segment() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(3, 0, 1)).unwrap();
        let cache = stored.cache_edge.expect("store chooses a cache segment");
        assert_eq!(stored.path.edges.last().copied(), Some(cache));
        // The segment is blocked during the storage interval.
        let (from, until) = stored.task.storage_interval.unwrap();
        assert!(until > from);
        assert!(!router
            .reservations()
            .edge_free(cache, Interval::new(from + 1, from + 2)));
        let fetched = router.route(&fetch_task(3, 0, 1)).unwrap();
        assert_eq!(fetched.cache_edge, Some(cache));
        assert_eq!(fetched.path.edges.first().copied(), Some(cache));
        assert_eq!(
            fetched.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
    }

    #[test]
    fn fetch_before_store_is_an_error() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&fetch_task(7, 0, 1)).unwrap_err();
        assert!(matches!(err, ArchError::Inconsistent { .. }));
    }

    #[test]
    fn stored_segment_is_not_used_by_other_paths() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(0, 0, 1)).unwrap();
        let cache = stored.cache_edge.unwrap();
        // A direct transport during the storage interval must avoid the
        // cached segment.
        let routed = router.route(&direct_task(0, 1, 20, 25)).unwrap();
        assert!(!routed.path.edges.contains(&cache));
    }

    #[test]
    fn routing_on_a_congested_tiny_grid_fails_gracefully() {
        // 1x2 grid: a single edge between two devices; two concurrent
        // transports with zero slack cannot both be routed.
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let err = router.route(&direct_task(1, 0, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
    }

    #[test]
    fn paths_do_not_cross_foreign_devices() {
        let grid = ConnectionGrid::new(1, 5);
        // Three devices on a line: 0 at one end, 1 at the other, 2 between
        // them. Any path 0 -> 1 would have to cross device 2: impossible.
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(4), NodeId(2)]);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&direct_task(0, 1, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
        // 0 -> 2 (the middle device) is fine: it is the path's endpoint.
        router.route(&direct_task(0, 2, 10, 15)).unwrap();
    }

    #[test]
    fn candidate_windows_start_with_the_preferred_one() {
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let mut task = direct_task(0, 1, 10, 15);
        task.earliest_start = 0;
        task.deadline = 40;
        let windows = windows_of(&mut router, &task, false);
        assert_eq!(windows[0], Interval::new(10, 15));
        assert!(windows.len() > 1);
        for w in &windows {
            assert!(w.end <= 40 + 5);
            assert_eq!(w.len(), 5);
        }
        // No slack: only the preferred window.
        let tight = direct_task(0, 1, 10, 15);
        assert_eq!(
            windows_of(&mut router, &tight, false),
            vec![Interval::new(10, 15)]
        );
    }

    #[test]
    fn candidate_windows_jump_past_known_congestion() {
        // The port edges of both devices are reserved for [0, 23); the
        // calendar-driven stage must propose 23 as a candidate start even
        // though the arithmetic grid (stepping by the window length from 0)
        // never lands on it.
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        for node in [
            placement.node_of(DeviceId(0)),
            placement.node_of(DeviceId(1)),
        ] {
            for &edge in grid.incident_edges(node) {
                router
                    .state_mut()
                    .reservations
                    .reserve_edge(edge, Interval::new(0, 23));
            }
        }
        let mut task = direct_task(0, 1, 0, 5);
        task.deadline = 40;
        let windows = windows_of(&mut router, &task, false);
        assert!(
            windows.contains(&Interval::new(23, 28)),
            "calendar-driven candidate missing from {windows:?}"
        );
        let routed = router.route(&task).unwrap();
        assert!(routed.path.window.start >= 23);
    }

    #[test]
    fn stage_counters_track_the_pipeline() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        assert_eq!(
            router.stats(),
            RouterStats {
                oracle_builds: 1,
                ..RouterStats::default()
            }
        );
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let after_direct = router.stats();
        assert_eq!(after_direct.tasks_routed, 1);
        assert!(after_direct.windows_tried >= 1);
        assert!(after_direct.path_searches >= 1);
        assert!(after_direct.nodes_expanded > 0);
        assert_eq!(after_direct.segments_priced, 0);
        router.route(&store_task(1, 0, 1)).unwrap();
        let after_store = router.stats();
        assert!(after_store.segments_priced > 0);
        assert_eq!(after_store.tasks_routed, 2);
        assert_eq!(after_store.postponed_tasks, 0);
    }

    #[test]
    fn device_adjacent_storage_fallback_on_a_minimal_grid() {
        // 1x3 line with devices at both ends: every segment touches a
        // device, so storage is only possible with the fallback enabled.
        let grid = ConnectionGrid::new(1, 3);
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(2)]);

        let strict = RoutingOptions {
            allow_device_adjacent_storage: false,
            ..RoutingOptions::default()
        };
        let mut router = Router::new(&grid, &placement, strict);
        let err = router.route(&store_task(0, 0, 1)).unwrap_err();
        assert!(matches!(err, ArchError::NoStorageSegment { .. }));

        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(0, 0, 1)).unwrap();
        let cache = stored.cache_edge.expect("fallback segment chosen");
        let (x, y) = grid.endpoints(cache);
        assert!(
            placement.device_at(x).is_some() || placement.device_at(y).is_some(),
            "the minimal grid only offers device-adjacent segments"
        );
        // The sample can still be fetched out of the fallback segment.
        let fetched = router.route(&fetch_task(0, 0, 1)).unwrap();
        assert_eq!(fetched.cache_edge, Some(cache));
    }

    #[test]
    fn postponement_counter_reports_deadline_overruns() {
        // Same single-edge grid as the graceful-failure test, but with
        // postponement allowed the second transport lands after its deadline
        // and is counted.
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let options = RoutingOptions {
            max_deadline_overrun: 20,
            ..RoutingOptions::default()
        };
        let mut router = Router::new(&grid, &placement, options);
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let second = router.route(&direct_task(1, 0, 0, 5)).unwrap();
        assert!(second.path.window.start >= 5);
        assert_eq!(router.stats().postponed_tasks, 1);
    }

    #[test]
    fn dense_edge_set_tracks_members_in_order() {
        let mut set = DenseEdgeSet::new(200);
        assert!(!set.contains(GridEdgeId(67)));
        assert!(set.insert(GridEdgeId(67)));
        assert!(set.insert(GridEdgeId(3)));
        assert!(set.insert(GridEdgeId(199)));
        assert!(!set.insert(GridEdgeId(67)), "reinsert is a no-op");
        assert!(set.contains(GridEdgeId(67)));
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.to_vec(),
            vec![GridEdgeId(3), GridEdgeId(67), GridEdgeId(199)]
        );
    }

    /// A congested task mix covering all three kinds with slack (so the
    /// window stage actually staggers) for the threaded-equality tests.
    fn congested_tasks() -> Vec<TransportTask> {
        let mut tasks = Vec::new();
        for i in 0..6 {
            let mut t = direct_task(i % 3, (i + 1) % 3, 0, 5);
            t.sample = 200 + i;
            t.deadline = 60;
            tasks.push(t);
        }
        for s in 0..3 {
            let mut store = store_task(s, s % 3, (s + 1) % 3);
            store.deadline = 35;
            tasks.push(store);
        }
        tasks.sort_by_key(|t| t.window_start);
        for s in 0..3 {
            let mut fetch = fetch_task(s, s % 3, (s + 1) % 3);
            fetch.deadline = 90;
            tasks.push(fetch);
        }
        tasks
    }

    #[test]
    fn route_all_is_bit_identical_across_thread_counts() {
        for grid_side in [4, 10] {
            let grid = ConnectionGrid::square(grid_side);
            let placement = make_placement(&grid, 3);
            let tasks = congested_tasks();

            let mut sequential = Router::new(&grid, &placement, RoutingOptions::default());
            let baseline: Vec<RoutedTransport> =
                tasks.iter().map(|t| sequential.route(t).unwrap()).collect();

            for threads in [2, 4, 8] {
                let mut parallel =
                    Router::new(&grid, &placement, RoutingOptions::default()).with_threads(threads);
                let routed = parallel.route_all(&tasks).unwrap();
                assert_eq!(routed, baseline, "side {grid_side}, {threads} threads");
                assert_eq!(
                    parallel.stats(),
                    sequential.stats(),
                    "side {grid_side}, {threads} threads: stage counters diverged"
                );
                assert_eq!(parallel.used_edges(), sequential.used_edges());
            }
        }
    }

    #[test]
    fn route_all_propagates_failures_like_the_sequential_loop() {
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let tasks = vec![direct_task(0, 1, 0, 5), direct_task(1, 0, 0, 5)];
        let mut sequential = Router::new(&grid, &placement, RoutingOptions::default());
        let expected = sequential.route(&tasks[0]).unwrap();
        let expected_err = sequential.route(&tasks[1]).unwrap_err();

        let mut parallel =
            Router::new(&grid, &placement, RoutingOptions::default()).with_threads(4);
        let err = parallel.route_all(&tasks).unwrap_err();
        assert_eq!(format!("{err}"), format!("{expected_err}"));
        let _ = expected;
    }
}
