//! Time-multiplexed routing of transportation paths on the connection grid.
//!
//! Every transportation task is routed as a path of channel segments
//! connected by switches. Paths whose occupation windows overlap in time may
//! not share an edge or an intersection node (the paper's conflict rule), a
//! segment caching a sample is blocked for its storage interval (but its end
//! nodes remain passable), and device nodes can only appear as the endpoints
//! of a path. Routing minimizes the number of *distinct* edges ever used by
//! pricing not-yet-used edges higher than already-used ones, which directly
//! drives down the `n_e`/`n_v` columns of Table 2.
//!
//! # The staged pipeline
//!
//! [`Router::route`] runs every task through three explicit stages:
//!
//! 1. **Window selection** — candidate occupation windows inside the task's
//!    slack. The preferred window comes first; further candidates are asked
//!    of the [`ReservationTable`] calendars directly
//!    ([`first_free_edge_window`](ReservationTable::first_free_edge_window)
//!    on the congested port resources) instead of probing arithmetic guesses,
//!    so a feasible window is found even when the contention pattern is
//!    irregular.
//! 2. **Path search** — an indexed Dijkstra over the grid (dense scratch
//!    arrays reused across searches) that respects the reservation calendars
//!    for the chosen window; store tasks additionally select a cache segment
//!    through the distance-sorted [`SegmentIndex`](crate::segment_index).
//! 3. **Commit** — the found path reserves its edges and switch nodes in the
//!    calendars and the task is recorded.
//!
//! Each stage counts its work in [`RouterStats`], surfaced through
//! `SynthesisReport` so regressions in window rejection rates or search
//! effort are visible in the benchmark artifacts.
//!
//! Tasks carry slack (`earliest_start ..= deadline`); when the preferred
//! window is congested — for example several samples leaving the same device
//! at once, which cannot all use its handful of ports simultaneously — the
//! router staggers the transport inside its slack instead of failing.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use biochip_assay::Seconds;

use crate::connection_graph::RoutedTransport;
use crate::error::ArchError;
use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::placement::Placement;
use crate::reservation::{Interval, ReservationTable};
use crate::segment_index::{OrderedCandidates, PairIndex, SegmentIndex};

/// A statically-scored, `(score, edge)`-sorted candidate list shared with
/// [`OrderedCandidates`].
type ScoredEdges = Rc<[(u64, GridEdgeId)]>;
use crate::transport::{TransportKind, TransportTask};

/// Options controlling the router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingOptions {
    /// Cost of traversing an edge that some earlier path already used.
    pub used_edge_cost: u64,
    /// Cost of traversing an edge that no path has used yet (pricing new
    /// edges higher minimizes the number of kept segments).
    pub new_edge_cost: u64,
    /// Whether cache segments may touch a device node when no pure
    /// switch-to-switch segment is free (needed on very small grids).
    pub allow_device_adjacent_storage: bool,
    /// Bounds the candidate start times tried when a task's preferred
    /// window is congested: the arithmetic stride over the slack stops at
    /// this many starts (2× with overrun steps included), and the full
    /// candidate list — calendar-derived extras appended — is truncated at
    /// 4× this value.
    pub max_window_candidates: usize,
    /// Price added per neighbouring segment that is already caching a sample
    /// while the candidate would be: spreads cache segments out instead of
    /// letting them cluster into walls that block each other's fetch egress
    /// (16 = four Manhattan-distance units of the store score).
    pub cache_neighbor_penalty: u64,
    /// Path-search price added for traversing a switch node adjacent to a
    /// device that is not an endpoint of the current task. Keeps transit
    /// traffic off device ports, which zero-slack stores and fetches need
    /// free at exactly their scheduled instant.
    pub foreign_port_penalty: u64,
    /// Last-resort postponement: how far beyond its deadline a transport may
    /// be shifted when no conflict-free window exists inside its slack.
    ///
    /// A schedule can demand more simultaneous movements at one device than
    /// the device has ports (e.g. three departing samples plus two arriving
    /// inputs around the same instant); a real chip controller serializes
    /// them. The resulting postponement is reported by
    /// [`Architecture::transport_postponement`](crate::Architecture::transport_postponement)
    /// so that the execution-time impact stays visible.
    pub max_deadline_overrun: Seconds,
}

impl Default for RoutingOptions {
    fn default() -> Self {
        RoutingOptions {
            used_edge_cost: 1,
            new_edge_cost: 4,
            allow_device_adjacent_storage: true,
            cache_neighbor_penalty: 16,
            foreign_port_penalty: 2,
            max_window_candidates: 16,
            max_deadline_overrun: 0,
        }
    }
}

/// One routed transportation path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// Nodes visited, in order (first = source, last = destination).
    pub nodes: Vec<NodeId>,
    /// Edges traversed, in order (`nodes.len() - 1` entries).
    pub edges: Vec<GridEdgeId>,
    /// Time window during which the path is occupied.
    pub window: Interval,
}

/// Per-stage work counters of the staged routing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouterStats {
    /// Tasks successfully routed (commit-stage executions).
    pub tasks_routed: usize,
    /// Candidate windows evaluated by the path-search stage.
    pub windows_tried: usize,
    /// Dijkstra invocations.
    pub path_searches: usize,
    /// Total nodes expanded (heap pops) across all path searches.
    pub nodes_expanded: usize,
    /// Cache segments priced by the store stage's segment index.
    pub segments_priced: usize,
    /// Tasks committed past their schedule-derived deadline.
    pub postponed_tasks: usize,
}

/// The incremental routing engine.
///
/// Tasks must be routed in the order returned by
/// [`extract_transport_tasks`](crate::extract_transport_tasks) (ascending
/// window start); each successful route immediately reserves its resources.
#[derive(Debug)]
pub struct Router<'a> {
    grid: &'a ConnectionGrid,
    placement: &'a Placement,
    options: RoutingOptions,
    reservations: ReservationTable,
    used_edges: HashSet<GridEdgeId>,
    /// Cache segment and exit node chosen for each stored sample.
    cache_of_sample: HashMap<usize, (GridEdgeId, NodeId)>,
    /// Segments currently caching a sample, with the span they are blocked
    /// for and the window their fetch is planned in. Drives the store
    /// stage's occupancy pricing and the egress guards that keep every
    /// cached sample's escape route open.
    active_caches: HashMap<GridEdgeId, CacheInfo>,
    /// Every segment that has ever cached a sample. Store tasks reuse pool
    /// members first (first-fit interval assignment), keeping the distinct
    /// cache-segment count near the schedule's storage peak.
    cache_pool: BTreeSet<GridEdgeId>,
    /// Pool members in the order they joined (drives the incremental
    /// per-pair pooled candidate lists).
    pool_log: Vec<GridEdgeId>,
    /// Per device pair: how much of `pool_log` is merged in, and the pool
    /// members sorted by that pair's static score — so the reuse scan walks
    /// candidates best-first and stops early instead of pricing the whole
    /// pool.
    pooled_by_pair: HashMap<(usize, usize), (usize, ScoredEdges)>,
    /// Device occupying each grid node, if any (dense lookup; the
    /// [`Placement::device_at`] scan is linear in the device count and sits
    /// on the Dijkstra hot path).
    device_of_node: Vec<Option<biochip_schedule::DeviceId>>,
    /// For each node, the device nodes adjacent to it (a switch next to a
    /// device is one of that device's ports; transit traffic over it is
    /// priced up by `foreign_port_penalty`).
    adjacent_device_nodes: Vec<Vec<NodeId>>,
    segment_index: SegmentIndex,
    scratch: DijkstraScratch,
    stats: RouterStats,
    /// Whether the grid is storage-sized (side ≥ `SCALE_GRID_SIDE`). The
    /// scale heuristics — pool-first reuse, cache guards, foreign-port
    /// pricing, A*-directed search — only engage here, so paper-scale grids
    /// reproduce the pre-refactor router's chips exactly.
    scale_mode: bool,
}

/// One Dijkstra frontier entry (min-heap by cost, then node id).
#[derive(Debug, PartialEq, Eq)]
struct SearchEntry {
    cost: u64,
    node: NodeId,
}

impl Ord for SearchEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for SearchEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dense per-node scratch arrays reused across Dijkstra runs; `stamp`
/// versioning avoids clearing them between searches and the frontier heap
/// keeps its allocation.
#[derive(Debug, Default)]
struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<(NodeId, GridEdgeId)>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: std::collections::BinaryHeap<SearchEntry>,
}

impl DijkstraScratch {
    fn for_grid(grid: &ConnectionGrid) -> Self {
        DijkstraScratch {
            dist: vec![0; grid.num_nodes()],
            prev: vec![(NodeId(0), GridEdgeId(0)); grid.num_nodes()],
            stamp: vec![0; grid.num_nodes()],
            epoch: 0,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: every stale stamp would look current, so reset.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.heap.clear();
    }

    fn dist(&self, node: NodeId) -> u64 {
        if self.stamp[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            u64::MAX
        }
    }

    fn set(&mut self, node: NodeId, dist: u64, prev: Option<(NodeId, GridEdgeId)>) {
        let i = node.index();
        self.stamp[i] = self.epoch;
        self.dist[i] = dist;
        if let Some(p) = prev {
            self.prev[i] = p;
        }
    }
}

impl<'a> Router<'a> {
    /// Creates a router over the given grid and placement.
    #[must_use]
    pub fn new(
        grid: &'a ConnectionGrid,
        placement: &'a Placement,
        options: RoutingOptions,
    ) -> Self {
        let mut device_of_node = vec![None; grid.num_nodes()];
        for (device, &node) in placement.device_nodes().iter().enumerate() {
            device_of_node[node.index()] = Some(biochip_schedule::DeviceId(device));
        }
        let mut adjacent_device_nodes = vec![Vec::new(); grid.num_nodes()];
        for &device_node in placement.device_nodes() {
            for &edge in grid.incident_edges(device_node) {
                let port = grid.other_endpoint(edge, device_node);
                adjacent_device_nodes[port.index()].push(device_node);
            }
        }
        Router {
            grid,
            placement,
            options,
            reservations: ReservationTable::new(grid),
            used_edges: HashSet::new(),
            cache_of_sample: HashMap::new(),
            active_caches: HashMap::new(),
            cache_pool: BTreeSet::new(),
            pool_log: Vec::new(),
            pooled_by_pair: HashMap::new(),
            adjacent_device_nodes,
            device_of_node,
            segment_index: SegmentIndex::default(),
            scratch: DijkstraScratch::for_grid(grid),
            stats: RouterStats::default(),
            scale_mode: grid.rows().max(grid.cols()) >= crate::segment_index::SCALE_GRID_SIDE,
        }
    }

    /// Edges used by at least one routed path so far.
    #[must_use]
    pub fn used_edges(&self) -> &HashSet<GridEdgeId> {
        &self.used_edges
    }

    /// The reservation table built up so far.
    #[must_use]
    pub fn reservations(&self) -> &ReservationTable {
        &self.reservations
    }

    /// The per-stage work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The device occupying a node, if any (dense O(1) lookup).
    fn device_at(&self, node: NodeId) -> Option<biochip_schedule::DeviceId> {
        self.device_of_node[node.index()]
    }

    /// Routes one transportation task through the staged pipeline, reserving
    /// its resources.
    ///
    /// The returned [`RoutedTransport`] carries the task with its *actual*
    /// window (which may have been shifted inside the task's slack) and, for
    /// store tasks, the chosen cache segment and updated storage interval.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::RoutingFailed`] when no conflict-free path exists
    /// inside the task's slack and [`ArchError::NoStorageSegment`] when no
    /// channel segment can cache the sample for its storage interval.
    pub fn route(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        // Postponement escalates per task: the first attempt only considers
        // windows inside the task's slack; overrun windows are tried when —
        // and only when — the task cannot be routed on time. Tasks that fit
        // their slack are unaffected by the configured overrun.
        match self.route_attempt(task, false) {
            Ok(routed) => Ok(routed),
            Err(_) if self.options.max_deadline_overrun > 0 => self.route_attempt(task, true),
            Err(e) => Err(e),
        }
    }

    fn route_attempt(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        match task.kind {
            TransportKind::Direct => self.route_direct(task, allow_overrun),
            TransportKind::Store => self.route_store(task, allow_overrun),
            TransportKind::Fetch => self.route_fetch(task, allow_overrun),
        }
    }

    // -----------------------------------------------------------------
    // Stage 1: window selection
    // -----------------------------------------------------------------

    /// Candidate occupation windows inside the task's slack: the preferred
    /// window first, then slack candidates in ascending start order, then
    /// postponed windows up to the configured deadline overrun (last resort).
    ///
    /// Besides the arithmetic grid of start times, the calendars of the
    /// `resources` a window must not conflict with (typically the port edges
    /// of the two devices) are asked for their first feasible windows
    /// directly, so congested tasks jump straight to a plausible start
    /// instead of stepping blindly through their slack.
    fn candidate_windows(&self, task: &TransportTask, allow_overrun: bool) -> Vec<Interval> {
        let resources = self.window_resources(task);
        let len = task.window_len().max(1);
        let cap = self.options.max_window_candidates.max(1);

        // The pre-refactor candidate sequence, reproduced exactly so every
        // task the old router placed lands in the same window: preferred
        // start, then earliest, latest and a stride over the slack, then
        // arithmetic overrun steps.
        let mut starts = vec![task.window_start];
        let latest = if task.deadline >= task.earliest_start + len {
            let latest = task.deadline - len;
            starts.push(task.earliest_start);
            starts.push(latest);
            let mut s = task.earliest_start;
            while s <= latest && starts.len() < self.options.max_window_candidates {
                starts.push(s);
                s += len;
            }
            Some(latest)
        } else {
            None
        };
        let overrun_latest = if allow_overrun && self.options.max_deadline_overrun > 0 {
            let base = task.deadline.saturating_sub(len).max(task.earliest_start);
            let mut overrun = len;
            while overrun <= self.options.max_deadline_overrun && starts.len() < 2 * cap {
                starts.push(base + overrun);
                overrun += len;
            }
            Some((base, base + self.options.max_deadline_overrun))
        } else {
            None
        };
        let mut seen = HashSet::new();
        let mut windows: Vec<Interval> = starts
            .into_iter()
            .filter(|s| seen.insert(*s))
            .take(2 * cap)
            .map(|s| Interval::new(s, s + len))
            .collect();

        // Calendar-driven extras: the earliest feasible starts on the
        // constraining resources, appended after the legacy sequence — they
        // only decide the outcome when every legacy candidate fails, which
        // is exactly the congested case the calendars resolve.
        let mut extras: BTreeSet<Seconds> = BTreeSet::new();
        if let Some(latest) = latest {
            for resource in &resources {
                for earliest in [task.earliest_start, task.window_start.min(latest)] {
                    if let Some(s) = self.first_free_on(*resource, len, earliest, latest) {
                        extras.insert(s);
                    }
                }
            }
        }
        if let Some((base, latest)) = overrun_latest {
            for resource in &resources {
                if let Some(s) = self.first_free_on(*resource, len, base + 1, latest) {
                    extras.insert(s);
                }
            }
        }
        for s in extras {
            let w = Interval::new(s, s + len);
            if !windows.contains(&w) {
                windows.push(w);
            }
        }
        windows.truncate(4 * cap);
        windows
    }

    /// The resources whose calendars constrain a task's window: the port
    /// edges of its endpoint devices, plus the end nodes of the cache
    /// segment for fetches.
    fn window_resources(&self, task: &TransportTask) -> Vec<WindowResource> {
        let mut resources = Vec::new();
        match task.kind {
            TransportKind::Direct => {
                let from = self.placement.node_of(task.from_device);
                let to = self.placement.node_of(task.to_device);
                for &node in &[from, to] {
                    for &edge in self.grid.incident_edges(node) {
                        resources.push(WindowResource::Edge(edge));
                    }
                }
            }
            TransportKind::Store => {
                let from = self.placement.node_of(task.from_device);
                for &edge in self.grid.incident_edges(from) {
                    resources.push(WindowResource::Edge(edge));
                }
            }
            TransportKind::Fetch => {
                if let Some(&(cache_edge, exit)) = self.cache_of_sample.get(&task.sample) {
                    let entry = self.grid.other_endpoint(cache_edge, exit);
                    resources.push(WindowResource::Node(exit));
                    resources.push(WindowResource::Node(entry));
                }
                let to = self.placement.node_of(task.to_device);
                for &edge in self.grid.incident_edges(to) {
                    resources.push(WindowResource::Edge(edge));
                }
            }
        }
        resources
    }

    fn first_free_on(
        &self,
        resource: WindowResource,
        duration: Seconds,
        earliest: Seconds,
        latest_start: Seconds,
    ) -> Option<Seconds> {
        match resource {
            WindowResource::Edge(edge) => {
                self.reservations
                    .first_free_edge_window(edge, duration, earliest, latest_start)
            }
            WindowResource::Node(node) => {
                self.reservations
                    .first_free_node_window(node, duration, earliest, latest_start)
            }
        }
    }

    // -----------------------------------------------------------------
    // Direct, store and fetch pipelines
    // -----------------------------------------------------------------

    fn route_direct(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let from = self.placement.node_of(task.from_device);
        let to = self.placement.node_of(task.to_device);
        for window in self.candidate_windows(task, allow_overrun) {
            self.stats.windows_tried += 1;
            if let Some(path) = self.shortest_path(from, to, window, None) {
                self.commit(&path, window, task.deadline);
                let mut routed_task = task.clone();
                routed_task.window_start = window.start;
                routed_task.window_end = window.end;
                return Ok(RoutedTransport {
                    task: routed_task,
                    path,
                    cache_edge: None,
                });
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    /// Routes a store task: producer device → a free channel segment that
    /// will cache the sample.
    ///
    /// Segment selection is **pool-first**: segments that have cached a
    /// sample before (the cache pool) are tried ahead of fresh segments, in
    /// ascending score order. This is first-fit interval assignment — the
    /// number of distinct cache segments stays close to the schedule's peak
    /// concurrent storage instead of growing with the store count, which
    /// both keeps the valve count down and leaves the rest of the grid free
    /// for transport paths. Fresh segments (via the distance-sorted
    /// [`SegmentIndex`](crate::segment_index)) only join the pool when no
    /// pooled segment is free for the sample's whole storage horizon.
    fn route_store(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let stored_until = task
            .storage_interval
            .map(|(_, until)| until)
            .unwrap_or(task.deadline);
        let pair_index = self.segment_index.pair_index(
            self.grid,
            self.placement,
            task.from_device,
            task.to_device,
            self.options.allow_device_adjacent_storage,
        );
        let min_price = self.options.used_edge_cost.min(self.options.new_edge_cost);
        let to_node = self.placement.node_of(task.to_device);

        let from_node = self.placement.node_of(task.from_device);
        for store_window in self.candidate_windows(task, allow_overrun) {
            if store_window.end > stored_until {
                // The sample must be resting in its segment before the fetch
                // departs; postponing the store past that point is useless.
                continue;
            }
            // The sample has to leave the producer through one of its port
            // edges; when all of them are occupied for this window, no
            // candidate segment can be reached — skip the window before
            // pricing the whole pool against it.
            let producer_can_leave = self.grid.incident_edges(from_node).iter().any(|&port| {
                self.reservations.edge_free(port, store_window)
                    && self
                        .reservations
                        .node_free(self.grid.other_endpoint(port, from_node), store_window)
            });
            if !producer_can_leave {
                continue;
            }
            self.stats.windows_tried += 1;
            let horizon = StoreHorizon::new(task, store_window, stored_until);

            // Phase 1 (scale grids only): reuse a pooled segment, cheapest
            // total score first (the per-pair pooled list is statically
            // sorted, so the scan stops as soon as the best feasible
            // candidate is bounded).
            let pooled_list = if self.scale_mode {
                self.pooled_list(task, &pair_index)
            } else {
                Vec::new().into()
            };
            let mut pooled = OrderedCandidates::new(pooled_list, min_price);
            loop {
                let next = pooled.next_available(|e| self.price_segment(e, &horizon, to_node));
                let Some(edge) = next else { break };
                if let Some(routed) = self.claim_cache_segment(task, edge, &horizon) {
                    self.stats.segments_priced += pooled.priced();
                    return Ok(routed);
                }
            }
            self.stats.segments_priced += pooled.priced();

            // Phase 2: bring a fresh segment into the pool.
            let mut candidates = OrderedCandidates::new(Rc::clone(&pair_index.sorted), min_price);
            loop {
                let next = candidates.next_available(|e| {
                    if self.scale_mode && self.cache_pool.contains(&e) {
                        None // already tried in phase 1
                    } else {
                        self.price_segment(e, &horizon, to_node)
                    }
                });
                let Some(edge) = next else { break };
                if let Some(routed) = self.claim_cache_segment(task, edge, &horizon) {
                    self.stats.segments_priced += candidates.priced();
                    return Ok(routed);
                }
            }
            self.stats.segments_priced += candidates.priced();
        }
        Err(ArchError::NoStorageSegment {
            task: task.describe(),
        })
    }

    /// The pool members usable for this task's device pair, sorted by the
    /// pair's static score; newly pooled segments are merged in on demand.
    fn pooled_list(&mut self, task: &TransportTask, pair: &PairIndex) -> ScoredEdges {
        let key = (task.from_device.index(), task.to_device.index());
        let entry = self
            .pooled_by_pair
            .entry(key)
            .or_insert_with(|| (0, Vec::new().into()));
        if entry.0 < self.pool_log.len() {
            let mut merged: Vec<(u64, GridEdgeId)> = entry.1.to_vec();
            for &edge in &self.pool_log[entry.0..] {
                if let Some(score) = pair.score_of[edge.index()] {
                    let item = (score, edge);
                    let pos = merged.partition_point(|&x| x < item);
                    merged.insert(pos, item);
                }
            }
            entry.0 = self.pool_log.len();
            entry.1 = merged.into();
        }
        Rc::clone(&entry.1)
    }

    /// Dynamic price of a cache-segment candidate for the given storage
    /// horizon: `None` when the segment is reserved anywhere in the horizon
    /// or a guard rejects it, otherwise the used/new price plus the
    /// cache-neighbour occupancy penalty.
    fn price_segment(
        &self,
        edge: GridEdgeId,
        horizon: &StoreHorizon,
        to_node: NodeId,
    ) -> Option<u64> {
        // O(1) fast path: a segment that currently caches a sample is
        // reserved for that sample's whole horizon; no calendar search
        // needed to reject it.
        if let Some(info) = self.active_caches.get(&edge) {
            if info.reserved.overlaps(&horizon.blocked) {
                return None;
            }
        }
        if !(self.reservations.edge_free(edge, horizon.store_window)
            && self.reservations.edge_free(edge, horizon.storage)
            && self.reservations.edge_free(edge, horizon.planned_fetch))
        {
            return None;
        }
        if self.scale_mode
            && (!self.egress_stays_open(edge, horizon.planned_fetch, to_node)
                || self.strangles_cached_neighbor(edge, horizon.blocked)
                || self.starves_device_ports(edge, horizon.blocked))
        {
            return None;
        }
        let base = if self.used_edges.contains(&edge) {
            self.options.used_edge_cost
        } else {
            self.options.new_edge_cost
        };
        if !self.scale_mode {
            return Some(base);
        }
        Some(
            base + self.options.cache_neighbor_penalty
                * self.caching_neighbors(edge, horizon.blocked),
        )
    }

    /// Tries to route the store path into `edge` and commit the storage
    /// reservation. Returns `None` when neither orientation of the segment
    /// admits a conflict-free approach path.
    fn claim_cache_segment(
        &mut self,
        task: &TransportTask,
        edge: GridEdgeId,
        horizon: &StoreHorizon,
    ) -> Option<RoutedTransport> {
        let from = self.placement.node_of(task.from_device);
        let store_window = horizon.store_window;
        let (x, y) = self.grid.endpoints(edge);
        // Try entering the segment from either endpoint.
        for (entry, exit) in [(x, y), (y, x)] {
            // The sample slides into the segment towards `exit`, so the far
            // end must be a free switch node; the entry may be a device node
            // only if it is the producer itself.
            if self.device_at(exit).is_some() || !self.reservations.node_free(exit, store_window) {
                continue;
            }
            if self.device_at(entry).is_some() && entry != from {
                continue;
            }
            let Some(mut path) = self.shortest_path(from, entry, store_window, Some(edge)) else {
                continue;
            };
            path.nodes.push(exit);
            path.edges.push(edge);
            self.commit(&path, store_window, task.deadline);
            // Block the segment from the moment the sample arrives until the
            // end of its planned fetch window — plus the allowed
            // postponement, so a delayed fetch still owns the segment while
            // the sample rests past the plan — so no later task can claim
            // the segment for the very instant the sample has to leave it.
            // The segment's end nodes stay passable for other paths (the
            // paper's exception).
            let reserved_until = if self.scale_mode {
                horizon.planned_fetch.end + self.options.max_deadline_overrun
            } else {
                horizon.planned_fetch.end
            };
            self.reservations
                .reserve_edge(edge, Interval::new(horizon.storage.start, reserved_until));
            self.cache_of_sample.insert(task.sample, (edge, exit));
            if self.cache_pool.insert(edge) {
                self.pool_log.push(edge);
            }
            self.active_caches.insert(
                edge,
                CacheInfo {
                    blocked: Interval::new(horizon.blocked.start, reserved_until),
                    reserved: Interval::new(horizon.storage.start, reserved_until),
                    fetch_window: horizon.planned_fetch,
                    reserved_until,
                },
            );
            let mut routed_task = task.clone();
            routed_task.window_start = store_window.start;
            routed_task.window_end = store_window.end;
            routed_task.storage_interval = Some((horizon.storage.start, horizon.storage.end));
            return Some(RoutedTransport {
                task: routed_task,
                path,
                cache_edge: Some(edge),
            });
        }
        None
    }

    /// Number of incident segments (at either endpoint) that cache a sample
    /// while `span` is blocked — the occupancy term of the store score.
    fn caching_neighbors(&self, edge: GridEdgeId, span: Interval) -> u64 {
        let (x, y) = self.grid.endpoints(edge);
        let mut count = 0;
        for node in [x, y] {
            for &neighbor in self.grid.incident_edges(node) {
                if neighbor == edge {
                    continue;
                }
                if let Some(info) = self.active_caches.get(&neighbor) {
                    if info.blocked.overlaps(&span) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Whether a sample cached in `edge` could still leave towards
    /// `to_node` during its planned fetch window: at least one incident
    /// segment at one end must be free for the fetch to depart through.
    /// Edges leading into a foreign device do not count — a fetch path may
    /// only enter its own consumer. Without this guard a distance-greedy
    /// store can pick a spot that is already walled in by longer-lived
    /// caches, and the zero-slack fetch later fails.
    fn egress_stays_open(&self, edge: GridEdgeId, fetch_window: Interval, to_node: NodeId) -> bool {
        let (x, y) = self.grid.endpoints(edge);
        [x, y].into_iter().any(|node| {
            self.device_at(node).is_none()
                && self.grid.incident_edges(node).iter().any(|&out| {
                    if out == edge {
                        return false;
                    }
                    let z = self.grid.other_endpoint(out, node);
                    (self.device_at(z).is_none() || z == to_node)
                        && self.reservations.edge_free(out, fetch_window)
                })
        })
    }

    /// Whether caching on `edge` would leave a device with too few
    /// cache-free port edges during the blocked span. Every transport of a
    /// device flows through its handful of ports; parking samples on them
    /// until fewer than two remain (one, on low-degree grid corners)
    /// guarantees that some zero-slack arrival or departure finds every
    /// port occupied.
    fn starves_device_ports(&self, edge: GridEdgeId, blocked: Interval) -> bool {
        let (x, y) = self.grid.endpoints(edge);
        for node in [x, y] {
            if self.device_at(node).is_none() {
                continue;
            }
            let ports = self.grid.incident_edges(node);
            let required = ports.len().saturating_sub(1).min(2);
            let cache_free = ports
                .iter()
                .filter(|&&port| {
                    port != edge
                        && self
                            .active_caches
                            .get(&port)
                            .is_none_or(|info| !info.blocked.overlaps(&blocked))
                })
                .count();
            if cache_free < required {
                return true;
            }
        }
        false
    }

    /// Whether claiming `edge` for `blocked` would take the **last** free
    /// egress segment of a neighbouring cached sample during its planned
    /// fetch window. Placing such a store would strand the neighbour, so the
    /// candidate is rejected up front.
    fn strangles_cached_neighbor(&self, edge: GridEdgeId, blocked: Interval) -> bool {
        let (x, y) = self.grid.endpoints(edge);
        for node in [x, y] {
            for &neighbor in self.grid.incident_edges(node) {
                if neighbor == edge {
                    continue;
                }
                let Some(info) = self.active_caches.get(&neighbor) else {
                    continue;
                };
                if !info.fetch_window.overlaps(&blocked) {
                    continue;
                }
                let (nx, ny) = self.grid.endpoints(neighbor);
                let still_escapes = [nx, ny].into_iter().any(|end| {
                    self.device_at(end).is_none()
                        && self.grid.incident_edges(end).iter().any(|&out| {
                            out != neighbor
                                && out != edge
                                // The neighbour's consumer is unknown here;
                                // conservatively require a non-device escape.
                                && self
                                    .device_at(self.grid.other_endpoint(out, end))
                                    .is_none()
                                && self.reservations.edge_free(out, info.fetch_window)
                        })
                });
                if !still_escapes {
                    return true;
                }
            }
        }
        false
    }

    /// Routes a fetch task: the sample's cache segment → consumer device.
    fn route_fetch(
        &mut self,
        task: &TransportTask,
        allow_overrun: bool,
    ) -> Result<RoutedTransport, ArchError> {
        let to = self.placement.node_of(task.to_device);
        let (cache_edge, exit) =
            self.cache_of_sample
                .get(&task.sample)
                .copied()
                .ok_or_else(|| ArchError::Inconsistent {
                    reason: format!("fetch of sample {} before it was stored", task.sample),
                })?;
        let (x, y) = self.grid.endpoints(cache_edge);
        let reserved_until = self
            .active_caches
            .get(&cache_edge)
            .map_or(task.window_end, |info| info.reserved_until);
        for window in self.candidate_windows(task, allow_overrun) {
            // The cache segment is already reserved for the sample through
            // the end of its planned fetch window plus the postponement
            // guard. When the fetch is postponed beyond that reservation,
            // the segment must additionally stay free (the sample keeps
            // resting in it) until the actual departure completes.
            let beyond_plan = Interval::new(reserved_until.min(window.end), window.end);
            if !self.reservations.edge_free(cache_edge, beyond_plan) {
                continue;
            }
            self.stats.windows_tried += 1;
            // Leave through the recorded exit node first, falling back to
            // the other end of the segment.
            for leave in [exit, if exit == x { y } else { x }] {
                let Some(path) = self.shortest_path(leave, to, window, Some(cache_edge)) else {
                    continue;
                };
                // The sample first traverses its cache segment, then the path.
                let entry = self.grid.other_endpoint(cache_edge, leave);
                let mut nodes = vec![entry];
                nodes.extend(path.nodes.iter().copied());
                let mut edges = vec![cache_edge];
                edges.extend(path.edges.iter().copied());
                let full = RoutedPath {
                    nodes,
                    edges,
                    window,
                };
                self.commit(&full, window, task.deadline);
                // Keep the segment blocked while the sample rests in it past
                // the originally planned fetch time.
                self.reservations.reserve_edge(cache_edge, beyond_plan);
                self.cache_of_sample.remove(&task.sample);
                self.active_caches.remove(&cache_edge);
                let mut routed_task = task.clone();
                routed_task.window_start = window.start;
                routed_task.window_end = window.end;
                return Ok(RoutedTransport {
                    task: routed_task,
                    path: full,
                    cache_edge: Some(cache_edge),
                });
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    // -----------------------------------------------------------------
    // Stage 3: commit
    // -----------------------------------------------------------------

    /// Reserves every switch node and edge of a path for the window and
    /// records the edges as used.
    ///
    /// Device nodes are *not* reserved: several samples may arrive at or
    /// leave the same device in overlapping windows (for example the two
    /// inputs of a mixing operation), entering through different channels.
    /// Channel-level conflicts are still excluded because the edges and
    /// switch nodes of concurrent paths may not overlap.
    fn commit(&mut self, path: &RoutedPath, window: Interval, deadline: Seconds) {
        for &node in &path.nodes {
            if self.device_at(node).is_some() {
                continue;
            }
            self.reservations.reserve_node(node, window);
        }
        for &edge in &path.edges {
            self.reservations.reserve_edge(edge, window);
            self.used_edges.insert(edge);
        }
        self.stats.tasks_routed += 1;
        if window.end > deadline {
            self.stats.postponed_tasks += 1;
        }
    }

    // -----------------------------------------------------------------
    // Stage 2: path search
    // -----------------------------------------------------------------

    /// Dijkstra shortest path from `from` to `to` during `window`, avoiding
    /// reserved edges/nodes and foreign device nodes. `skip_edge` is excluded
    /// from the search (used to keep a cache segment for the sample itself).
    fn shortest_path(
        &mut self,
        from: NodeId,
        to: NodeId,
        window: Interval,
        skip_edge: Option<GridEdgeId>,
    ) -> Option<RoutedPath> {
        self.stats.path_searches += 1;
        if from == to {
            return Some(RoutedPath {
                nodes: vec![from],
                edges: Vec::new(),
                window,
            });
        }
        let endpoint_blocked = |node: NodeId| {
            self.device_at(node).is_none() && !self.reservations.node_free(node, window)
        };
        if endpoint_blocked(from) || endpoint_blocked(to) {
            return None;
        }

        // On storage-sized grids the search is A*-directed by the Manhattan
        // lower bound (admissible and consistent: every step costs at least
        // the cheaper edge price). Paper-scale grids keep plain Dijkstra so
        // their tie-breaking — and thus their synthesized chips — stay
        // exactly as before the refactor.
        let min_edge_cost = self.options.used_edge_cost.min(self.options.new_edge_cost);
        let heuristic_on = self.scale_mode;
        let to_coord = self.grid.coord(to);
        let bound = |router: &Router<'_>, node: NodeId| -> u64 {
            if heuristic_on {
                router.grid.coord(node).manhattan(to_coord) as u64 * min_edge_cost
            } else {
                0
            }
        };

        self.scratch.begin();
        self.scratch.set(from, 0, None);
        let from_bound = bound(self, from);
        self.scratch.heap.push(SearchEntry {
            cost: from_bound,
            node: from,
        });
        let mut reached = false;

        while let Some(SearchEntry {
            cost: priority,
            node,
        }) = self.scratch.heap.pop()
        {
            self.stats.nodes_expanded += 1;
            if node == to {
                reached = true;
                break;
            }
            let cost = priority - bound(self, node);
            if cost > self.scratch.dist(node) {
                continue;
            }
            for &edge in self.grid.incident_edges(node) {
                if Some(edge) == skip_edge {
                    continue;
                }
                let next = self.grid.other_endpoint(edge, node);
                // Device nodes may only be path endpoints.
                if next != to && self.device_at(next).is_some() {
                    continue;
                }
                if !self.reservations.edge_free(edge, window)
                    || (self.device_at(next).is_none()
                        && !self.reservations.node_free(next, window))
                {
                    continue;
                }
                let mut edge_cost = if self.used_edges.contains(&edge) {
                    self.options.used_edge_cost
                } else {
                    self.options.new_edge_cost
                };
                // Keep foreign device ports clear (scale grids): crossing a
                // switch that serves another device's port is priced up so
                // transit traffic does not squat on ports that zero-slack
                // transports will need at exactly their scheduled instant.
                if self.scale_mode {
                    for &device_node in &self.adjacent_device_nodes[next.index()] {
                        if device_node != from && device_node != to {
                            edge_cost += self.options.foreign_port_penalty;
                        }
                    }
                }
                let next_cost = cost + edge_cost;
                if next_cost < self.scratch.dist(next) {
                    self.scratch.set(next, next_cost, Some((node, edge)));
                    self.scratch.heap.push(SearchEntry {
                        cost: next_cost + bound(self, next),
                        node: next,
                    });
                }
            }
        }

        if !reached {
            return None;
        }
        let mut nodes = vec![to];
        let mut edges = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let (parent, edge) = self.scratch.prev[cursor.index()];
            nodes.push(parent);
            edges.push(edge);
            cursor = parent;
        }
        nodes.reverse();
        edges.reverse();
        Some(RoutedPath {
            nodes,
            edges,
            window,
        })
    }
}

/// A resource whose reservation calendar constrains a task's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowResource {
    Edge(GridEdgeId),
    Node(NodeId),
}

/// Bookkeeping of one segment that currently caches a sample.
#[derive(Debug, Clone, Copy)]
struct CacheInfo {
    /// Span during which the segment is blocked (arrival through planned
    /// fetch end plus the postponement guard).
    blocked: Interval,
    /// The reservation the store placed on the segment's calendar (storage
    /// arrival through `reserved_until`); lets the store stage reject a
    /// busy pool member with one hash lookup instead of calendar searches.
    reserved: Interval,
    /// The window the fetch is planned to depart in.
    fetch_window: Interval,
    /// End of the reservation the store placed on the segment: planned
    /// fetch end plus `max_deadline_overrun`, so a postponed fetch still
    /// owns its segment while the sample rests past the plan.
    reserved_until: Seconds,
}

/// The time spans a store task must secure on its cache segment.
#[derive(Debug, Clone, Copy)]
struct StoreHorizon {
    /// Window of the store transport itself.
    store_window: Interval,
    /// Span the sample rests in the segment.
    storage: Interval,
    /// Planned (non-empty) departure window of the matching fetch.
    planned_fetch: Interval,
    /// Full span the segment is blocked: store arrival → planned fetch end.
    blocked: Interval,
}

impl StoreHorizon {
    fn new(task: &TransportTask, store_window: Interval, stored_until: Seconds) -> Self {
        let storage = Interval::new(store_window.end.min(stored_until), stored_until);
        let planned_fetch_end = stored_until + task.window_len().max(1);
        StoreHorizon {
            store_window,
            storage,
            planned_fetch: Interval::new(stored_until, planned_fetch_end),
            blocked: Interval::new(store_window.start, planned_fetch_end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_devices, PlacementOptions};
    use biochip_assay::OpId;
    use biochip_schedule::DeviceId;

    fn make_placement(grid: &ConnectionGrid, devices: usize) -> Placement {
        place_devices(grid, devices, &[], &PlacementOptions::default()).unwrap()
    }

    fn direct_task(from: usize, to: usize, start: u64, end: u64) -> TransportTask {
        TransportTask {
            sample: 99,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Direct,
            window_start: start,
            window_end: end,
            storage_interval: None,
            earliest_start: start,
            deadline: end,
        }
    }

    fn store_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Store,
            window_start: 10,
            window_end: 15,
            storage_interval: Some((15, 55)),
            earliest_start: 10,
            deadline: 30,
        }
    }

    fn fetch_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Fetch,
            window_start: 55,
            window_end: 60,
            storage_interval: None,
            earliest_start: 55,
            deadline: 60,
        }
    }

    #[test]
    fn direct_path_connects_the_two_devices() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let routed = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        assert!(routed.cache_edge.is_none());
        assert_eq!(
            routed.path.nodes.first().copied(),
            Some(placement.node_of(DeviceId(0)))
        );
        assert_eq!(
            routed.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
        assert_eq!(routed.path.edges.len(), routed.path.nodes.len() - 1);
        assert!(!router.used_edges().is_empty());
    }

    #[test]
    fn overlapping_paths_do_not_share_resources() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 3);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(2, 1, 0, 5)).unwrap();
        // Both may end at the same destination device, but when their actual
        // windows overlap they share no edge and no switch node.
        if r1.path.window.overlaps(&r2.path.window) {
            for e in &r1.path.edges {
                assert!(
                    !r2.path.edges.contains(e),
                    "edge {e} shared by concurrent paths"
                );
            }
            let interior1: Vec<NodeId> = r1.path.nodes[1..r1.path.nodes.len() - 1].to_vec();
            for n in &r2.path.nodes[1..r2.path.nodes.len() - 1] {
                assert!(
                    !interior1.contains(n),
                    "switch {n} shared by concurrent paths"
                );
            }
        }
    }

    #[test]
    fn sequential_paths_may_reuse_edges() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(0, 1, 10, 15)).unwrap();
        // With used-edge pricing the second path reuses the first one's edges.
        assert_eq!(r1.path.edges, r2.path.edges);
        assert_eq!(router.used_edges().len(), r1.path.edges.len());
    }

    #[test]
    fn congested_window_is_staggered_inside_the_slack() {
        // Two samples leave device 0 towards device 1 in the same preferred
        // window; the second transport has slack until t = 20 and is shifted
        // instead of failing.
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let first = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let mut second = direct_task(0, 1, 0, 5);
        second.deadline = 20;
        let second = router.route(&second).unwrap();
        if second.path.edges == first.path.edges {
            assert!(
                !second.path.window.overlaps(&first.path.window),
                "same segments may only be reused in a later window"
            );
        }
    }

    #[test]
    fn store_then_fetch_uses_the_same_cache_segment() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(3, 0, 1)).unwrap();
        let cache = stored.cache_edge.expect("store chooses a cache segment");
        assert_eq!(stored.path.edges.last().copied(), Some(cache));
        // The segment is blocked during the storage interval.
        let (from, until) = stored.task.storage_interval.unwrap();
        assert!(until > from);
        assert!(!router
            .reservations()
            .edge_free(cache, Interval::new(from + 1, from + 2)));
        let fetched = router.route(&fetch_task(3, 0, 1)).unwrap();
        assert_eq!(fetched.cache_edge, Some(cache));
        assert_eq!(fetched.path.edges.first().copied(), Some(cache));
        assert_eq!(
            fetched.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
    }

    #[test]
    fn fetch_before_store_is_an_error() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&fetch_task(7, 0, 1)).unwrap_err();
        assert!(matches!(err, ArchError::Inconsistent { .. }));
    }

    #[test]
    fn stored_segment_is_not_used_by_other_paths() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(0, 0, 1)).unwrap();
        let cache = stored.cache_edge.unwrap();
        // A direct transport during the storage interval must avoid the
        // cached segment.
        let routed = router.route(&direct_task(0, 1, 20, 25)).unwrap();
        assert!(!routed.path.edges.contains(&cache));
    }

    #[test]
    fn routing_on_a_congested_tiny_grid_fails_gracefully() {
        // 1x2 grid: a single edge between two devices; two concurrent
        // transports with zero slack cannot both be routed.
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let err = router.route(&direct_task(1, 0, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
    }

    #[test]
    fn paths_do_not_cross_foreign_devices() {
        let grid = ConnectionGrid::new(1, 5);
        // Three devices on a line: 0 at one end, 1 at the other, 2 between
        // them. Any path 0 -> 1 would have to cross device 2: impossible.
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(4), NodeId(2)]);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&direct_task(0, 1, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
        // 0 -> 2 (the middle device) is fine: it is the path's endpoint.
        router.route(&direct_task(0, 2, 10, 15)).unwrap();
    }

    #[test]
    fn candidate_windows_start_with_the_preferred_one() {
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let router = Router::new(&grid, &placement, RoutingOptions::default());
        let mut task = direct_task(0, 1, 10, 15);
        task.earliest_start = 0;
        task.deadline = 40;
        let windows = router.candidate_windows(&task, false);
        assert_eq!(windows[0], Interval::new(10, 15));
        assert!(windows.len() > 1);
        for w in &windows {
            assert!(w.end <= 40 + 5);
            assert_eq!(w.len(), 5);
        }
        // No slack: only the preferred window.
        let tight = direct_task(0, 1, 10, 15);
        assert_eq!(
            router.candidate_windows(&tight, false),
            vec![Interval::new(10, 15)]
        );
    }

    #[test]
    fn candidate_windows_jump_past_known_congestion() {
        // The port edges of both devices are reserved for [0, 23); the
        // calendar-driven stage must propose 23 as a candidate start even
        // though the arithmetic grid (stepping by the window length from 0)
        // never lands on it.
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        for node in [
            placement.node_of(DeviceId(0)),
            placement.node_of(DeviceId(1)),
        ] {
            for &edge in grid.incident_edges(node) {
                router.reservations.reserve_edge(edge, Interval::new(0, 23));
            }
        }
        let mut task = direct_task(0, 1, 0, 5);
        task.deadline = 40;
        let windows = router.candidate_windows(&task, false);
        assert!(
            windows.contains(&Interval::new(23, 28)),
            "calendar-driven candidate missing from {windows:?}"
        );
        let routed = router.route(&task).unwrap();
        assert!(routed.path.window.start >= 23);
    }

    #[test]
    fn stage_counters_track_the_pipeline() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        assert_eq!(router.stats(), RouterStats::default());
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let after_direct = router.stats();
        assert_eq!(after_direct.tasks_routed, 1);
        assert!(after_direct.windows_tried >= 1);
        assert!(after_direct.path_searches >= 1);
        assert!(after_direct.nodes_expanded > 0);
        assert_eq!(after_direct.segments_priced, 0);
        router.route(&store_task(1, 0, 1)).unwrap();
        let after_store = router.stats();
        assert!(after_store.segments_priced > 0);
        assert_eq!(after_store.tasks_routed, 2);
        assert_eq!(after_store.postponed_tasks, 0);
    }

    #[test]
    fn device_adjacent_storage_fallback_on_a_minimal_grid() {
        // 1x3 line with devices at both ends: every segment touches a
        // device, so storage is only possible with the fallback enabled.
        let grid = ConnectionGrid::new(1, 3);
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(2)]);

        let strict = RoutingOptions {
            allow_device_adjacent_storage: false,
            ..RoutingOptions::default()
        };
        let mut router = Router::new(&grid, &placement, strict);
        let err = router.route(&store_task(0, 0, 1)).unwrap_err();
        assert!(matches!(err, ArchError::NoStorageSegment { .. }));

        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(0, 0, 1)).unwrap();
        let cache = stored.cache_edge.expect("fallback segment chosen");
        let (x, y) = grid.endpoints(cache);
        assert!(
            placement.device_at(x).is_some() || placement.device_at(y).is_some(),
            "the minimal grid only offers device-adjacent segments"
        );
        // The sample can still be fetched out of the fallback segment.
        let fetched = router.route(&fetch_task(0, 0, 1)).unwrap();
        assert_eq!(fetched.cache_edge, Some(cache));
    }

    #[test]
    fn postponement_counter_reports_deadline_overruns() {
        // Same single-edge grid as the graceful-failure test, but with
        // postponement allowed the second transport lands after its deadline
        // and is counted.
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let options = RoutingOptions {
            max_deadline_overrun: 20,
            ..RoutingOptions::default()
        };
        let mut router = Router::new(&grid, &placement, options);
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let second = router.route(&direct_task(1, 0, 0, 5)).unwrap();
        assert!(second.path.window.start >= 5);
        assert_eq!(router.stats().postponed_tasks, 1);
    }
}
