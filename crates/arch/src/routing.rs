//! Time-multiplexed routing of transportation paths on the connection grid.
//!
//! Every transportation task is routed as a path of channel segments
//! connected by switches. Paths whose occupation windows overlap in time may
//! not share an edge or an intersection node (the paper's conflict rule), a
//! segment caching a sample is blocked for its storage interval (but its end
//! nodes remain passable), and device nodes can only appear as the endpoints
//! of a path. Routing minimizes the number of *distinct* edges ever used by
//! pricing not-yet-used edges higher than already-used ones, which directly
//! drives down the `n_e`/`n_v` columns of Table 2.
//!
//! Tasks carry slack (`earliest_start ..= deadline`); when the preferred
//! window is congested — for example several samples leaving the same device
//! at once, which cannot all use its handful of ports simultaneously — the
//! router staggers the transport inside its slack instead of failing.

use std::collections::{BinaryHeap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::connection_graph::RoutedTransport;
use crate::error::ArchError;
use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::placement::Placement;
use crate::reservation::{Interval, ReservationTable};
use crate::transport::{TransportKind, TransportTask};

/// Options controlling the router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingOptions {
    /// Cost of traversing an edge that some earlier path already used.
    pub used_edge_cost: u64,
    /// Cost of traversing an edge that no path has used yet (pricing new
    /// edges higher minimizes the number of kept segments).
    pub new_edge_cost: u64,
    /// Whether cache segments may touch a device node when no pure
    /// switch-to-switch segment is free (needed on very small grids).
    pub allow_device_adjacent_storage: bool,
    /// Maximum number of alternative start times tried inside a task's slack
    /// when its preferred window is congested.
    pub max_window_candidates: usize,
    /// Last-resort postponement: how far beyond its deadline a transport may
    /// be shifted when no conflict-free window exists inside its slack.
    ///
    /// A schedule can demand more simultaneous movements at one device than
    /// the device has ports (e.g. three departing samples plus two arriving
    /// inputs around the same instant); a real chip controller serializes
    /// them. The resulting postponement is reported by
    /// [`Architecture::transport_postponement`](crate::Architecture::transport_postponement)
    /// so that the execution-time impact stays visible.
    pub max_deadline_overrun: biochip_assay::Seconds,
}

impl Default for RoutingOptions {
    fn default() -> Self {
        RoutingOptions {
            used_edge_cost: 1,
            new_edge_cost: 4,
            allow_device_adjacent_storage: true,
            max_window_candidates: 16,
            max_deadline_overrun: 0,
        }
    }
}

/// One routed transportation path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedPath {
    /// Nodes visited, in order (first = source, last = destination).
    pub nodes: Vec<NodeId>,
    /// Edges traversed, in order (`nodes.len() - 1` entries).
    pub edges: Vec<GridEdgeId>,
    /// Time window during which the path is occupied.
    pub window: Interval,
}

/// The incremental routing engine.
///
/// Tasks must be routed in the order returned by
/// [`extract_transport_tasks`](crate::extract_transport_tasks) (ascending
/// window start); each successful route immediately reserves its resources.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    grid: &'a ConnectionGrid,
    placement: &'a Placement,
    options: RoutingOptions,
    reservations: ReservationTable,
    used_edges: HashSet<GridEdgeId>,
    /// Cache segment and exit node chosen for each stored sample.
    cache_of_sample: HashMap<usize, (GridEdgeId, NodeId)>,
}

impl<'a> Router<'a> {
    /// Creates a router over the given grid and placement.
    #[must_use]
    pub fn new(
        grid: &'a ConnectionGrid,
        placement: &'a Placement,
        options: RoutingOptions,
    ) -> Self {
        Router {
            grid,
            placement,
            options,
            reservations: ReservationTable::new(grid),
            used_edges: HashSet::new(),
            cache_of_sample: HashMap::new(),
        }
    }

    /// Edges used by at least one routed path so far.
    #[must_use]
    pub fn used_edges(&self) -> &HashSet<GridEdgeId> {
        &self.used_edges
    }

    /// The reservation table built up so far.
    #[must_use]
    pub fn reservations(&self) -> &ReservationTable {
        &self.reservations
    }

    /// Routes one transportation task, reserving its resources.
    ///
    /// The returned [`RoutedTransport`] carries the task with its *actual*
    /// window (which may have been shifted inside the task's slack) and, for
    /// store tasks, the chosen cache segment and updated storage interval.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::RoutingFailed`] when no conflict-free path exists
    /// inside the task's slack and [`ArchError::NoStorageSegment`] when no
    /// channel segment can cache the sample for its storage interval.
    pub fn route(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        match task.kind {
            TransportKind::Direct => self.route_direct(task),
            TransportKind::Store => self.route_store(task),
            TransportKind::Fetch => self.route_fetch(task),
        }
    }

    /// Candidate occupation windows inside the task's slack, preferred window
    /// first, followed by postponed windows up to the configured deadline
    /// overrun (last resort).
    fn candidate_windows(&self, task: &TransportTask) -> Vec<Interval> {
        let len = task.window_len().max(1);
        let mut starts = vec![task.window_start];
        if task.deadline >= task.earliest_start + len {
            let latest = task.deadline - len;
            starts.push(task.earliest_start);
            starts.push(latest);
            let mut s = task.earliest_start;
            while s <= latest && starts.len() < self.options.max_window_candidates {
                starts.push(s);
                s += len;
            }
        }
        if self.options.max_deadline_overrun > 0 {
            let base = task.deadline.saturating_sub(len).max(task.earliest_start);
            let mut overrun = len;
            while overrun <= self.options.max_deadline_overrun
                && starts.len() < 2 * self.options.max_window_candidates
            {
                starts.push(base + overrun);
                overrun += len;
            }
        }
        let mut seen = HashSet::new();
        starts
            .into_iter()
            .filter(|s| seen.insert(*s))
            .take(2 * self.options.max_window_candidates.max(1))
            .map(|s| Interval::new(s, s + len))
            .collect()
    }

    fn route_direct(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        let from = self.placement.node_of(task.from_device);
        let to = self.placement.node_of(task.to_device);
        for window in self.candidate_windows(task) {
            if let Some(path) = self.shortest_path(from, to, window, None) {
                self.commit(&path, window);
                let mut routed_task = task.clone();
                routed_task.window_start = window.start;
                routed_task.window_end = window.end;
                return Ok(RoutedTransport {
                    task: routed_task,
                    path,
                    cache_edge: None,
                });
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    /// Routes a store task: producer device → a free channel segment that
    /// will cache the sample.
    fn route_store(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        let from = self.placement.node_of(task.from_device);
        let to = self.placement.node_of(task.to_device);
        let stored_until = task
            .storage_interval
            .map(|(_, until)| until)
            .unwrap_or(task.deadline);

        for store_window in self.candidate_windows(task) {
            if store_window.end > stored_until {
                // The sample must be resting in its segment before the fetch
                // departs; postponing the store past that point is useless.
                continue;
            }
            let storage = Interval::new(store_window.end.min(stored_until), stored_until);
            let fetch_window = Interval::new(stored_until, stored_until + task.window_len());

            // Candidate cache segments: free for the whole store/storage/
            // fetch horizon, preferably pure switch-to-switch segments, close
            // to both endpoints, preferring already-used edges.
            let mut candidates: Vec<(u64, GridEdgeId)> = Vec::new();
            for edge in self.grid.edges() {
                let (x, y) = self.grid.endpoints(edge);
                let touches_device =
                    self.placement.device_at(x).is_some() || self.placement.device_at(y).is_some();
                if touches_device && !self.options.allow_device_adjacent_storage {
                    continue;
                }
                if !(self.reservations.edge_free(edge, store_window)
                    && self.reservations.edge_free(edge, storage)
                    && self.reservations.edge_free(edge, fetch_window))
                {
                    continue;
                }
                let edge_price = if self.used_edges.contains(&edge) {
                    self.options.used_edge_cost
                } else {
                    self.options.new_edge_cost
                };
                let distance = (self.grid.distance(from, x).min(self.grid.distance(from, y))
                    + self.grid.distance(to, x).min(self.grid.distance(to, y)))
                    as u64;
                let device_penalty = if touches_device { 100 } else { 0 };
                candidates.push((distance * 4 + edge_price + device_penalty, edge));
            }
            candidates.sort_unstable();

            for (_, edge) in candidates {
                let (x, y) = self.grid.endpoints(edge);
                // Try entering the segment from either endpoint.
                for (entry, exit) in [(x, y), (y, x)] {
                    // The sample slides into the segment towards `exit`, so
                    // the far end must be a free switch node; the entry may
                    // be a device node only if it is the producer itself.
                    if self.placement.device_at(exit).is_some()
                        || !self.reservations.node_free(exit, store_window)
                    {
                        continue;
                    }
                    if self.placement.device_at(entry).is_some() && entry != from {
                        continue;
                    }
                    let Some(mut path) = self.shortest_path(from, entry, store_window, Some(edge))
                    else {
                        continue;
                    };
                    path.nodes.push(exit);
                    path.edges.push(edge);
                    self.commit(&path, store_window);
                    // Block the segment from the moment the sample arrives
                    // until the end of its planned fetch window, so no later
                    // task can claim the segment for the very instant the
                    // sample has to leave it. The segment's end nodes stay
                    // passable for other paths (the paper's exception).
                    let planned_fetch_end = stored_until + task.window_len().max(1);
                    self.reservations
                        .reserve_edge(edge, Interval::new(storage.start, planned_fetch_end));
                    self.cache_of_sample.insert(task.sample, (edge, exit));
                    let mut routed_task = task.clone();
                    routed_task.window_start = store_window.start;
                    routed_task.window_end = store_window.end;
                    routed_task.storage_interval = Some((storage.start, storage.end));
                    return Ok(RoutedTransport {
                        task: routed_task,
                        path,
                        cache_edge: Some(edge),
                    });
                }
            }
        }
        Err(ArchError::NoStorageSegment {
            task: task.describe(),
        })
    }

    /// Routes a fetch task: the sample's cache segment → consumer device.
    fn route_fetch(&mut self, task: &TransportTask) -> Result<RoutedTransport, ArchError> {
        let to = self.placement.node_of(task.to_device);
        let (cache_edge, exit) =
            self.cache_of_sample
                .get(&task.sample)
                .copied()
                .ok_or_else(|| ArchError::Inconsistent {
                    reason: format!("fetch of sample {} before it was stored", task.sample),
                })?;
        let (x, y) = self.grid.endpoints(cache_edge);
        for window in self.candidate_windows(task) {
            // The cache segment is already reserved for the sample through
            // the end of its planned fetch window. When the fetch is
            // postponed beyond that plan, the segment must additionally stay
            // free (the sample keeps resting in it) until the actual
            // departure completes.
            let beyond_plan = Interval::new(task.window_end.min(window.end), window.end);
            if !self.reservations.edge_free(cache_edge, beyond_plan) {
                continue;
            }
            // Leave through the recorded exit node first, falling back to
            // the other end of the segment.
            for leave in [exit, if exit == x { y } else { x }] {
                let Some(path) = self.shortest_path(leave, to, window, Some(cache_edge)) else {
                    continue;
                };
                // The sample first traverses its cache segment, then the path.
                let entry = self.grid.other_endpoint(cache_edge, leave);
                let mut nodes = vec![entry];
                nodes.extend(path.nodes.iter().copied());
                let mut edges = vec![cache_edge];
                edges.extend(path.edges.iter().copied());
                let full = RoutedPath {
                    nodes,
                    edges,
                    window,
                };
                self.commit(&full, window);
                // Keep the segment blocked while the sample rests in it past
                // the originally planned fetch time.
                self.reservations.reserve_edge(cache_edge, beyond_plan);
                self.cache_of_sample.remove(&task.sample);
                let mut routed_task = task.clone();
                routed_task.window_start = window.start;
                routed_task.window_end = window.end;
                return Ok(RoutedTransport {
                    task: routed_task,
                    path: full,
                    cache_edge: Some(cache_edge),
                });
            }
        }
        Err(ArchError::RoutingFailed {
            from: task.from_device,
            to: task.to_device,
            task: task.describe(),
        })
    }

    /// Reserves every switch node and edge of a path for the window and
    /// records the edges as used.
    ///
    /// Device nodes are *not* reserved: several samples may arrive at or
    /// leave the same device in overlapping windows (for example the two
    /// inputs of a mixing operation), entering through different channels.
    /// Channel-level conflicts are still excluded because the edges and
    /// switch nodes of concurrent paths may not overlap.
    fn commit(&mut self, path: &RoutedPath, window: Interval) {
        for &node in &path.nodes {
            if self.placement.device_at(node).is_some() {
                continue;
            }
            self.reservations.reserve_node(node, window);
        }
        for &edge in &path.edges {
            self.reservations.reserve_edge(edge, window);
            self.used_edges.insert(edge);
        }
    }

    /// Dijkstra shortest path from `from` to `to` during `window`, avoiding
    /// reserved edges/nodes and foreign device nodes. `skip_edge` is excluded
    /// from the search (used to keep a cache segment for the sample itself).
    fn shortest_path(
        &self,
        from: NodeId,
        to: NodeId,
        window: Interval,
        skip_edge: Option<GridEdgeId>,
    ) -> Option<RoutedPath> {
        if from == to {
            return Some(RoutedPath {
                nodes: vec![from],
                edges: Vec::new(),
                window,
            });
        }
        let endpoint_blocked = |node: NodeId| {
            self.placement.device_at(node).is_none() && !self.reservations.node_free(node, window)
        };
        if endpoint_blocked(from) || endpoint_blocked(to) {
            return None;
        }

        #[derive(PartialEq, Eq)]
        struct Entry {
            cost: u64,
            node: NodeId,
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost
                    .cmp(&self.cost)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut prev: HashMap<NodeId, (NodeId, GridEdgeId)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(Entry {
            cost: 0,
            node: from,
        });

        while let Some(Entry { cost, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost > dist.get(&node).copied().unwrap_or(u64::MAX) {
                continue;
            }
            for &edge in self.grid.incident_edges(node) {
                if Some(edge) == skip_edge {
                    continue;
                }
                let next = self.grid.other_endpoint(edge, node);
                // Device nodes may only be path endpoints.
                if next != to && self.placement.device_at(next).is_some() {
                    continue;
                }
                if !self.reservations.edge_free(edge, window)
                    || (self.placement.device_at(next).is_none()
                        && !self.reservations.node_free(next, window))
                {
                    continue;
                }
                let edge_cost = if self.used_edges.contains(&edge) {
                    self.options.used_edge_cost
                } else {
                    self.options.new_edge_cost
                };
                let next_cost = cost + edge_cost;
                if next_cost < dist.get(&next).copied().unwrap_or(u64::MAX) {
                    dist.insert(next, next_cost);
                    prev.insert(next, (node, edge));
                    heap.push(Entry {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }

        if !prev.contains_key(&to) {
            return None;
        }
        let mut nodes = vec![to];
        let mut edges = Vec::new();
        let mut cursor = to;
        while cursor != from {
            let (parent, edge) = prev[&cursor];
            nodes.push(parent);
            edges.push(edge);
            cursor = parent;
        }
        nodes.reverse();
        edges.reverse();
        Some(RoutedPath {
            nodes,
            edges,
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_devices, PlacementOptions};
    use biochip_assay::OpId;
    use biochip_schedule::DeviceId;

    fn make_placement(grid: &ConnectionGrid, devices: usize) -> Placement {
        place_devices(grid, devices, &[], &PlacementOptions::default()).unwrap()
    }

    fn direct_task(from: usize, to: usize, start: u64, end: u64) -> TransportTask {
        TransportTask {
            sample: 99,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Direct,
            window_start: start,
            window_end: end,
            storage_interval: None,
            earliest_start: start,
            deadline: end,
        }
    }

    fn store_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Store,
            window_start: 10,
            window_end: 15,
            storage_interval: Some((15, 55)),
            earliest_start: 10,
            deadline: 30,
        }
    }

    fn fetch_task(sample: usize, from: usize, to: usize) -> TransportTask {
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Fetch,
            window_start: 55,
            window_end: 60,
            storage_interval: None,
            earliest_start: 55,
            deadline: 60,
        }
    }

    #[test]
    fn direct_path_connects_the_two_devices() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let routed = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        assert!(routed.cache_edge.is_none());
        assert_eq!(
            routed.path.nodes.first().copied(),
            Some(placement.node_of(DeviceId(0)))
        );
        assert_eq!(
            routed.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
        assert_eq!(routed.path.edges.len(), routed.path.nodes.len() - 1);
        assert!(!router.used_edges().is_empty());
    }

    #[test]
    fn overlapping_paths_do_not_share_resources() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 3);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(2, 1, 0, 5)).unwrap();
        // Both may end at the same destination device, but when their actual
        // windows overlap they share no edge and no switch node.
        if r1.path.window.overlaps(&r2.path.window) {
            for e in &r1.path.edges {
                assert!(
                    !r2.path.edges.contains(e),
                    "edge {e} shared by concurrent paths"
                );
            }
            let interior1: Vec<NodeId> = r1.path.nodes[1..r1.path.nodes.len() - 1].to_vec();
            for n in &r2.path.nodes[1..r2.path.nodes.len() - 1] {
                assert!(
                    !interior1.contains(n),
                    "switch {n} shared by concurrent paths"
                );
            }
        }
    }

    #[test]
    fn sequential_paths_may_reuse_edges() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let r1 = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let r2 = router.route(&direct_task(0, 1, 10, 15)).unwrap();
        // With used-edge pricing the second path reuses the first one's edges.
        assert_eq!(r1.path.edges, r2.path.edges);
        assert_eq!(router.used_edges().len(), r1.path.edges.len());
    }

    #[test]
    fn congested_window_is_staggered_inside_the_slack() {
        // Two samples leave device 0 towards device 1 in the same preferred
        // window; the second transport has slack until t = 20 and is shifted
        // instead of failing.
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let first = router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let mut second = direct_task(0, 1, 0, 5);
        second.deadline = 20;
        let second = router.route(&second).unwrap();
        if second.path.edges == first.path.edges {
            assert!(
                !second.path.window.overlaps(&first.path.window),
                "same segments may only be reused in a later window"
            );
        }
    }

    #[test]
    fn store_then_fetch_uses_the_same_cache_segment() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(3, 0, 1)).unwrap();
        let cache = stored.cache_edge.expect("store chooses a cache segment");
        assert_eq!(stored.path.edges.last().copied(), Some(cache));
        // The segment is blocked during the storage interval.
        let (from, until) = stored.task.storage_interval.unwrap();
        assert!(until > from);
        assert!(!router
            .reservations()
            .edge_free(cache, Interval::new(from + 1, from + 2)));
        let fetched = router.route(&fetch_task(3, 0, 1)).unwrap();
        assert_eq!(fetched.cache_edge, Some(cache));
        assert_eq!(fetched.path.edges.first().copied(), Some(cache));
        assert_eq!(
            fetched.path.nodes.last().copied(),
            Some(placement.node_of(DeviceId(1)))
        );
    }

    #[test]
    fn fetch_before_store_is_an_error() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&fetch_task(7, 0, 1)).unwrap_err();
        assert!(matches!(err, ArchError::Inconsistent { .. }));
    }

    #[test]
    fn stored_segment_is_not_used_by_other_paths() {
        let grid = ConnectionGrid::square(4);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let stored = router.route(&store_task(0, 0, 1)).unwrap();
        let cache = stored.cache_edge.unwrap();
        // A direct transport during the storage interval must avoid the
        // cached segment.
        let routed = router.route(&direct_task(0, 1, 20, 25)).unwrap();
        assert!(!routed.path.edges.contains(&cache));
    }

    #[test]
    fn routing_on_a_congested_tiny_grid_fails_gracefully() {
        // 1x2 grid: a single edge between two devices; two concurrent
        // transports with zero slack cannot both be routed.
        let grid = ConnectionGrid::new(1, 2);
        let placement = make_placement(&grid, 2);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        router.route(&direct_task(0, 1, 0, 5)).unwrap();
        let err = router.route(&direct_task(1, 0, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
    }

    #[test]
    fn paths_do_not_cross_foreign_devices() {
        let grid = ConnectionGrid::new(1, 5);
        // Three devices on a line: 0 at one end, 1 at the other, 2 between
        // them. Any path 0 -> 1 would have to cross device 2: impossible.
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(4), NodeId(2)]);
        let mut router = Router::new(&grid, &placement, RoutingOptions::default());
        let err = router.route(&direct_task(0, 1, 0, 5)).unwrap_err();
        assert!(matches!(err, ArchError::RoutingFailed { .. }));
        // 0 -> 2 (the middle device) is fine: it is the path's endpoint.
        router.route(&direct_task(0, 2, 10, 15)).unwrap();
    }

    #[test]
    fn candidate_windows_start_with_the_preferred_one() {
        let grid = ConnectionGrid::square(3);
        let placement = make_placement(&grid, 2);
        let router = Router::new(&grid, &placement, RoutingOptions::default());
        let mut task = direct_task(0, 1, 10, 15);
        task.earliest_start = 0;
        task.deadline = 40;
        let windows = router.candidate_windows(&task);
        assert_eq!(windows[0], Interval::new(10, 15));
        assert!(windows.len() > 1);
        for w in &windows {
            assert!(w.end <= 40 + 5);
            assert_eq!(w.len(), 5);
        }
        // No slack: only the preferred window.
        let tight = direct_task(0, 1, 10, 15);
        assert_eq!(
            router.candidate_windows(&tight),
            vec![Interval::new(10, 15)]
        );
    }
}
