//! Distance-indexed lookup of cache-segment candidates for store tasks.
//!
//! The original router scanned **every** grid edge for every store task to
//! find a channel segment that can cache a sample, sorting the full candidate
//! list per task. At 10k-op scale that is the dominant cost of the store
//! stage. This index precomputes, per ordered `(producer device, consumer
//! device)` pair, the grid edges sorted by their *static* score — the
//! traffic-distance term plus the placement-derived penalties, everything
//! that does not change while routing — so a store task walks segments from
//! best to worst and stops as soon as one is free.
//!
//! On storage-sized grids (side ≥ [`SCALE_GRID_SIDE`] = 9) the static score
//! also prices segments **away from the transit fabric**: port switches and
//! the device cluster's interior corridors carry every inter-device path,
//! and samples parked there for thousands of seconds seal whole pockets of
//! the lattice. Small paper-scale grids keep the original
//! distance-plus-device-adjacency ordering bit for bit. (The wide 4-spacing
//! device lattice in `placement` uses its own, higher threshold of 12 — a
//! side of 9–11 routes in scale mode but still places devices at the
//! paper's 2-spacing, because the wide lattice needs the extra room.)
//!
//! The *dynamic* part of a segment's price (whether the edge is already part
//! of the chip, which the router prefers) is folded back in lazily by
//! [`OrderedCandidates`]: it buffers statically-cheap segments in a small
//! heap and yields them in exact `(static + dynamic, edge id)` order, which
//! reproduces the full-scan selection order segment for segment.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::rc::Rc;

use biochip_schedule::DeviceId;

use crate::grid::{ConnectionGrid, GridEdgeId, NodeId};
use crate::placement::Placement;

/// Extra static score of a segment that touches a device node (such segments
/// are last-resort cache locations on very small grids).
pub(crate) const DEVICE_ADJACENT_PENALTY: u64 = 100;

/// Extra static score of a segment that touches a device's *port switch*
/// (a node adjacent to a device). Caching there clogs the fabric every
/// transport of that device has to pass through, so such segments are only
/// chosen when the grid offers nothing further out. Storage-sized grids
/// only.
pub(crate) const PORT_ADJACENT_PENALTY: u64 = 200;

/// Extra static score of a segment inside the device cluster's bounding
/// box. The corridors between devices are the transit fabric every
/// inter-device path flows through; samples parked there seal whole pockets
/// of the lattice. Pricing the interior out pushes storage to the open grid
/// around the cluster, where the egress guards can actually keep escape
/// routes open. Storage-sized grids only.
pub(crate) const CLUSTER_INTERIOR_PENALTY: u64 = 400;

/// Extra static score of a segment outside the storage **comb**: on scale
/// grids caching is steered onto vertical segments in even columns only.
/// A cached segment blocks its edge but not its end nodes, so with every
/// horizontal segment (and every odd column) permanently cache-free the
/// transit fabric stays connected *by construction* — no arrangement of
/// cached samples can wall in a device or another cached sample.
pub(crate) const OFF_COMB_PENALTY: u64 = 800;

/// Grid side length from which the transit-fabric penalties apply (matches
/// the storage-sized grids the scale assays synthesize onto; the paper's
/// benchmarks fit on 4×4–8×8 grids and keep the original scoring).
pub(crate) const SCALE_GRID_SIDE: usize = 9;

/// Whether an edge belongs to the storage comb of a scale grid: vertical
/// (row-adjacent endpoints) and in an even column.
pub(crate) fn on_storage_comb(grid: &ConnectionGrid, edge: GridEdgeId) -> bool {
    let (x, y) = grid.endpoints(edge);
    let (cx, cy) = (grid.coord(x), grid.coord(y));
    cx.col == cy.col && cx.col.is_multiple_of(2)
}

/// Candidate segments of one `(producer, consumer)` device pair.
#[derive(Debug)]
pub(crate) struct PairIndex {
    /// Candidates sorted by `(static score, edge id)`.
    pub(crate) sorted: Rc<[(u64, GridEdgeId)]>,
    /// Static score per edge index; `None` for excluded segments
    /// (device-adjacent when the fallback is disabled).
    pub(crate) score_of: Vec<Option<u64>>,
}

/// Per-device-pair cache-segment candidate lists, built lazily.
#[derive(Debug, Default)]
pub(crate) struct SegmentIndex {
    lists: HashMap<(usize, usize), Rc<PairIndex>>,
}

impl SegmentIndex {
    /// The candidate segments for a producer → consumer pair. Built on first
    /// use, shared afterwards.
    pub(crate) fn pair_index(
        &mut self,
        grid: &ConnectionGrid,
        placement: &Placement,
        from: DeviceId,
        to: DeviceId,
        allow_device_adjacent: bool,
    ) -> Rc<PairIndex> {
        let key = (from.index(), to.index());
        if let Some(list) = self.lists.get(&key) {
            return Rc::clone(list);
        }
        let from_node = placement.node_of(from);
        let to_node = placement.node_of(to);
        let mut is_device = vec![false; grid.num_nodes()];
        for &node in placement.device_nodes() {
            is_device[node.index()] = true;
        }
        let touches_port = |node: NodeId| {
            grid.incident_edges(node)
                .iter()
                .any(|&e| is_device[grid.other_endpoint(e, node).index()])
        };
        let scale_grid = grid.rows().max(grid.cols()) >= SCALE_GRID_SIDE;
        let cluster = cluster_box(grid, placement);
        let in_cluster = |node: NodeId| {
            let c = grid.coord(node);
            c.row >= cluster.0 && c.row <= cluster.1 && c.col >= cluster.2 && c.col <= cluster.3
        };
        let mut sorted: Vec<(u64, GridEdgeId)> = Vec::new();
        let mut score_of: Vec<Option<u64>> = vec![None; grid.num_edges()];
        for edge in grid.edges() {
            let (x, y) = grid.endpoints(edge);
            let touches_device = is_device[x.index()] || is_device[y.index()];
            if touches_device && !allow_device_adjacent {
                continue;
            }
            let distance = (grid.distance(from_node, x).min(grid.distance(from_node, y))
                + grid.distance(to_node, x).min(grid.distance(to_node, y)))
                as u64;
            let mut penalty = if touches_device {
                DEVICE_ADJACENT_PENALTY
            } else {
                0
            };
            if scale_grid {
                if touches_port(x) || touches_port(y) {
                    penalty += PORT_ADJACENT_PENALTY;
                }
                if in_cluster(x) || in_cluster(y) {
                    penalty += CLUSTER_INTERIOR_PENALTY;
                }
                if !on_storage_comb(grid, edge) {
                    penalty += OFF_COMB_PENALTY;
                }
            }
            let score = distance * 4 + penalty;
            score_of[edge.index()] = Some(score);
            sorted.push((score, edge));
        }
        sorted.sort_unstable();
        let index = Rc::new(PairIndex {
            sorted: sorted.into(),
            score_of,
        });
        self.lists.insert(key, Rc::clone(&index));
        index
    }
}

/// Bounding box `(min_row, max_row, min_col, max_col)` of the placed
/// devices.
fn cluster_box(grid: &ConnectionGrid, placement: &Placement) -> (usize, usize, usize, usize) {
    let mut min_r = usize::MAX;
    let mut max_r = 0;
    let mut min_c = usize::MAX;
    let mut max_c = 0;
    for &node in placement.device_nodes() {
        let c = grid.coord(node);
        min_r = min_r.min(c.row);
        max_r = max_r.max(c.row);
        min_c = min_c.min(c.col);
        max_c = max_c.max(c.col);
    }
    if min_r == usize::MAX {
        // No devices: an empty box that contains nothing.
        return (1, 0, 1, 0);
    }
    (min_r, max_r, min_c, max_c)
}

/// Yields available segments in exact `(static score + dynamic price, edge)`
/// order without pricing segments that are never reached.
///
/// Because the dynamic price is bounded below by `min_price`, a buffered
/// candidate is globally minimal as soon as the next unpriced static score
/// plus `min_price` exceeds its total — the classic lazy merge used by PnR
/// routers over preprocessed site lists.
pub(crate) struct OrderedCandidates {
    list: Rc<[(u64, GridEdgeId)]>,
    next: usize,
    heap: BinaryHeap<Reverse<(u64, GridEdgeId)>>,
    min_price: u64,
}

impl OrderedCandidates {
    /// Creates an ordered iteration over a statically-sorted candidate
    /// list. `min_price` is the smallest possible dynamic price (the
    /// cheaper of the used/new edge costs).
    pub(crate) fn new(list: Rc<[(u64, GridEdgeId)]>, min_price: u64) -> Self {
        OrderedCandidates {
            list,
            next: 0,
            heap: BinaryHeap::new(),
            min_price,
        }
    }

    /// Next available segment in total-score order. `price` returns the
    /// dynamic price of an available segment and `None` for segments that are
    /// currently unavailable (reserved during the required windows).
    pub(crate) fn next_available(
        &mut self,
        mut price: impl FnMut(GridEdgeId) -> Option<u64>,
    ) -> Option<GridEdgeId> {
        loop {
            if let Some(&Reverse((top_total, top_edge))) = self.heap.peek() {
                let more_to_price = self
                    .list
                    .get(self.next)
                    .is_some_and(|&(s, _)| s + self.min_price <= top_total);
                if !more_to_price {
                    self.heap.pop();
                    return Some(top_edge);
                }
            } else if self.next >= self.list.len() {
                return None;
            }
            let (static_score, edge) = self.list[self.next];
            self.next += 1;
            if let Some(dynamic) = price(edge) {
                self.heap.push(Reverse((static_score + dynamic, edge)));
            }
        }
    }

    /// Number of segments priced so far (for the stage counters).
    pub(crate) fn priced(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(list: Vec<(u64, GridEdgeId)>) -> Rc<[(u64, GridEdgeId)]> {
        let mut sorted = list;
        sorted.sort_unstable();
        sorted.into()
    }

    #[test]
    fn ordered_candidates_respect_total_score_and_tie_break() {
        // Static scores 0, 0, 4; dynamic price 4 for e0 and 1 for the rest.
        let list = index_of(vec![
            (0, GridEdgeId(0)),
            (0, GridEdgeId(1)),
            (4, GridEdgeId(2)),
        ]);
        let price = |e: GridEdgeId| Some(if e == GridEdgeId(0) { 4 } else { 1 });
        let mut iter = OrderedCandidates::new(list, 1);
        // Totals: e0 = 4, e1 = 1, e2 = 5 → order e1, e0, e2.
        assert_eq!(iter.next_available(price), Some(GridEdgeId(1)));
        assert_eq!(iter.next_available(price), Some(GridEdgeId(0)));
        assert_eq!(iter.next_available(price), Some(GridEdgeId(2)));
        assert_eq!(iter.next_available(price), None);
    }

    #[test]
    fn equal_totals_yield_the_smaller_edge_id_first() {
        let list = index_of(vec![(3, GridEdgeId(7)), (4, GridEdgeId(2))]);
        // Totals: e7 = 3 + 2 = 5, e2 = 4 + 1 = 5 → tie broken on edge id.
        let price = |e: GridEdgeId| Some(if e == GridEdgeId(7) { 2 } else { 1 });
        let mut iter = OrderedCandidates::new(list, 1);
        assert_eq!(iter.next_available(price), Some(GridEdgeId(2)));
        assert_eq!(iter.next_available(price), Some(GridEdgeId(7)));
    }

    #[test]
    fn unavailable_segments_are_skipped_without_breaking_order() {
        let list = index_of(vec![
            (0, GridEdgeId(0)),
            (4, GridEdgeId(1)),
            (8, GridEdgeId(2)),
        ]);
        let price = |e: GridEdgeId| (e != GridEdgeId(0)).then_some(1);
        let mut iter = OrderedCandidates::new(list, 1);
        assert_eq!(iter.next_available(price), Some(GridEdgeId(1)));
        assert_eq!(iter.next_available(price), Some(GridEdgeId(2)));
        assert_eq!(iter.next_available(price), None);
        assert_eq!(iter.priced(), 3);
    }

    #[test]
    fn lazy_pricing_stops_early() {
        let mut list = vec![(0, GridEdgeId(0))];
        for i in 1..100u64 {
            list.push((i * 10, GridEdgeId(i as usize)));
        }
        let mut iter = OrderedCandidates::new(index_of(list), 1);
        assert_eq!(iter.next_available(|_| Some(1)), Some(GridEdgeId(0)));
        // Only the head and the one lookahead entry were priced.
        assert!(iter.priced() <= 2, "priced {}", iter.priced());
    }

    #[test]
    fn small_grids_keep_the_paper_scoring() {
        // On a 6×6 grid the port/cluster penalties must not apply: scores
        // are distance·4 plus only the device-adjacency penalty.
        let grid = ConnectionGrid::square(6);
        let placement = Placement::from_nodes(vec![NodeId(0), NodeId(14)]);
        let mut index = SegmentIndex::default();
        let pair = index.pair_index(&grid, &placement, DeviceId(0), DeviceId(1), true);
        for &(score, edge) in pair.sorted.iter() {
            let (x, y) = grid.endpoints(edge);
            let touches = placement.device_at(x).is_some() || placement.device_at(y).is_some();
            let distance = (grid.distance(NodeId(0), x).min(grid.distance(NodeId(0), y))
                + grid
                    .distance(NodeId(14), x)
                    .min(grid.distance(NodeId(14), y))) as u64;
            let expected = distance * 4 + if touches { DEVICE_ADJACENT_PENALTY } else { 0 };
            assert_eq!(score, expected, "edge {edge}");
        }
    }

    #[test]
    fn scale_grids_price_the_transit_fabric_out() {
        let grid = ConnectionGrid::square(13);
        let placement = Placement::from_nodes(vec![NodeId(4 * 13 + 4), NodeId(8 * 13 + 8)]);
        let mut index = SegmentIndex::default();
        let pair = index.pair_index(&grid, &placement, DeviceId(0), DeviceId(1), true);
        // An edge far outside the cluster box is cheaper than the same-
        // distance edge inside it.
        let outside = grid
            .edge_between(NodeId(0), NodeId(1))
            .expect("corner edge exists");
        let inside = grid
            .edge_between(NodeId(6 * 13 + 6), NodeId(6 * 13 + 7))
            .expect("center edge exists");
        let score_outside = pair.score_of[outside.index()].unwrap();
        let score_inside = pair.score_of[inside.index()].unwrap();
        assert!(score_inside >= CLUSTER_INTERIOR_PENALTY);
        // The centre edge is much closer, yet the cluster penalty dominates.
        assert!(
            score_inside > score_outside,
            "inside {score_inside} vs outside {score_outside}"
        );
    }
}
