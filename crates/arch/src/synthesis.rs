//! Top-level architectural synthesis: schedule → placed, routed chip.

use serde::{Deserialize, Serialize};

use biochip_schedule::{Schedule, ScheduleProblem};
use biochip_telemetry as telemetry;

use crate::connection_graph::{Architecture, ConnectionGraph};
use crate::error::ArchError;
use crate::grid::ConnectionGrid;
use crate::parallel::Parallelism;
use crate::placement::{place_devices_threaded, PlacementOptions};
use crate::routing::{Router, RouterStats, RoutingOptions};
use crate::transport::extract_transport_tasks;

/// Work counters of one synthesis run: the staged router's per-stage
/// counters plus the grid-search effort around it. Surfaced through
/// `SynthesisReport` and the `bench arch` scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SynthesisStats {
    /// Per-stage counters of the router that produced the final chip.
    pub router: RouterStats,
    /// Placement + routing attempts across grid sizes (1 = first grid fit).
    pub grids_tried: usize,
    /// Whether the deadline-relaxed last-resort pass was needed.
    pub relaxed_pass: bool,
    /// Largest reservation calendar of any edge/node — the `n` of the
    /// router's `O(log n)` calendar queries.
    pub peak_calendar_len: usize,
}

/// Options of the architectural synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisOptions {
    /// Connection-grid side length; `None` chooses a size from the device
    /// count (the paper uses 4×4 for up to four devices and 5×5 for five).
    pub grid_size: Option<usize>,
    /// Largest grid side length the synthesizer may grow to when routing on
    /// the initial grid fails. A hard cap, with one exception: when the
    /// storage-derived initial size already exceeds it (scale assays whose
    /// peak concurrent storage demands a bigger grid than this cap), the
    /// search may grow a further quarter above that derived size.
    pub max_grid_size: usize,
    /// Allow postponing individual transports past their deadline (reported
    /// via [`Architecture::transport_postponement`]) as a last resort when
    /// even the largest grid cannot route them on time — e.g. when a
    /// schedule demands more simultaneous movements at one device than the
    /// device has ports.
    pub allow_postponement: bool,
    /// Placement options.
    pub placement: PlacementOptions,
    /// Routing options.
    pub routing: RoutingOptions,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            grid_size: None,
            max_grid_size: 12,
            allow_postponement: true,
            placement: PlacementOptions::default(),
            routing: RoutingOptions::default(),
        }
    }
}

impl SynthesisOptions {
    /// Fixes the grid side length (disabling the automatic choice).
    #[must_use]
    pub fn with_grid_size(mut self, size: usize) -> Self {
        self.grid_size = Some(size.max(1));
        self
    }
}

/// The architectural synthesis engine (Section 3.2 of the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArchitectureSynthesizer {
    options: SynthesisOptions,
    parallelism: Parallelism,
}

impl ArchitectureSynthesizer {
    /// Creates a synthesizer with the given options.
    #[must_use]
    pub fn new(options: SynthesisOptions) -> Self {
        ArchitectureSynthesizer {
            options,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the intra-job parallelism policy. The thread count never
    /// changes the synthesized chip — multi-start placement reduces by
    /// `(cost, start index)` and the router's parallel scoring reduces by
    /// candidate order — it only changes how fast the chip is found.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The configured parallelism policy.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Synthesizes the chip architecture for a scheduled assay.
    ///
    /// The schedule is validated, transportation tasks are extracted, devices
    /// are placed on the connection grid, and every task is routed with time
    /// multiplexing. When routing fails on the chosen grid the grid is grown
    /// by one row/column (up to [`SynthesisOptions::max_grid_size`]) and the
    /// whole placement/routing pass is repeated.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSchedule`] for schedules that violate the
    /// scheduling constraints, [`ArchError::GridTooSmall`] when the devices
    /// cannot even be placed, and the last routing error when no grid up to
    /// the maximum size admits a conflict-free routing.
    /// Wall-clock visibility: each grid attempt records `"place"` and
    /// `"route"` telemetry spans (category `"pipeline"`) when span
    /// collection is enabled — the `bench pipeline` sweep and `--trace`
    /// consume those instead of any timing in the return value, which stays
    /// a pure function of the input.
    pub fn synthesize(
        &self,
        problem: &ScheduleProblem,
        schedule: &Schedule,
    ) -> Result<Architecture, ArchError> {
        schedule
            .validate(problem)
            .map_err(|e| ArchError::InvalidSchedule {
                reason: e.to_string(),
            })?;
        let tasks = extract_transport_tasks(problem, schedule);
        let num_devices = problem.devices().len();

        let peak_storage = schedule.metrics(problem).max_concurrent_storage;
        let initial = self
            .options
            .grid_size
            .unwrap_or_else(|| default_grid_size(num_devices, peak_storage));
        // `max_grid_size` stays a hard cap for caller-pinned and small
        // derived sizes. Only when the *derived* storage-sized initial
        // already exceeds the configured maximum does the search get a
        // quarter of growth headroom above it — otherwise scale assays
        // could never be attempted at all.
        let max = if self.options.grid_size.is_none() && initial > self.options.max_grid_size {
            initial + initial.div_ceil(4)
        } else {
            self.options.max_grid_size.max(initial)
        };

        let mut last_error = ArchError::GridTooSmall {
            devices: num_devices,
            nodes: 0,
        };
        // Last resort: permit postponing transports whose deadlines cannot
        // all be met (more simultaneous movements at a device than it has
        // ports). The overrun is reported, not hidden.
        let relaxed_routing = {
            let mut relaxed = self.options.routing.clone();
            relaxed.max_deadline_overrun = 8 * problem.transport_time().max(1);
            relaxed
        };
        // Paper-scale grids prefer growing the grid over postponing (every
        // size strictly first, then every size with postponement).
        // Storage-sized grids run one pass per size with postponement armed:
        // the router escalates to overrun windows per task, so tasks that
        // fit their slack are routed exactly as in a strict pass, and a
        // grown grid rarely resolves a zero-slack port conflict anyway —
        // while each extra pass re-routes tens of thousands of tasks.
        let scale_side = crate::segment_index::SCALE_GRID_SIDE;
        let scale = initial >= scale_side;
        let mut attempts: Vec<(usize, bool)> = Vec::new();
        if scale {
            for size in initial..=max {
                attempts.push((size, self.options.allow_postponement));
            }
        } else {
            // Exhaust paper-scale grids first — strict, then with
            // postponement — before growing into storage-sized grids whose
            // scale-mode heuristics produce different (larger) chips. This
            // keeps every assay the pre-refactor flow could synthesize on a
            // small grid on exactly that grid.
            let small_max = max.min(scale_side - 1);
            for size in initial..=small_max {
                attempts.push((size, false));
            }
            if self.options.allow_postponement {
                for size in initial..=small_max {
                    attempts.push((size, true));
                }
            }
            for size in scale_side..=max {
                attempts.push((size, self.options.allow_postponement));
            }
        }
        for (grids_tried, &(size, relaxed_pass)) in attempts.iter().enumerate() {
            let routing = if relaxed_pass {
                &relaxed_routing
            } else {
                &self.options.routing
            };
            let grid = ConnectionGrid::square(size);
            match self.try_grid(&grid, problem, &tasks, routing) {
                Ok((architecture, mut stats)) => {
                    stats.grids_tried = grids_tried + 1;
                    stats.relaxed_pass = relaxed_pass;
                    let architecture = architecture.with_stats(stats);
                    architecture.verify()?;
                    return Ok(architecture);
                }
                Err(e) => last_error = e,
            }
        }
        Err(last_error)
    }

    /// One placement + routing attempt on a fixed grid.
    fn try_grid(
        &self,
        grid: &ConnectionGrid,
        problem: &ScheduleProblem,
        tasks: &[crate::transport::TransportTask],
        routing: &RoutingOptions,
    ) -> Result<(Architecture, SynthesisStats), ArchError> {
        let threads = self.parallelism.effective_threads();
        let placement = {
            let _span = telemetry::span("pipeline", "place");
            place_devices_threaded(
                grid,
                problem.devices().len(),
                tasks,
                &self.options.placement,
                threads,
            )?
        };

        let mut router = Router::new(grid, &placement, routing.clone()).with_threads(threads);
        let routes = {
            let _span = telemetry::span("pipeline", "route");
            router.route_all(tasks)
        };
        let routes = routes?;

        let stats = SynthesisStats {
            router: router.stats(),
            grids_tried: 0,
            relaxed_pass: false,
            peak_calendar_len: router.reservations().peak_calendar_len(),
        };
        let used = router.used_edges();
        let connection_graph = ConnectionGraph::new(grid.clone(), placement, used);
        let architecture = Architecture::new(connection_graph, routes);
        Ok((architecture, stats))
    }
}

/// Grid side length used when the caller does not fix one.
///
/// Two demands size the grid: devices are spread on every other node, so a
/// side of `2·ceil(sqrt(D))` leaves enough switch nodes and segments around
/// each device (with the paper's 4×4 as a floor); and every concurrently
/// stored sample occupies a whole channel segment, so the grid must offer
/// comfortably more segments than the schedule's peak concurrent storage —
/// the demand that dominates for the 1k/10k-op scale assays, whose storage
/// peaks dwarf their device counts.
#[must_use]
fn default_grid_size(num_devices: usize, peak_storage: usize) -> usize {
    let side_for = |needed_edges: usize| {
        // A size-s square grid has 2·s·(s−1) segments.
        let mut side = 2;
        while 2 * side * (side - 1) < needed_edges {
            side += 1;
        }
        side
    };
    let device_side = 2 * (num_devices as f64).sqrt().ceil() as usize;
    // Demand 3× the storage peak so transport paths keep room to move
    // between cached samples (the cache spread and egress guards need free
    // neighbours around every cached segment).
    let needed_edges = 3 * peak_storage + 8;
    let side = device_side.max(side_for(needed_edges)).max(4);
    if side < crate::segment_index::SCALE_GRID_SIDE {
        return side;
    }
    // Storage-sized grids cache on the vertical even-column **comb** only
    // (see `segment_index`), and the device cluster's interior is priced
    // out of the cache supply: size the grid so the comb outside the
    // cluster box holds 1.25× the storage peak.
    let cluster_side = 4 * (num_devices as f64).sqrt().ceil() as usize + 1;
    let cluster_comb = cluster_side.div_ceil(2) * cluster_side.saturating_sub(1);
    let needed_comb = peak_storage + peak_storage / 4 + cluster_comb + 8;
    let mut comb_side = side;
    while comb_side.div_ceil(2) * (comb_side - 1) < needed_comb {
        comb_side += 1;
    }
    device_side.max(comb_side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;
    use biochip_assay::library;
    use biochip_schedule::{ListScheduler, Scheduler, SchedulingStrategy};

    fn schedule_for(
        graph: biochip_assay::SequencingGraph,
        mixers: usize,
        detectors: usize,
    ) -> (ScheduleProblem, Schedule) {
        let problem = ScheduleProblem::new(graph)
            .with_mixers(mixers)
            .with_detectors(detectors)
            .with_transport_time(5);
        let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
            .schedule(&problem)
            .unwrap();
        (problem, schedule)
    }

    #[test]
    fn pcr_architecture_is_consistent() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        arch.verify().unwrap();
        assert!(arch.used_edge_count() > 0);
        assert!(arch.valve_count() > 0);
        assert_eq!(
            arch.routes().len(),
            extract_transport_tasks(&problem, &schedule).len()
        );
    }

    #[test]
    fn synthesis_keeps_only_a_fraction_of_grid_edges() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        // Fig. 8: the used-edge ratio is well below 1.
        assert!(arch.connection_graph().edge_ratio() < 1.0);
        assert!(arch.connection_graph().valve_ratio() < 1.0);
    }

    #[test]
    fn stored_samples_get_cache_segments() {
        // One mixer and one detector force cross-device transports; with the
        // detector busy, samples must wait in channel storage.
        let (problem, schedule) = schedule_for(library::ivd(), 2, 1);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let stores = arch.storage_routes();
        let schedule_stores = schedule.storage_requirements(&problem).len();
        assert_eq!(stores.len(), schedule_stores);
        for store in stores {
            assert!(store.cache_edge.is_some());
        }
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let (problem, _) = schedule_for(library::pcr(), 2, 0);
        let empty = Schedule::with_capacity(problem.graph().num_operations());
        let err = ArchitectureSynthesizer::default()
            .synthesize(&problem, &empty)
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidSchedule { .. }));
    }

    #[test]
    fn fixed_grid_size_is_respected() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let options = SynthesisOptions::default().with_grid_size(6);
        let arch = ArchitectureSynthesizer::new(options)
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(arch.grid().dimensions(), "6x6");
    }

    #[test]
    fn default_grid_sizes() {
        // Device-count-dominated sizing (small storage peaks).
        assert_eq!(default_grid_size(1, 0), 4);
        assert_eq!(default_grid_size(4, 0), 4);
        assert_eq!(default_grid_size(5, 0), 6);
        assert_eq!(default_grid_size(9, 0), 6);
        // Storage-dominated sizing: the grid must offer 3× the peak
        // concurrent storage in segments.
        assert_eq!(default_grid_size(2, 20), 7); // 68 edges needed, 2·7·6 = 84
        let side = default_grid_size(8, 1_062); // the RA10K storage peak
                                                // The even-column storage comb must hold 1.25× the peak on top
                                                // of the cluster-interior exclusion.
        assert!(side.div_ceil(2) * (side - 1) >= 1_062 + 1_062 / 4);
        assert!(side < 60, "sizing exploded: {side}");
    }

    #[test]
    fn all_benchmarks_synthesize() {
        for (name, graph) in library::paper_benchmarks() {
            let (problem, schedule) = schedule_for(graph, 4, 2);
            let arch = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            arch.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every extracted task was routed.
            assert_eq!(
                arch.routes().len(),
                extract_transport_tasks(&problem, &schedule).len(),
                "{name}"
            );
            // Store and fetch counts match.
            let stores = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Store)
                .count();
            let fetches = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Fetch)
                .count();
            assert_eq!(stores, fetches, "{name}");
        }
    }

    #[test]
    fn parallel_synthesis_matches_sequential_bit_for_bit() {
        for (graph, mixers, detectors) in [(library::ivd(), 2, 1), (library::pcr(), 2, 0)] {
            let (problem, schedule) = schedule_for(graph, mixers, detectors);
            let sequential = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap();
            for threads in [2, 8] {
                let parallel = ArchitectureSynthesizer::default()
                    .with_parallelism(Parallelism::with_threads(threads))
                    .synthesize(&problem, &schedule)
                    .unwrap();
                assert_eq!(parallel, sequential, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn multi_start_placement_keeps_synthesis_valid() {
        let (problem, schedule) = schedule_for(library::ivd(), 2, 1);
        let mut options = SynthesisOptions::default();
        options.placement.starts = 4;
        let a = ArchitectureSynthesizer::new(options.clone())
            .with_parallelism(Parallelism::with_threads(4))
            .synthesize(&problem, &schedule)
            .unwrap();
        a.verify().unwrap();
        // Same starts, different thread count: same chip.
        let b = ArchitectureSynthesizer::new(options)
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn architectures_are_deterministic() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let a = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let b = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b);
    }
}
