//! Top-level architectural synthesis: schedule → placed, routed chip.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use biochip_schedule::{Schedule, ScheduleProblem};
use biochip_telemetry as telemetry;

use crate::connection_graph::{Architecture, ConnectionGraph, RoutedTransport};
use crate::error::ArchError;
use crate::grid::ConnectionGrid;
use crate::oracle::OracleCache;
use crate::parallel::Parallelism;
use crate::placement::{place_devices_threaded, Placement, PlacementOptions, TrafficMatrix};
use crate::routing::{Router, RouterStats, RoutingOptions};
use crate::transport::{extract_transport_tasks, TransportTask};

/// Work counters of one synthesis run: the staged router's per-stage
/// counters plus the grid-search effort around it. Surfaced through
/// `SynthesisReport` and the `bench arch` scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SynthesisStats {
    /// Per-stage counters of the router that produced the final chip.
    pub router: RouterStats,
    /// Placement + routing attempts across grid sizes (1 = first grid fit).
    pub grids_tried: usize,
    /// Whether the deadline-relaxed last-resort pass was needed.
    pub relaxed_pass: bool,
    /// Largest reservation calendar of any edge/node — the `n` of the
    /// router's `O(log n)` calendar queries.
    pub peak_calendar_len: usize,
}

/// Options of the architectural synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisOptions {
    /// Connection-grid side length; `None` chooses a size from the device
    /// count (the paper uses 4×4 for up to four devices and 5×5 for five).
    pub grid_size: Option<usize>,
    /// Largest grid side length the synthesizer may grow to when routing on
    /// the initial grid fails. A hard cap, with one exception: when the
    /// storage-derived initial size already exceeds it (scale assays whose
    /// peak concurrent storage demands a bigger grid than this cap), the
    /// search may grow a further quarter above that derived size.
    pub max_grid_size: usize,
    /// Allow postponing individual transports past their deadline (reported
    /// via [`Architecture::transport_postponement`]) as a last resort when
    /// even the largest grid cannot route them on time — e.g. when a
    /// schedule demands more simultaneous movements at one device than the
    /// device has ports.
    pub allow_postponement: bool,
    /// Placement options.
    pub placement: PlacementOptions,
    /// Routing options.
    pub routing: RoutingOptions,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            grid_size: None,
            max_grid_size: 12,
            allow_postponement: true,
            placement: PlacementOptions::default(),
            routing: RoutingOptions::default(),
        }
    }
}

impl SynthesisOptions {
    /// Fixes the grid side length (disabling the automatic choice).
    #[must_use]
    pub fn with_grid_size(mut self, size: usize) -> Self {
        self.grid_size = Some(size.max(1));
        self
    }
}

/// A prior synthesis result offered as a warm start for an edited problem.
///
/// Built from the previous run's problem, schedule and architecture (see
/// [`WarmStart::from_prior`]); the synthesizer adopts whatever parts of it
/// provably reproduce a cold run: the placement when the placement inputs
/// are identical, and the routed prefix of the task list that the edit left
/// untouched (the committed router state after task *i* is a pure function
/// of tasks `0..=i`, so replaying an unchanged prefix is byte-identical to
/// re-searching it). Everything that cannot be proven equal runs cold —
/// warm starts change the wall clock, never the chip.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Square-grid side length of the prior chip; the hint only applies to
    /// the grid attempt of the same size.
    grid_side: usize,
    /// Routing options the prior routes were produced under (including the
    /// deadline relaxation, when the prior run needed the relaxed pass).
    routing: RoutingOptions,
    /// Placement options the prior placement was annealed under.
    placement_options: PlacementOptions,
    /// The prior device placement.
    placement: Placement,
    /// The prior run's *original* transport tasks, in routing order (the
    /// routed copies carry committed windows, so the originals are what an
    /// edited task list is prefix-compared against).
    tasks: Vec<TransportTask>,
    /// The prior routed transports, parallel to `tasks`.
    routes: Vec<RoutedTransport>,
}

impl WarmStart {
    /// Builds a warm-start hint from a prior run: its problem and schedule
    /// (to recover the original transport tasks), its architecture, and the
    /// synthesis options it ran under.
    ///
    /// Returns `None` when the prior architecture is not self-consistent
    /// enough to hint with (route/task count mismatch, a non-square grid) —
    /// callers then simply run cold.
    #[must_use]
    pub fn from_prior(
        problem: &ScheduleProblem,
        schedule: &Schedule,
        architecture: &Architecture,
        options: &SynthesisOptions,
    ) -> Option<Self> {
        if schedule.validate(problem).is_err() {
            return None;
        }
        let tasks = extract_transport_tasks(problem, schedule);
        if tasks.len() != architecture.routes().len() {
            return None;
        }
        let grid = architecture.grid();
        if grid.rows() != grid.cols() {
            return None;
        }
        // Reconstruct the routing options of the winning attempt: the base
        // options, or the deadline-relaxed variant when the prior run's
        // stats say the relaxed pass produced the chip.
        let routing = if architecture.stats().relaxed_pass {
            relaxed_routing(&options.routing, problem)
        } else {
            options.routing.clone()
        };
        Some(WarmStart {
            grid_side: grid.rows(),
            routing,
            placement_options: options.placement.clone(),
            placement: architecture.placement().clone(),
            tasks,
            routes: architecture.routes().to_vec(),
        })
    }
}

/// How much of a warm-start hint one synthesis run actually reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReuse {
    /// The prior placement was adopted (placement inputs were identical).
    pub placement_reused: bool,
    /// Transports committed by replaying prior routes instead of searching.
    pub tasks_replayed: usize,
    /// Total transports of the (winning) routing pass.
    pub tasks_total: usize,
}

/// The deadline-relaxed last-resort routing options derived from `base` for
/// `problem` — must stay in lockstep with the relaxation the grid-attempt
/// loop applies, or warm hints would never match a relaxed-pass prior.
fn relaxed_routing(base: &RoutingOptions, problem: &ScheduleProblem) -> RoutingOptions {
    let mut relaxed = base.clone();
    relaxed.max_deadline_overrun = 8 * problem.transport_time().max(1);
    relaxed
}

/// Placement-input equality for warm adoption: everything that feeds the
/// annealer except the `warm_start` switch itself (which gates adoption but
/// never changes what cold placement would compute).
fn placement_inputs_equal(a: &PlacementOptions, b: &PlacementOptions) -> bool {
    (a.refine, a.annealing_moves, a.seed, a.starts)
        == (b.refine, b.annealing_moves, b.seed, b.starts)
}

/// Where a synthesis run gets its [`RoutingOracle`](crate::RoutingOracle)s
/// from: an externally shared [`OracleCache`] (the server's `StageCaches`
/// provides one, scoped by the placement-stage content key) or, by default,
/// a private per-run cache. Either way the build is amortized across the
/// run's grid attempts and strict/relaxed passes; the external cache
/// additionally shares it across jobs and warm restarts.
///
/// Not part of the synthesis *configuration*: two synthesizers bound to
/// different caches are still equal when their options match, since the
/// oracle never changes the synthesized chip.
#[derive(Debug, Clone, Default)]
struct OracleBinding {
    cache: Option<Arc<OracleCache>>,
    scope: Option<String>,
}

impl PartialEq for OracleBinding {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The architectural synthesis engine (Section 3.2 of the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArchitectureSynthesizer {
    options: SynthesisOptions,
    parallelism: Parallelism,
    warm: Option<WarmStart>,
    oracle: OracleBinding,
}

impl ArchitectureSynthesizer {
    /// Creates a synthesizer with the given options.
    #[must_use]
    pub fn new(options: SynthesisOptions) -> Self {
        ArchitectureSynthesizer {
            options,
            parallelism: Parallelism::default(),
            warm: None,
            oracle: OracleBinding::default(),
        }
    }

    /// Binds a shared [`OracleCache`]: per-architecture routing oracles are
    /// looked up there (and inserted on miss) instead of in a private
    /// per-run cache, so concurrent and repeated runs over the same
    /// architecture amortize one build. Never changes the synthesized chip.
    #[must_use]
    pub fn with_oracle_cache(mut self, cache: Arc<OracleCache>) -> Self {
        self.oracle.cache = Some(cache);
        self
    }

    /// Namespaces this run's entries in a shared [`OracleCache`] —
    /// typically the placement-stage content key, so architectures of
    /// distinct problems can never collide.
    #[must_use]
    pub fn with_oracle_scope(mut self, scope: impl Into<String>) -> Self {
        self.oracle.scope = Some(scope.into());
        self
    }

    /// Offers a prior result as a warm start (see [`WarmStart`]). The hint
    /// only ever shortcuts work it can prove byte-identical to a cold run;
    /// an inapplicable hint is silently ignored.
    #[must_use]
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Sets the intra-job parallelism policy. The thread count never
    /// changes the synthesized chip — multi-start placement reduces by
    /// `(cost, start index)` and the router's parallel scoring reduces by
    /// candidate order — it only changes how fast the chip is found.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The configured parallelism policy.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Synthesizes the chip architecture for a scheduled assay.
    ///
    /// The schedule is validated, transportation tasks are extracted, devices
    /// are placed on the connection grid, and every task is routed with time
    /// multiplexing. When routing fails on the chosen grid the grid is grown
    /// by one row/column (up to [`SynthesisOptions::max_grid_size`]) and the
    /// whole placement/routing pass is repeated.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSchedule`] for schedules that violate the
    /// scheduling constraints, [`ArchError::GridTooSmall`] when the devices
    /// cannot even be placed, and the last routing error when no grid up to
    /// the maximum size admits a conflict-free routing.
    /// Wall-clock visibility: each grid attempt records `"place"` and
    /// `"route"` telemetry spans (category `"pipeline"`) when span
    /// collection is enabled — the `bench pipeline` sweep and `--trace`
    /// consume those instead of any timing in the return value, which stays
    /// a pure function of the input.
    pub fn synthesize(
        &self,
        problem: &ScheduleProblem,
        schedule: &Schedule,
    ) -> Result<Architecture, ArchError> {
        self.synthesize_with_reuse(problem, schedule)
            .map(|(architecture, _)| architecture)
    }

    /// Like [`synthesize`](Self::synthesize), additionally reporting how
    /// much of the configured [`WarmStart`] hint the run reused (all-zero
    /// without a hint, or when the hint did not apply).
    ///
    /// # Errors
    ///
    /// Same as [`synthesize`](Self::synthesize).
    pub fn synthesize_with_reuse(
        &self,
        problem: &ScheduleProblem,
        schedule: &Schedule,
    ) -> Result<(Architecture, WarmReuse), ArchError> {
        schedule
            .validate(problem)
            .map_err(|e| ArchError::InvalidSchedule {
                reason: e.to_string(),
            })?;
        let tasks = extract_transport_tasks(problem, schedule);
        let num_devices = problem.devices().len();

        let peak_storage = schedule.metrics(problem).max_concurrent_storage;
        let initial = self
            .options
            .grid_size
            .unwrap_or_else(|| default_grid_size(num_devices, peak_storage));
        // `max_grid_size` stays a hard cap for caller-pinned and small
        // derived sizes. Only when the *derived* storage-sized initial
        // already exceeds the configured maximum does the search get a
        // quarter of growth headroom above it — otherwise scale assays
        // could never be attempted at all.
        let max = if self.options.grid_size.is_none() && initial > self.options.max_grid_size {
            initial + initial.div_ceil(4)
        } else {
            self.options.max_grid_size.max(initial)
        };

        let mut last_error = ArchError::GridTooSmall {
            devices: num_devices,
            nodes: 0,
        };
        // Last resort: permit postponing transports whose deadlines cannot
        // all be met (more simultaneous movements at a device than it has
        // ports). The overrun is reported, not hidden.
        let relaxed_routing = relaxed_routing(&self.options.routing, problem);
        // Paper-scale grids prefer growing the grid over postponing (every
        // size strictly first, then every size with postponement).
        // Storage-sized grids run one pass per size with postponement armed:
        // the router escalates to overrun windows per task, so tasks that
        // fit their slack are routed exactly as in a strict pass, and a
        // grown grid rarely resolves a zero-slack port conflict anyway —
        // while each extra pass re-routes tens of thousands of tasks.
        // Per-architecture routing oracles: resolved through the bound
        // shared cache when one exists, else a run-private cache — which
        // still shares one build across this run's grid attempts (the
        // strict and relaxed passes key identically, since the oracle
        // reads no routing options).
        let run_oracles = OracleCache::default();
        let oracles = self.oracle.cache.as_deref().unwrap_or(&run_oracles);
        let scale_side = crate::segment_index::SCALE_GRID_SIDE;
        let scale = initial >= scale_side;
        let mut attempts: Vec<(usize, bool)> = Vec::new();
        if scale {
            for size in initial..=max {
                attempts.push((size, self.options.allow_postponement));
            }
        } else {
            // Exhaust paper-scale grids first — strict, then with
            // postponement — before growing into storage-sized grids whose
            // scale-mode heuristics produce different (larger) chips. This
            // keeps every assay the pre-refactor flow could synthesize on a
            // small grid on exactly that grid.
            let small_max = max.min(scale_side - 1);
            for size in initial..=small_max {
                attempts.push((size, false));
            }
            if self.options.allow_postponement {
                for size in initial..=small_max {
                    attempts.push((size, true));
                }
            }
            for size in scale_side..=max {
                attempts.push((size, self.options.allow_postponement));
            }
        }
        for (grids_tried, &(size, relaxed_pass)) in attempts.iter().enumerate() {
            let routing = if relaxed_pass {
                &relaxed_routing
            } else {
                &self.options.routing
            };
            let grid = ConnectionGrid::square(size);
            // The hint only applies to the attempt that mirrors the prior
            // run's winning attempt: same grid, same routing options.
            let warm = self
                .warm
                .as_ref()
                .filter(|w| w.grid_side == size && w.routing == *routing);
            match self.try_grid(&grid, problem, &tasks, routing, warm, oracles) {
                Ok((architecture, mut stats, reuse)) => {
                    stats.grids_tried = grids_tried + 1;
                    stats.relaxed_pass = relaxed_pass;
                    let architecture = architecture.with_stats(stats);
                    architecture.verify()?;
                    if reuse.placement_reused || reuse.tasks_replayed > 0 {
                        telemetry::instant(
                            "pipeline",
                            "warm.reuse",
                            &[
                                ("placement_reused", u64::from(reuse.placement_reused)),
                                ("tasks_replayed", reuse.tasks_replayed as u64),
                                ("tasks_total", reuse.tasks_total as u64),
                            ],
                        );
                    }
                    return Ok((architecture, reuse));
                }
                Err(e) => last_error = e,
            }
        }
        Err(last_error)
    }

    /// One placement + routing attempt on a fixed grid.
    fn try_grid(
        &self,
        grid: &ConnectionGrid,
        problem: &ScheduleProblem,
        tasks: &[TransportTask],
        routing: &RoutingOptions,
        warm: Option<&WarmStart>,
        oracles: &OracleCache,
    ) -> Result<(Architecture, SynthesisStats, WarmReuse), ArchError> {
        let threads = self.parallelism.effective_threads();
        let num_devices = problem.devices().len();
        let mut reuse = WarmReuse {
            tasks_total: tasks.len(),
            ..WarmReuse::default()
        };

        // Adopt the prior placement only when every placement input is
        // identical — grid (gated by the caller), device count, options and
        // traffic matrix — i.e. when cold annealing would reproduce it
        // bit-for-bit anyway. Anything weaker (e.g. seeding the anneal with
        // the prior placement under changed traffic) would produce a chip a
        // cold run cannot, violating the warm/cold byte-identity contract.
        let adopted = warm.and_then(|w| {
            if !self.options.placement.warm_start
                || !placement_inputs_equal(&w.placement_options, &self.options.placement)
                || w.placement.device_nodes().len() != num_devices
            {
                return None;
            }
            let prior_traffic = TrafficMatrix::from_tasks(num_devices, &w.tasks);
            let traffic = TrafficMatrix::from_tasks(num_devices, tasks);
            (prior_traffic == traffic).then(|| w.placement.clone())
        });
        let placement = match adopted {
            Some(placement) => {
                reuse.placement_reused = true;
                placement
            }
            None => {
                let _span = telemetry::span("pipeline", "place");
                place_devices_threaded(grid, num_devices, tasks, &self.options.placement, threads)?
            }
        };

        let (oracle, built) = oracles.get_or_build(self.oracle.scope.as_deref(), grid, &placement);
        let mut router =
            Router::with_oracle(grid, &placement, routing.clone(), oracle).with_threads(threads);
        if built {
            router.note_oracle_build();
        }
        let routes = {
            let _span = telemetry::span("pipeline", "route");
            self.route_with_replay(&mut router, tasks, warm, &placement, &mut reuse)
        };
        let routes = routes?;

        let stats = SynthesisStats {
            router: router.stats(),
            grids_tried: 0,
            relaxed_pass: false,
            peak_calendar_len: router.reservations().peak_calendar_len(),
        };
        let used = router.used_edges();
        let connection_graph = ConnectionGraph::new(grid.clone(), placement, used);
        let architecture = Architecture::new(connection_graph, routes);
        Ok((architecture, stats, reuse))
    }

    /// Routes `tasks`, replaying the prior routes of the longest unchanged
    /// task prefix when a warm hint applies (same placement; routing options
    /// and grid were gated by the caller), then searching only the suffix.
    ///
    /// Replay failure (a malformed or inconsistent hint) falls back to a
    /// fully cold `route_all` on a fresh router — hints may shortcut work,
    /// never fail a synthesis that would have succeeded cold.
    fn route_with_replay(
        &self,
        router: &mut Router<'_>,
        tasks: &[TransportTask],
        warm: Option<&WarmStart>,
        placement: &Placement,
        reuse: &mut WarmReuse,
    ) -> Result<Vec<RoutedTransport>, ArchError> {
        let prefix = warm.map_or(0, |w| {
            if w.placement != *placement || w.routes.len() != w.tasks.len() {
                return 0;
            }
            tasks
                .iter()
                .zip(&w.tasks)
                .take_while(|(a, b)| a == b)
                .count()
        });
        if prefix == 0 {
            return router.route_all(tasks);
        }
        let w = warm.expect("non-zero prefix implies a hint");
        for (task, routed) in tasks[..prefix].iter().zip(&w.routes) {
            if router.replay(task, routed).is_err() {
                // The hint lied (stale or inconsistent document): discard
                // every replayed commit and route everything cold.
                *router = router.fresh();
                return router.route_all(tasks);
            }
        }
        reuse.tasks_replayed = prefix;
        let mut routes = w.routes[..prefix].to_vec();
        routes.extend(router.route_all(&tasks[prefix..])?);
        Ok(routes)
    }
}

/// Grid side length used when the caller does not fix one.
///
/// Two demands size the grid: devices are spread on every other node, so a
/// side of `2·ceil(sqrt(D))` leaves enough switch nodes and segments around
/// each device (with the paper's 4×4 as a floor); and every concurrently
/// stored sample occupies a whole channel segment, so the grid must offer
/// comfortably more segments than the schedule's peak concurrent storage —
/// the demand that dominates for the 1k/10k-op scale assays, whose storage
/// peaks dwarf their device counts.
#[must_use]
fn default_grid_size(num_devices: usize, peak_storage: usize) -> usize {
    let side_for = |needed_edges: usize| {
        // A size-s square grid has 2·s·(s−1) segments.
        let mut side = 2;
        while 2 * side * (side - 1) < needed_edges {
            side += 1;
        }
        side
    };
    let device_side = 2 * (num_devices as f64).sqrt().ceil() as usize;
    // Demand 3× the storage peak so transport paths keep room to move
    // between cached samples (the cache spread and egress guards need free
    // neighbours around every cached segment).
    let needed_edges = 3 * peak_storage + 8;
    let side = device_side.max(side_for(needed_edges)).max(4);
    if side < crate::segment_index::SCALE_GRID_SIDE {
        return side;
    }
    // Storage-sized grids cache on the vertical even-column **comb** only
    // (see `segment_index`), and the device cluster's interior is priced
    // out of the cache supply: size the grid so the comb outside the
    // cluster box holds 1.25× the storage peak.
    let cluster_side = 4 * (num_devices as f64).sqrt().ceil() as usize + 1;
    let cluster_comb = cluster_side.div_ceil(2) * cluster_side.saturating_sub(1);
    let needed_comb = peak_storage + peak_storage / 4 + cluster_comb + 8;
    let mut comb_side = side;
    while comb_side.div_ceil(2) * (comb_side - 1) < needed_comb {
        comb_side += 1;
    }
    device_side.max(comb_side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;
    use biochip_assay::library;
    use biochip_schedule::{ListScheduler, Scheduler, SchedulingStrategy};

    fn schedule_for(
        graph: biochip_assay::SequencingGraph,
        mixers: usize,
        detectors: usize,
    ) -> (ScheduleProblem, Schedule) {
        let problem = ScheduleProblem::new(graph)
            .with_mixers(mixers)
            .with_detectors(detectors)
            .with_transport_time(5);
        let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
            .schedule(&problem)
            .unwrap();
        (problem, schedule)
    }

    #[test]
    fn pcr_architecture_is_consistent() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        arch.verify().unwrap();
        assert!(arch.used_edge_count() > 0);
        assert!(arch.valve_count() > 0);
        assert_eq!(
            arch.routes().len(),
            extract_transport_tasks(&problem, &schedule).len()
        );
    }

    #[test]
    fn synthesis_keeps_only_a_fraction_of_grid_edges() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        // Fig. 8: the used-edge ratio is well below 1.
        assert!(arch.connection_graph().edge_ratio() < 1.0);
        assert!(arch.connection_graph().valve_ratio() < 1.0);
    }

    #[test]
    fn stored_samples_get_cache_segments() {
        // One mixer and one detector force cross-device transports; with the
        // detector busy, samples must wait in channel storage.
        let (problem, schedule) = schedule_for(library::ivd(), 2, 1);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let stores = arch.storage_routes();
        let schedule_stores = schedule.storage_requirements(&problem).len();
        assert_eq!(stores.len(), schedule_stores);
        for store in stores {
            assert!(store.cache_edge.is_some());
        }
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let (problem, _) = schedule_for(library::pcr(), 2, 0);
        let empty = Schedule::with_capacity(problem.graph().num_operations());
        let err = ArchitectureSynthesizer::default()
            .synthesize(&problem, &empty)
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidSchedule { .. }));
    }

    #[test]
    fn fixed_grid_size_is_respected() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let options = SynthesisOptions::default().with_grid_size(6);
        let arch = ArchitectureSynthesizer::new(options)
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(arch.grid().dimensions(), "6x6");
    }

    #[test]
    fn default_grid_sizes() {
        // Device-count-dominated sizing (small storage peaks).
        assert_eq!(default_grid_size(1, 0), 4);
        assert_eq!(default_grid_size(4, 0), 4);
        assert_eq!(default_grid_size(5, 0), 6);
        assert_eq!(default_grid_size(9, 0), 6);
        // Storage-dominated sizing: the grid must offer 3× the peak
        // concurrent storage in segments.
        assert_eq!(default_grid_size(2, 20), 7); // 68 edges needed, 2·7·6 = 84
        let side = default_grid_size(8, 1_062); // the RA10K storage peak
                                                // The even-column storage comb must hold 1.25× the peak on top
                                                // of the cluster-interior exclusion.
        assert!(side.div_ceil(2) * (side - 1) >= 1_062 + 1_062 / 4);
        assert!(side < 60, "sizing exploded: {side}");
    }

    #[test]
    fn all_benchmarks_synthesize() {
        for (name, graph) in library::paper_benchmarks() {
            let (problem, schedule) = schedule_for(graph, 4, 2);
            let arch = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            arch.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every extracted task was routed.
            assert_eq!(
                arch.routes().len(),
                extract_transport_tasks(&problem, &schedule).len(),
                "{name}"
            );
            // Store and fetch counts match.
            let stores = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Store)
                .count();
            let fetches = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Fetch)
                .count();
            assert_eq!(stores, fetches, "{name}");
        }
    }

    #[test]
    fn parallel_synthesis_matches_sequential_bit_for_bit() {
        for (graph, mixers, detectors) in [(library::ivd(), 2, 1), (library::pcr(), 2, 0)] {
            let (problem, schedule) = schedule_for(graph, mixers, detectors);
            let sequential = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap();
            for threads in [2, 8] {
                let parallel = ArchitectureSynthesizer::default()
                    .with_parallelism(Parallelism::with_threads(threads))
                    .synthesize(&problem, &schedule)
                    .unwrap();
                assert_eq!(parallel, sequential, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn multi_start_placement_keeps_synthesis_valid() {
        let (problem, schedule) = schedule_for(library::ivd(), 2, 1);
        let mut options = SynthesisOptions::default();
        options.placement.starts = 4;
        let a = ArchitectureSynthesizer::new(options.clone())
            .with_parallelism(Parallelism::with_threads(4))
            .synthesize(&problem, &schedule)
            .unwrap();
        a.verify().unwrap();
        // Same starts, different thread count: same chip.
        let b = ArchitectureSynthesizer::new(options)
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn architectures_are_deterministic() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let a = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let b = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b);
    }
}
