//! Top-level architectural synthesis: schedule → placed, routed chip.

use serde::{Deserialize, Serialize};

use biochip_schedule::{Schedule, ScheduleProblem};

use crate::connection_graph::{Architecture, ConnectionGraph};
use crate::error::ArchError;
use crate::grid::ConnectionGrid;
use crate::placement::{place_devices, PlacementOptions};
use crate::routing::{Router, RoutingOptions};
use crate::transport::extract_transport_tasks;

/// Options of the architectural synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisOptions {
    /// Connection-grid side length; `None` chooses a size from the device
    /// count (the paper uses 4×4 for up to four devices and 5×5 for five).
    pub grid_size: Option<usize>,
    /// Largest grid side length the synthesizer may grow to when routing on
    /// the initial grid fails.
    pub max_grid_size: usize,
    /// Allow postponing individual transports past their deadline (reported
    /// via [`Architecture::transport_postponement`]) as a last resort when
    /// even the largest grid cannot route them on time — e.g. when a
    /// schedule demands more simultaneous movements at one device than the
    /// device has ports.
    pub allow_postponement: bool,
    /// Placement options.
    pub placement: PlacementOptions,
    /// Routing options.
    pub routing: RoutingOptions,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            grid_size: None,
            max_grid_size: 12,
            allow_postponement: true,
            placement: PlacementOptions::default(),
            routing: RoutingOptions::default(),
        }
    }
}

impl SynthesisOptions {
    /// Fixes the grid side length (disabling the automatic choice).
    #[must_use]
    pub fn with_grid_size(mut self, size: usize) -> Self {
        self.grid_size = Some(size.max(1));
        self
    }
}

/// The architectural synthesis engine (Section 3.2 of the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArchitectureSynthesizer {
    options: SynthesisOptions,
}

impl ArchitectureSynthesizer {
    /// Creates a synthesizer with the given options.
    #[must_use]
    pub fn new(options: SynthesisOptions) -> Self {
        ArchitectureSynthesizer { options }
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Synthesizes the chip architecture for a scheduled assay.
    ///
    /// The schedule is validated, transportation tasks are extracted, devices
    /// are placed on the connection grid, and every task is routed with time
    /// multiplexing. When routing fails on the chosen grid the grid is grown
    /// by one row/column (up to [`SynthesisOptions::max_grid_size`]) and the
    /// whole placement/routing pass is repeated.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSchedule`] for schedules that violate the
    /// scheduling constraints, [`ArchError::GridTooSmall`] when the devices
    /// cannot even be placed, and the last routing error when no grid up to
    /// the maximum size admits a conflict-free routing.
    pub fn synthesize(
        &self,
        problem: &ScheduleProblem,
        schedule: &Schedule,
    ) -> Result<Architecture, ArchError> {
        schedule
            .validate(problem)
            .map_err(|e| ArchError::InvalidSchedule {
                reason: e.to_string(),
            })?;
        let tasks = extract_transport_tasks(problem, schedule);
        let num_devices = problem.devices().len();

        let initial = self
            .options
            .grid_size
            .unwrap_or_else(|| default_grid_size(num_devices));
        let max = self.options.max_grid_size.max(initial);

        let mut last_error = ArchError::GridTooSmall {
            devices: num_devices,
            nodes: 0,
        };
        for size in initial..=max {
            let grid = ConnectionGrid::square(size);
            match self.try_grid(&grid, problem, &tasks, &self.options.routing) {
                Ok(architecture) => return Ok(architecture),
                Err(e) => last_error = e,
            }
        }
        if self.options.allow_postponement {
            // Last resort: permit postponing transports whose deadlines
            // cannot all be met (more simultaneous movements at a device
            // than it has ports). The overrun is reported, not hidden.
            let mut relaxed = self.options.routing.clone();
            relaxed.max_deadline_overrun = 8 * problem.transport_time().max(1);
            for size in initial..=max {
                let grid = ConnectionGrid::square(size);
                match self.try_grid(&grid, problem, &tasks, &relaxed) {
                    Ok(architecture) => return Ok(architecture),
                    Err(e) => last_error = e,
                }
            }
        }
        Err(last_error)
    }

    /// One placement + routing attempt on a fixed grid.
    fn try_grid(
        &self,
        grid: &ConnectionGrid,
        problem: &ScheduleProblem,
        tasks: &[crate::transport::TransportTask],
        routing: &RoutingOptions,
    ) -> Result<Architecture, ArchError> {
        let placement = place_devices(
            grid,
            problem.devices().len(),
            tasks,
            &self.options.placement,
        )?;
        let mut router = Router::new(grid, &placement, routing.clone());
        let mut routes = Vec::with_capacity(tasks.len());
        for task in tasks {
            routes.push(router.route(task)?);
        }
        let used = router.used_edges().iter().copied().collect::<Vec<_>>();
        let connection_graph = ConnectionGraph::new(grid.clone(), placement, used);
        let architecture = Architecture::new(connection_graph, routes);
        architecture.verify()?;
        Ok(architecture)
    }
}

/// Grid side length used when the caller does not fix one: devices are spread
/// on every other node, so a side of `2·ceil(sqrt(D))` leaves enough switch
/// nodes and segments around each device, with the paper's 4×4 as a floor.
#[must_use]
fn default_grid_size(num_devices: usize) -> usize {
    let side = (num_devices as f64).sqrt().ceil() as usize;
    (2 * side).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;
    use biochip_assay::library;
    use biochip_schedule::{ListScheduler, Scheduler, SchedulingStrategy};

    fn schedule_for(
        graph: biochip_assay::SequencingGraph,
        mixers: usize,
        detectors: usize,
    ) -> (ScheduleProblem, Schedule) {
        let problem = ScheduleProblem::new(graph)
            .with_mixers(mixers)
            .with_detectors(detectors)
            .with_transport_time(5);
        let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
            .schedule(&problem)
            .unwrap();
        (problem, schedule)
    }

    #[test]
    fn pcr_architecture_is_consistent() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        arch.verify().unwrap();
        assert!(arch.used_edge_count() > 0);
        assert!(arch.valve_count() > 0);
        assert_eq!(
            arch.routes().len(),
            extract_transport_tasks(&problem, &schedule).len()
        );
    }

    #[test]
    fn synthesis_keeps_only_a_fraction_of_grid_edges() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        // Fig. 8: the used-edge ratio is well below 1.
        assert!(arch.connection_graph().edge_ratio() < 1.0);
        assert!(arch.connection_graph().valve_ratio() < 1.0);
    }

    #[test]
    fn stored_samples_get_cache_segments() {
        // One mixer and one detector force cross-device transports; with the
        // detector busy, samples must wait in channel storage.
        let (problem, schedule) = schedule_for(library::ivd(), 2, 1);
        let arch = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let stores = arch.storage_routes();
        let schedule_stores = schedule.storage_requirements(&problem).len();
        assert_eq!(stores.len(), schedule_stores);
        for store in stores {
            assert!(store.cache_edge.is_some());
        }
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let (problem, _) = schedule_for(library::pcr(), 2, 0);
        let empty = Schedule::with_capacity(problem.graph().num_operations());
        let err = ArchitectureSynthesizer::default()
            .synthesize(&problem, &empty)
            .unwrap_err();
        assert!(matches!(err, ArchError::InvalidSchedule { .. }));
    }

    #[test]
    fn fixed_grid_size_is_respected() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let options = SynthesisOptions::default().with_grid_size(6);
        let arch = ArchitectureSynthesizer::new(options)
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(arch.grid().dimensions(), "6x6");
    }

    #[test]
    fn default_grid_sizes() {
        assert_eq!(default_grid_size(1), 4);
        assert_eq!(default_grid_size(4), 4);
        assert_eq!(default_grid_size(5), 6);
        assert_eq!(default_grid_size(9), 6);
    }

    #[test]
    fn all_benchmarks_synthesize() {
        for (name, graph) in library::paper_benchmarks() {
            let (problem, schedule) = schedule_for(graph, 4, 2);
            let arch = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            arch.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every extracted task was routed.
            assert_eq!(
                arch.routes().len(),
                extract_transport_tasks(&problem, &schedule).len(),
                "{name}"
            );
            // Store and fetch counts match.
            let stores = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Store)
                .count();
            let fetches = arch
                .routes()
                .iter()
                .filter(|r| r.task.kind == TransportKind::Fetch)
                .count();
            assert_eq!(stores, fetches, "{name}");
        }
    }

    #[test]
    fn architectures_are_deterministic() {
        let (problem, schedule) = schedule_for(library::pcr(), 2, 0);
        let a = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        let b = ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b);
    }
}
