//! Extraction of transportation tasks from a schedule.
//!
//! Every dependency edge whose producer and consumer are bound to different
//! devices gives rise to fluid movement on the chip. Short hand-overs are a
//! single *direct* transport; when the consumer starts much later the sample
//! is *stored*: it is moved into a channel segment right after the producer
//! finishes (freeing the device), rests there, and is *fetched* to the
//! consumer just in time.

use serde::{Deserialize, Serialize};
use std::fmt;

use biochip_assay::{OpId, Seconds};
use biochip_schedule::{DeviceId, Schedule, ScheduleProblem};

/// The role of one transportation task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// Producer device → consumer device, no intermediate storage.
    Direct,
    /// Producer device → cache segment (frees the producer's device).
    Store,
    /// Cache segment → consumer device.
    Fetch,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransportKind::Direct => "direct",
            TransportKind::Store => "store",
            TransportKind::Fetch => "fetch",
        };
        f.write_str(s)
    }
}

/// One movement of a fluid sample across the chip, to be realized as a
/// transportation path during architectural synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransportTask {
    /// Index of the sample (dense, one per cross-device dependency edge).
    pub sample: usize,
    /// Operation that produced the sample.
    pub producer: OpId,
    /// Operation that will consume the sample.
    pub consumer: OpId,
    /// Device the movement starts from (producer's device for
    /// [`Direct`](TransportKind::Direct)/[`Store`](TransportKind::Store),
    /// consumer's device for the target of a fetch).
    pub from_device: DeviceId,
    /// Device the sample is ultimately headed to.
    pub to_device: DeviceId,
    /// Kind of movement.
    pub kind: TransportKind,
    /// Start of the *preferred* time window in which the path is occupied.
    pub window_start: Seconds,
    /// End of the preferred time window (exclusive).
    pub window_end: Seconds,
    /// For [`Store`](TransportKind::Store) tasks: the interval during which
    /// the sample rests in its cache segment (`stored_from`, `stored_until`).
    pub storage_interval: Option<(Seconds, Seconds)>,
    /// Earliest time at which the movement may begin (the producer's end
    /// time). Together with [`deadline`](Self::deadline) this gives the
    /// router slack to stagger transports that would otherwise contend for
    /// the same device ports.
    pub earliest_start: Seconds,
    /// Latest time by which the movement must have completed (the consumer's
    /// start for direct and fetch transports, the fetch start or the
    /// producing device's next operation for store transports).
    pub deadline: Seconds,
}

impl TransportTask {
    /// Length of the occupation window.
    #[must_use]
    pub fn window_len(&self) -> Seconds {
        self.window_end.saturating_sub(self.window_start)
    }

    /// Whether this task's window overlaps another's.
    #[must_use]
    pub fn overlaps(&self, other: &TransportTask) -> bool {
        self.window_start < other.window_end && other.window_start < self.window_end
    }

    /// Short human-readable description (used in error messages).
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} of sample {} ({} -> {}) in [{}, {})",
            self.kind,
            self.sample,
            self.producer,
            self.consumer,
            self.window_start,
            self.window_end
        )
    }
}

/// Extracts all transportation tasks implied by a schedule, in order of their
/// window start times.
///
/// For every cross-device dependency edge:
///
/// * gap ≤ 2·`u_c` → one [`Direct`](TransportKind::Direct) task occupying the
///   last `u_c` seconds before the consumer starts,
/// * gap > 2·`u_c` → a [`Store`](TransportKind::Store) task right after the
///   producer ends (with the storage interval attached) and a
///   [`Fetch`](TransportKind::Fetch) task in the `u_c` seconds before the
///   consumer starts.
///
/// Same-device edges need no chip-level transport and produce no tasks.
#[must_use]
pub fn extract_transport_tasks(
    problem: &ScheduleProblem,
    schedule: &Schedule,
) -> Vec<TransportTask> {
    let graph = problem.graph();
    let uc = problem.transport_time();
    // Per-device sorted operation start times, built once: the store-deadline
    // rule needs "the producing device's next operation" per cross-device
    // edge, and a per-edge scan over the whole schedule is quadratic at
    // 10k-op scale.
    let mut starts_on_device: Vec<Vec<Seconds>> = vec![Vec::new(); problem.devices().len()];
    for assignment in schedule.iter() {
        if let Some(starts) = starts_on_device.get_mut(assignment.device.index()) {
            starts.push(assignment.start);
        }
    }
    for starts in &mut starts_on_device {
        starts.sort_unstable();
    }
    let next_op_on = |device: DeviceId, at: Seconds| -> Seconds {
        starts_on_device
            .get(device.index())
            .and_then(|starts| {
                let idx = starts.partition_point(|&s| s < at);
                starts.get(idx).copied()
            })
            .unwrap_or(Seconds::MAX)
    };
    let mut tasks = Vec::new();
    let mut sample = 0usize;
    for edge in graph.edges() {
        let (Some(parent), Some(child)) = (schedule.get(edge.parent), schedule.get(edge.child))
        else {
            continue;
        };
        if parent.device == child.device {
            continue;
        }
        let gap = child.start.saturating_sub(parent.end);
        if gap > 2 * uc {
            // Store right after the producer ends. The store may slide later
            // as long as the sample is out of the device before the device's
            // next operation and in its cache segment before the fetch.
            let producer_next_op = next_op_on(parent.device, parent.end);
            let store_deadline = (child.start - uc).min(producer_next_op);
            tasks.push(TransportTask {
                sample,
                producer: edge.parent,
                consumer: edge.child,
                from_device: parent.device,
                to_device: child.device,
                kind: TransportKind::Store,
                window_start: parent.end,
                window_end: parent.end + uc,
                storage_interval: Some((parent.end + uc, child.start - uc)),
                earliest_start: parent.end,
                deadline: store_deadline.max(parent.end + uc),
            });
            // Fetch just before the consumer starts (no slack: the sample
            // must arrive exactly when the consumer is ready to take it).
            tasks.push(TransportTask {
                sample,
                producer: edge.parent,
                consumer: edge.child,
                from_device: parent.device,
                to_device: child.device,
                kind: TransportKind::Fetch,
                window_start: child.start - uc,
                window_end: child.start,
                storage_interval: None,
                earliest_start: child.start - uc,
                deadline: child.start,
            });
        } else {
            let start = child.start.saturating_sub(uc).max(parent.end);
            tasks.push(TransportTask {
                sample,
                producer: edge.parent,
                consumer: edge.child,
                from_device: parent.device,
                to_device: child.device,
                kind: TransportKind::Direct,
                window_start: start,
                window_end: start + uc.max(1),
                storage_interval: None,
                earliest_start: parent.end,
                deadline: child.start,
            });
        }
        sample += 1;
    }
    tasks.sort_by_key(|t| (t.window_start, t.sample, t.kind != TransportKind::Store));
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use biochip_assay::{OperationKind, SequencingGraph};

    fn problem_and_schedule() -> (ScheduleProblem, Schedule) {
        // a -> b (short gap, cross device), a -> c (long gap, cross device),
        // a -> d (same device).
        let mut g = SequencingGraph::new("t");
        let a = g.add_operation_with_duration("a", OperationKind::Mix, 10);
        let b = g.add_operation_with_duration("b", OperationKind::Mix, 10);
        let c = g.add_operation_with_duration("c", OperationKind::Mix, 10);
        let d = g.add_operation_with_duration("d", OperationKind::Mix, 10);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(a, c).unwrap();
        g.add_dependency(a, d).unwrap();
        let problem = ScheduleProblem::new(g)
            .with_mixers(2)
            .with_transport_time(5);
        let mut s = Schedule::with_capacity(4);
        s.assign(a, DeviceId(0), 0, 10);
        s.assign(b, DeviceId(1), 15, 25); // gap 5 = uc: direct
        s.assign(c, DeviceId(1), 60, 70); // gap 50: store + fetch
        s.assign(d, DeviceId(0), 25, 35); // same device: nothing
        (problem, s)
    }

    #[test]
    fn direct_store_and_fetch_are_extracted() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        assert_eq!(tasks.len(), 3);
        let kinds: Vec<TransportKind> = tasks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TransportKind::Direct));
        assert!(kinds.contains(&TransportKind::Store));
        assert!(kinds.contains(&TransportKind::Fetch));
    }

    #[test]
    fn store_and_fetch_windows_bracket_the_storage_interval() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        let store = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Store)
            .unwrap();
        let fetch = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Fetch)
            .unwrap();
        assert_eq!(store.window_start, 10);
        assert_eq!(store.window_end, 15);
        assert_eq!(store.storage_interval, Some((15, 55)));
        assert_eq!(fetch.window_start, 55);
        assert_eq!(fetch.window_end, 60);
        assert_eq!(store.sample, fetch.sample);
    }

    #[test]
    fn direct_window_ends_at_consumer_start() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        let direct = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Direct)
            .unwrap();
        assert_eq!(direct.window_start, 10);
        assert_eq!(direct.window_end, 15);
        assert_eq!(direct.deadline, 15);
        assert_eq!(direct.earliest_start, 10);
    }

    #[test]
    fn store_deadline_respects_the_producers_next_operation() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        let store = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Store)
            .unwrap();
        // The producer's device (d0) runs its next operation at t = 25, so
        // the stored sample must be out of the device by then — and in its
        // segment before the fetch starts at t = 55.
        assert_eq!(store.earliest_start, 10);
        assert_eq!(store.deadline, 25);
    }

    #[test]
    fn same_device_edges_produce_no_tasks() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        assert!(tasks.iter().all(|t| t.producer == biochip_assay::OpId(0)));
        // Only two samples travel (b and c); d stays on the device.
        let samples: std::collections::HashSet<usize> = tasks.iter().map(|t| t.sample).collect();
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn tasks_are_sorted_by_window_start() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        for pair in tasks.windows(2) {
            assert!(pair[0].window_start <= pair[1].window_start);
        }
    }

    #[test]
    fn overlap_predicate() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        let store = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Store)
            .unwrap();
        let direct = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Direct)
            .unwrap();
        let fetch = tasks
            .iter()
            .find(|t| t.kind == TransportKind::Fetch)
            .unwrap();
        assert!(store.overlaps(direct)); // both occupy [10, 15)
        assert!(!store.overlaps(fetch));
    }

    #[test]
    fn describe_mentions_kind_and_window() {
        let (p, s) = problem_and_schedule();
        let tasks = extract_transport_tasks(&p, &s);
        let text = tasks[0].describe();
        assert!(text.contains("sample"));
        assert!(text.contains('['));
    }
}
