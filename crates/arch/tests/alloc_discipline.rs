//! Pins the router's steady-state allocation rate.
//!
//! The hot loops (window selection, Dijkstra, segment pricing) run on
//! reusable scratch buffers and dense index tables; the only allocations a
//! routed task should make in steady state are its own result (the path's
//! node/edge vectors), occasional calendar growth and the candidate merge's
//! small heap. This test routes a warm-up batch, then counts allocations
//! over a measured batch through a counting global allocator and fails when
//! the per-task rate regresses past a generous bound — the tripwire for
//! accidentally reintroducing per-task `Vec`/`HashMap` churn.
//!
//! (The counter lives here, in an integration test, because a global
//! allocator must be installed by the final binary — the library itself
//! stays `forbid(unsafe_code)`.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use biochip_arch::{
    place_devices, ConnectionGrid, PlacementOptions, Router, RoutingOptions, TransportKind,
    TransportTask,
};
use biochip_assay::OpId;
use biochip_schedule::DeviceId;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus one Relaxed counter bump —
// every GlobalAlloc contract obligation is delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us, forwarded to System.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come straight from the caller, which got ptr
        // from our alloc (i.e. from System) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn direct_task(sample: usize, from: usize, to: usize, start: u64) -> TransportTask {
    TransportTask {
        sample,
        producer: OpId(0),
        consumer: OpId(1),
        from_device: DeviceId(from),
        to_device: DeviceId(to),
        kind: TransportKind::Direct,
        window_start: start,
        window_end: start + 5,
        storage_interval: None,
        earliest_start: start,
        deadline: start + 25,
    }
}

fn store_fetch_pair(sample: usize, from: usize, to: usize, start: u64) -> [TransportTask; 2] {
    let stored_until = start + 40;
    [
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Store,
            window_start: start,
            window_end: start + 5,
            storage_interval: Some((start + 5, stored_until)),
            earliest_start: start,
            deadline: start + 20,
        },
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Fetch,
            window_start: stored_until,
            window_end: stored_until + 5,
            storage_interval: None,
            earliest_start: stored_until,
            deadline: stored_until + 30,
        },
    ]
}

/// A steady stream of direct, store and fetch tasks whose windows march
/// forward in time (so the calendars grow realistically but tasks stay
/// routable forever).
fn task_stream(count: usize, first_sample: usize, start_offset: u64) -> Vec<TransportTask> {
    let mut tasks = Vec::new();
    let mut sample = first_sample;
    let mut t = start_offset;
    while tasks.len() < count {
        tasks.push(direct_task(sample, 0, 1, t));
        tasks.push(direct_task(sample + 1, 2, 3, t + 7));
        tasks.extend(store_fetch_pair(sample + 2, 1, 2, t + 3));
        sample += 3;
        t += 60;
    }
    tasks.truncate(count);
    tasks
}

#[test]
fn steady_state_routing_stays_allocation_lean() {
    // Side 10 → scale mode: the dense tables, guards and the segment index
    // are all on the measured path.
    let grid = ConnectionGrid::square(10);
    let warmup = task_stream(60, 0, 10);
    let placement = place_devices(&grid, 4, &warmup, &PlacementOptions::default()).unwrap();
    let mut router = Router::new(&grid, &placement, RoutingOptions::default());

    for task in &warmup {
        router.route(task).unwrap_or_else(|e| panic!("warmup: {e}"));
    }

    let measured = task_stream(100, 10_000, 10 + 16 * 60);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for task in &measured {
        router
            .route(task)
            .unwrap_or_else(|e| panic!("measured: {e}"));
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // Generous bound: each task legitimately allocates its result path and
    // the store stage its merge heap; the pre-refactor per-task `HashSet` /
    // `BTreeSet` / full-candidate-vector churn sat an order of magnitude
    // above this.
    let per_task = allocations as f64 / measured.len() as f64;
    assert!(
        per_task <= 48.0,
        "steady-state routing allocates {per_task:.1} times per task \
         ({allocations} allocations over {} tasks) — scratch reuse regressed",
        measured.len()
    );
}
