//! Differential harness: the indexed staged router against the pre-refactor
//! router's committed results.
//!
//! The goldens below were produced by the original implementation
//! (linear-scan `ReservationTable`, full-grid store scans, pairwise
//! `verify`) immediately before the indexed rewrite, on the exact seeded
//! pool defined by [`differential_cases`] and on the paper's Table 2
//! benchmarks. The refactored router must keep every case semantically
//! valid (`Architecture::verify`) with used-edge and valve counts **no
//! worse** than the old router produced — the refactor is allowed to find
//! better chips, never worse ones.

use biochip_arch::{extract_transport_tasks, ArchitectureSynthesizer, SynthesisOptions};
use biochip_assay::random::{self, RandomAssayConfig};
use biochip_assay::{library, SequencingGraph};
use biochip_schedule::{ListScheduler, Schedule, ScheduleProblem, Scheduler, SchedulingStrategy};

/// Assay sizes of the differential pool (mirrors the scheduler's own
/// differential suite: small enough that the pre-refactor router handled
/// every case).
const CASE_SIZES: [usize; 10] = [3, 4, 5, 6, 3, 4, 5, 7, 4, 12];

/// Pre-refactor results per case: `(case, transport_tasks, (n_e, n_v))`.
/// Regenerate only when intentionally re-baselining, with the commit *before*
/// the change under test.
const GOLDEN: [(u64, usize, (usize, usize)); 50] = [
    (0, 0, (0, 0)),
    (1, 1, (2, 2)),
    (2, 1, (2, 2)),
    (3, 0, (0, 0)),
    (4, 0, (0, 0)),
    (5, 2, (6, 8)),
    (6, 0, (0, 0)),
    (7, 4, (5, 7)),
    (8, 1, (2, 2)),
    (9, 0, (0, 0)),
    (10, 0, (0, 0)),
    (11, 1, (2, 2)),
    (12, 0, (0, 0)),
    (13, 5, (16, 26)),
    (14, 0, (0, 0)),
    (15, 0, (0, 0)),
    (16, 2, (4, 6)),
    (17, 2, (4, 4)),
    (18, 0, (0, 0)),
    (19, 7, (10, 15)),
    (20, 0, (0, 0)),
    (21, 0, (0, 0)),
    (22, 0, (0, 0)),
    (23, 1, (2, 2)),
    (24, 0, (0, 0)),
    (25, 1, (2, 2)),
    (26, 2, (4, 4)),
    (27, 0, (0, 0)),
    (28, 1, (2, 2)),
    (29, 7, (17, 27)),
    (30, 0, (0, 0)),
    (31, 0, (0, 0)),
    (32, 2, (6, 8)),
    (33, 0, (0, 0)),
    (34, 0, (0, 0)),
    (35, 1, (2, 2)),
    (36, 0, (0, 0)),
    (37, 1, (2, 2)),
    (38, 1, (2, 2)),
    (39, 0, (0, 0)),
    (40, 0, (0, 0)),
    (41, 1, (2, 2)),
    (42, 0, (0, 0)),
    (43, 4, (8, 12)),
    (44, 0, (0, 0)),
    (45, 0, (0, 0)),
    (46, 0, (0, 0)),
    (47, 1, (2, 2)),
    (48, 0, (0, 0)),
    (49, 4, (5, 7)),
];

/// Pre-refactor Table 2 benchmark results with the fixed inventory below:
/// `(name, transport_tasks, n_e, n_v)`.
const PAPER_GOLDEN: [(&str, usize, usize, usize); 6] = [
    ("RA100", 97, 40, 67),
    ("RA70", 87, 62, 108),
    ("CPA", 35, 10, 10),
    ("RA30", 34, 55, 96),
    ("IVD", 8, 12, 16),
    ("PCR", 4, 6, 6),
];

fn differential_case(case: u64) -> (ScheduleProblem, Schedule) {
    let ops = CASE_SIZES[case as usize % CASE_SIZES.len()];
    let graph = random::generate(&RandomAssayConfig::new(ops, 0xA2C4 + case).with_layer_width(3));
    let mixers = 1 + (case as usize) % 3;
    let uc = 1 + case % 7;
    let problem = ScheduleProblem::new(graph)
        .with_mixers(mixers)
        .with_detectors(1)
        .with_transport_time(uc);
    let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
        .schedule(&problem)
        .unwrap_or_else(|e| panic!("case {case}: scheduling failed: {e}"));
    (problem, schedule)
}

fn paper_case(graph: SequencingGraph) -> (ScheduleProblem, Schedule) {
    let problem = ScheduleProblem::new(graph)
        .with_mixers(4)
        .with_detectors(2)
        .with_heaters(1);
    let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
        .schedule(&problem)
        .expect("paper benchmarks schedule");
    (problem, schedule)
}

#[test]
fn seeded_small_assays_stay_no_worse_than_the_pre_refactor_goldens() {
    for (case, golden_tasks, golden) in GOLDEN {
        let (problem, schedule) = differential_case(case);
        let tasks = extract_transport_tasks(&problem, &schedule);
        assert_eq!(
            tasks.len(),
            golden_tasks,
            "case {case}: transport-task extraction diverged from the golden run"
        );
        let (golden_edges, golden_valves) = golden;
        let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| {
                panic!("case {case}: the pre-refactor router synthesized this, new one failed: {e}")
            });
        arch.verify()
            .unwrap_or_else(|e| panic!("case {case}: verify failed: {e}"));
        assert!(
            arch.used_edge_count() <= golden_edges,
            "case {case}: n_e regressed: {} > golden {golden_edges}",
            arch.used_edge_count()
        );
        assert!(
            arch.valve_count() <= golden_valves,
            "case {case}: n_v regressed: {} > golden {golden_valves}",
            arch.valve_count()
        );
        // Every routed task matches an extracted task and storage pairs up.
        assert_eq!(arch.routes().len(), tasks.len(), "case {case}");
    }
}

#[test]
fn paper_benchmarks_stay_no_worse_than_the_pre_refactor_goldens() {
    for (name, golden_tasks, golden_edges, golden_valves) in PAPER_GOLDEN {
        let graph = library::paper_benchmarks()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, g)| g)
            .expect("benchmark exists");
        let (problem, schedule) = paper_case(graph);
        let tasks = extract_transport_tasks(&problem, &schedule);
        assert_eq!(
            tasks.len(),
            golden_tasks,
            "{name}: task extraction diverged"
        );
        let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
        arch.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            arch.used_edge_count() <= golden_edges,
            "{name}: n_e regressed: {} > golden {golden_edges}",
            arch.used_edge_count()
        );
        assert!(
            arch.valve_count() <= golden_valves,
            "{name}: n_v regressed: {} > golden {golden_valves}",
            arch.valve_count()
        );
    }
}

#[test]
fn single_start_parallel_synthesis_reproduces_the_pre_parallel_goldens() {
    // K = 1 multi-start must reproduce the committed pre-parallel results
    // exactly — the default `starts: 1` runs the historical RNG stream —
    // and the thread count must not matter either: the same `(n_e, n_v)`
    // bounds that pin the sequential router pin the 8-thread router.
    use biochip_arch::Parallelism;
    for (name, golden_tasks, golden_edges, golden_valves) in PAPER_GOLDEN {
        let graph = library::paper_benchmarks()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, g)| g)
            .expect("benchmark exists");
        let (problem, schedule) = paper_case(graph);
        assert_eq!(
            extract_transport_tasks(&problem, &schedule).len(),
            golden_tasks,
            "{name}"
        );
        let sequential = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| panic!("{name}: sequential synthesis failed: {e}"));
        let threaded = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .with_parallelism(Parallelism::with_threads(8))
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| panic!("{name}: threaded synthesis failed: {e}"));
        assert_eq!(
            threaded, sequential,
            "{name}: 8-thread chip differs from the sequential chip"
        );
        assert!(threaded.used_edge_count() <= golden_edges, "{name}");
        assert!(threaded.valve_count() <= golden_valves, "{name}");
    }
}

#[test]
fn refactored_router_is_deterministic_across_the_pool() {
    for case in [5, 13, 19, 29, 43] {
        let (problem, schedule) = differential_case(case);
        let a = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap();
        let b = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap();
        assert_eq!(a, b, "case {case}: synthesis must be deterministic");
    }
}
