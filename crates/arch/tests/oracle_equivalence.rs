//! Property: the routing oracle's assists never change what gets routed.
//!
//! The oracle is allowed to *skip* work — reject a search whose destination
//! provably cannot be entered, snap the admissible bound to ∞ for walled-off
//! transit nodes, prune store-claim candidates outside the producer's
//! reachable region — but every skip must be of work the exact search would
//! have run and discarded. In particular the `OrderedCandidates` lazy merge
//! must surface candidate windows in the identical order with assists on or
//! off: the first accepted candidate (the one that becomes the route) and
//! the count of candidates tried before it are part of the committed
//! output's provenance.
//!
//! Each case routes one randomized task stream twice over the same scale
//! grid and placement — assists disarmed vs. armed — and demands:
//!
//! - bit-identical results per task ([`RoutedTransport`] equality, and
//!   failures at the same positions with the same message);
//! - identical `windows_tried`, `segments_priced`, `tasks_routed` and
//!   `postponed_tasks` (the merge order and acceptance decisions matched);
//! - assists-side `path_searches` / `nodes_expanded` no higher than the
//!   baseline (the assists may only remove work, never add it).

use biochip_arch::{
    place_devices, ConnectionGrid, PlacementOptions, Router, RoutingOptions, TransportKind,
    TransportTask,
};
use biochip_assay::OpId;
use biochip_schedule::DeviceId;
use proptest::prelude::*;

const DEVICES: usize = 4;

/// One generated stream step: either a direct transport or a store/fetch
/// pair between two (forced-distinct) devices, `stride` ticks after the
/// previous step.
type Step = (bool, usize, usize, u64, u64);

fn direct_task(sample: usize, from: usize, to: usize, start: u64) -> TransportTask {
    TransportTask {
        sample,
        producer: OpId(0),
        consumer: OpId(1),
        from_device: DeviceId(from),
        to_device: DeviceId(to),
        kind: TransportKind::Direct,
        window_start: start,
        window_end: start + 5,
        storage_interval: None,
        earliest_start: start,
        deadline: start + 25,
    }
}

fn store_fetch_pair(
    sample: usize,
    from: usize,
    to: usize,
    start: u64,
    hold: u64,
) -> [TransportTask; 2] {
    let stored_until = start + 5 + hold;
    [
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Store,
            window_start: start,
            window_end: start + 5,
            storage_interval: Some((start + 5, stored_until)),
            earliest_start: start,
            deadline: start + 20,
        },
        TransportTask {
            sample,
            producer: OpId(0),
            consumer: OpId(1),
            from_device: DeviceId(from),
            to_device: DeviceId(to),
            kind: TransportKind::Fetch,
            window_start: stored_until,
            window_end: stored_until + 5,
            storage_interval: None,
            earliest_start: stored_until,
            deadline: stored_until + 30,
        },
    ]
}

/// Expands the generated steps into a task stream ordered by window start
/// (the contract of [`Router::route`]; the stable sort keeps every store
/// ahead of its own fetch, whose window opens strictly later).
fn build_stream(steps: &[Step]) -> Vec<TransportTask> {
    let mut tasks = Vec::new();
    let mut t = 10u64;
    for (i, &(store, from, to, stride, hold)) in steps.iter().enumerate() {
        let to = if to == from { (to + 1) % DEVICES } else { to };
        if store {
            tasks.extend(store_fetch_pair(i, from, to, t, 20 + hold));
        } else {
            tasks.push(direct_task(i, from, to, t));
        }
        t += 8 + stride;
    }
    tasks.sort_by_key(|task| task.window_start);
    tasks
}

/// Routes the stream on a fresh router, returning per-task results (errors
/// flattened to strings) and the final work counters.
fn route_stream(
    grid: &ConnectionGrid,
    placement: &biochip_arch::Placement,
    tasks: &[TransportTask],
    assists: bool,
) -> (
    Vec<Result<biochip_arch::RoutedTransport, String>>,
    biochip_arch::RouterStats,
) {
    let mut router =
        Router::new(grid, placement, RoutingOptions::default()).with_oracle_assists(assists);
    let results = tasks
        .iter()
        .map(|task| router.route(task).map_err(|e| e.to_string()))
        .collect();
    (results, router.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn oracle_assists_never_change_the_routed_stream(
        steps in proptest::collection::vec((proptest::bool::ANY, 0..DEVICES, 0..DEVICES, 0..24u64, 0..40u64), 6..32),
    ) {
        let tasks = build_stream(&steps);
        // Side 10 ≥ the scale threshold, so the assists genuinely arm.
        let grid = ConnectionGrid::square(10);
        let placement = place_devices(&grid, DEVICES, &tasks, &PlacementOptions::default()).unwrap();

        let (baseline, base_stats) = route_stream(&grid, &placement, &tasks, false);
        let (assisted, oracle_stats) = route_stream(&grid, &placement, &tasks, true);

        // The streams are bit-identical, including any failures.
        prop_assert_eq!(&assisted, &baseline);

        // The lazy merge surfaced the same candidates in the same order and
        // the store stage priced the same segments.
        prop_assert_eq!(oracle_stats.windows_tried, base_stats.windows_tried);
        prop_assert_eq!(oracle_stats.segments_priced, base_stats.segments_priced);
        prop_assert_eq!(oracle_stats.tasks_routed, base_stats.tasks_routed);
        prop_assert_eq!(oracle_stats.postponed_tasks, base_stats.postponed_tasks);

        // Assists only ever remove work.
        prop_assert!(oracle_stats.path_searches <= base_stats.path_searches);
        prop_assert!(oracle_stats.nodes_expanded <= base_stats.nodes_expanded);

        // A disarmed router must not report oracle interventions.
        prop_assert_eq!(base_stats.oracle_rejected_searches, 0);
        prop_assert_eq!(base_stats.oracle_tightenings, 0);
        prop_assert_eq!(base_stats.oracle_pruned_candidates, 0);
    }
}
