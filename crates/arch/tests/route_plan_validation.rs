//! Runs the independent route-plan validator against every differential
//! golden.
//!
//! [`validate_route_plan`] re-checks a synthesized chip's committed routes
//! against calendars rebuilt from scratch — deliberately sharing no code
//! with the router's `ReservationTable` or with `Architecture::verify`
//! (see `crates/arch/src/route_plan.rs`, which also carries forged-plan
//! negative tests). This suite points it at the differential harness's
//! whole pool — the 50 seeded small assays and the paper's Table 2
//! benchmarks, synthesized by the current router — so any router
//! experiment (oracle pruning, replay reuse, calendar fast paths) that
//! breaks reachability, conflict-freedom or storage exclusivity trips an
//! independent checker, not just the code it may share a bug with.

use biochip_arch::{
    extract_transport_tasks, validate_route_plan, ArchitectureSynthesizer, SynthesisOptions,
};
use biochip_assay::library;
use biochip_assay::random::{self, RandomAssayConfig};
use biochip_schedule::{ListScheduler, Schedule, ScheduleProblem, Scheduler, SchedulingStrategy};

/// The differential harness's seeded pool (same seeds, sizes and knobs as
/// `differential.rs` — the validator must hold on every golden case).
fn differential_case(case: u64) -> (ScheduleProblem, Schedule) {
    const CASE_SIZES: [usize; 10] = [3, 4, 5, 6, 3, 4, 5, 7, 4, 12];
    let ops = CASE_SIZES[case as usize % CASE_SIZES.len()];
    let graph = random::generate(&RandomAssayConfig::new(ops, 0xA2C4 + case).with_layer_width(3));
    let mixers = 1 + (case as usize) % 3;
    let uc = 1 + case % 7;
    let problem = ScheduleProblem::new(graph)
        .with_mixers(mixers)
        .with_detectors(1)
        .with_transport_time(uc);
    let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
        .schedule(&problem)
        .unwrap_or_else(|e| panic!("case {case}: scheduling failed: {e}"));
    (problem, schedule)
}

#[test]
fn every_seeded_differential_golden_has_a_valid_route_plan() {
    let mut routed_cases = 0;
    for case in 0..50u64 {
        let (problem, schedule) = differential_case(case);
        if extract_transport_tasks(&problem, &schedule).is_empty() {
            continue;
        }
        let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| panic!("case {case}: synthesis failed: {e}"));
        validate_route_plan(&arch).unwrap_or_else(|e| panic!("case {case}: {e}"));
        routed_cases += 1;
    }
    assert!(routed_cases > 10, "the pool lost its routed cases");
}

#[test]
fn every_paper_benchmark_has_a_valid_route_plan() {
    for (name, graph) in library::paper_benchmarks() {
        let problem = ScheduleProblem::new(graph)
            .with_mixers(4)
            .with_detectors(2)
            .with_heaters(1);
        let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
            .schedule(&problem)
            .unwrap_or_else(|e| panic!("{name}: scheduling failed: {e}"));
        let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap_or_else(|e| panic!("{name}: synthesis failed: {e}"));
        validate_route_plan(&arch).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
