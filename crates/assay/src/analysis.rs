//! Structural analyses of sequencing graphs used by the scheduler and the
//! architectural synthesis.

use std::collections::HashMap;

use crate::graph::{OpId, SequencingGraph};
use crate::ops::DeviceClass;
use crate::Seconds;

/// Per-level statistics of a sequencing graph (operations grouped by their
/// as-soon-as-possible level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// `levels[k]` = ids of device operations whose ASAP level is `k`.
    pub levels: Vec<Vec<OpId>>,
}

impl LevelProfile {
    /// Maximum number of device operations on any level — an upper bound on
    /// how many devices can ever be busy simultaneously.
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of levels (equals the device-operation depth of the graph).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Computes the ASAP level of every device operation (inputs/outputs are
/// level-less and omitted).
///
/// Level 0 contains the device operations all of whose parents are inputs (or
/// that have no parents at all).
#[must_use]
pub fn level_profile(graph: &SequencingGraph) -> LevelProfile {
    let Ok(order) = graph.topological_order() else {
        return LevelProfile { levels: Vec::new() };
    };
    let mut level: Vec<usize> = vec![0; graph.num_operations()];
    let mut max_level = 0usize;
    for &id in &order {
        let own = usize::from(graph.operation(id).needs_device());
        let base = graph
            .parents(id)
            .iter()
            .map(|p| level[p.index()])
            .max()
            .unwrap_or(0);
        level[id.index()] = base + own;
        if graph.operation(id).needs_device() {
            max_level = max_level.max(level[id.index()]);
        }
    }
    let mut levels = vec![Vec::new(); max_level];
    for id in graph.ids() {
        if graph.operation(id).needs_device() {
            levels[level[id.index()] - 1].push(id);
        }
    }
    LevelProfile { levels }
}

/// Number of device operations per device class.
#[must_use]
pub fn device_demand(graph: &SequencingGraph) -> HashMap<DeviceClass, usize> {
    let mut demand = HashMap::new();
    for (_, op) in graph.iter() {
        if op.needs_device() {
            *demand.entry(op.kind.device_class()).or_insert(0) += 1;
        }
    }
    demand
}

/// Total execution time (sum of durations) per device class.
#[must_use]
pub fn work_per_class(graph: &SequencingGraph) -> HashMap<DeviceClass, Seconds> {
    let mut work = HashMap::new();
    for (_, op) in graph.iter() {
        if op.needs_device() {
            *work.entry(op.kind.device_class()).or_insert(0) += op.duration;
        }
    }
    work
}

/// A lower bound on the assay execution time given `devices_per_class`
/// devices of each class: the maximum of the critical path and, per class,
/// `ceil(total work / device count)`.
///
/// Classes missing from `devices_per_class` are assumed to have exactly one
/// device.
#[must_use]
pub fn makespan_lower_bound(
    graph: &SequencingGraph,
    devices_per_class: &HashMap<DeviceClass, usize>,
) -> Seconds {
    let mut bound = graph.critical_path();
    for (class, work) in work_per_class(graph) {
        let count = devices_per_class.get(&class).copied().unwrap_or(1).max(1) as u64;
        bound = bound.max(work.div_ceil(count));
    }
    bound
}

/// A lower bound on the number of fluid samples that must be stored
/// simultaneously, assuming operations execute level by level.
///
/// For each level boundary the bound counts dependency edges that cross the
/// boundary by more than one level (the producing level finishes before the
/// consuming level starts, so the sample has to wait somewhere). This matches
/// the paper's observation that the schedule determines storage demand; the
/// level-synchronous assumption makes it a heuristic estimate rather than an
/// exact optimum.
#[must_use]
pub fn storage_pressure_estimate(graph: &SequencingGraph) -> usize {
    let profile = level_profile(graph);
    if profile.depth() == 0 {
        return 0;
    }
    // Level (1-based) of every device op; inputs get level 0.
    let mut level_of: Vec<usize> = vec![0; graph.num_operations()];
    for (k, level) in profile.levels.iter().enumerate() {
        for &id in level {
            level_of[id.index()] = k + 1;
        }
    }
    let mut max_pressure = 0usize;
    for boundary in 1..profile.depth() {
        let crossing = graph
            .edges()
            .iter()
            .filter(|e| {
                graph.operation(e.parent).needs_device()
                    && graph.operation(e.child).needs_device()
                    && level_of[e.parent.index()] <= boundary
                    && level_of[e.child.index()] > boundary + 1
            })
            .count();
        max_pressure = max_pressure.max(crossing);
    }
    max_pressure
}

/// Summary statistics of an assay used in experiment reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssaySummary {
    /// Assay name.
    pub name: String,
    /// Number of device operations (the `|O|` column of Table 2).
    pub device_operations: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// Device-operation depth.
    pub depth: usize,
    /// Maximum level width.
    pub max_width: usize,
    /// Critical path length in seconds.
    pub critical_path: Seconds,
    /// Total device work in seconds.
    pub total_work: Seconds,
    /// Level-synchronous storage pressure estimate.
    pub storage_pressure: usize,
}

/// Computes an [`AssaySummary`] for the given graph.
#[must_use]
pub fn summarize(graph: &SequencingGraph) -> AssaySummary {
    let profile = level_profile(graph);
    AssaySummary {
        name: graph.name().to_owned(),
        device_operations: graph.device_operations().len(),
        edges: graph.num_edges(),
        depth: graph.depth(),
        max_width: profile.max_width(),
        critical_path: graph.critical_path(),
        total_work: graph.total_work(),
        storage_pressure: storage_pressure_estimate(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::ops::OperationKind;

    #[test]
    fn pcr_level_profile() {
        let pcr = library::pcr();
        let profile = level_profile(&pcr);
        assert_eq!(profile.depth(), 3);
        assert_eq!(profile.levels[0].len(), 4);
        assert_eq!(profile.levels[1].len(), 2);
        assert_eq!(profile.levels[2].len(), 1);
        assert_eq!(profile.max_width(), 4);
    }

    #[test]
    fn device_demand_counts_classes() {
        let ivd = library::ivd();
        let demand = device_demand(&ivd);
        assert_eq!(demand.get(&DeviceClass::Mixer), Some(&6));
        assert_eq!(demand.get(&DeviceClass::Detector), Some(&6));
        assert_eq!(demand.get(&DeviceClass::Port), None);
    }

    #[test]
    fn makespan_lower_bound_respects_both_terms() {
        let pcr = library::pcr();
        // With one mixer the bound is the total work (420 s); with many
        // mixers the bound is the critical path (180 s).
        let mut one = HashMap::new();
        one.insert(DeviceClass::Mixer, 1);
        assert_eq!(makespan_lower_bound(&pcr, &one), 420);
        let mut many = HashMap::new();
        many.insert(DeviceClass::Mixer, 8);
        assert_eq!(makespan_lower_bound(&pcr, &many), 180);
    }

    #[test]
    fn missing_class_defaults_to_one_device() {
        let pcr = library::pcr();
        let bound = makespan_lower_bound(&pcr, &HashMap::new());
        assert_eq!(bound, 420);
    }

    #[test]
    fn storage_pressure_zero_for_chain() {
        let mut g = SequencingGraph::new("chain");
        let a = g.add_operation_with_duration("a", OperationKind::Mix, 10);
        let b = g.add_operation_with_duration("b", OperationKind::Mix, 10);
        let c = g.add_operation_with_duration("c", OperationKind::Mix, 10);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        assert_eq!(storage_pressure_estimate(&g), 0);
    }

    #[test]
    fn storage_pressure_detects_long_edges() {
        // a -> b -> c -> d and a long edge a -> d: the sample from `a` must
        // wait while b and c execute.
        let mut g = SequencingGraph::new("skip");
        let a = g.add_operation_with_duration("a", OperationKind::Mix, 10);
        let b = g.add_operation_with_duration("b", OperationKind::Mix, 10);
        let c = g.add_operation_with_duration("c", OperationKind::Mix, 10);
        let d = g.add_operation_with_duration("d", OperationKind::Mix, 10);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        g.add_dependency(c, d).unwrap();
        g.add_dependency(a, d).unwrap();
        assert!(storage_pressure_estimate(&g) >= 1);
    }

    #[test]
    fn summaries_of_benchmarks() {
        for (name, g) in library::paper_benchmarks() {
            let s = summarize(&g);
            assert_eq!(s.name, g.name());
            assert!(s.device_operations > 0, "{name}");
            assert!(s.critical_path > 0, "{name}");
            assert!(s.total_work >= s.critical_path, "{name}");
            assert!(s.depth >= 1, "{name}");
            assert!(s.max_width >= 1, "{name}");
        }
    }
}
