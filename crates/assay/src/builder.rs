//! Ergonomic builder for sequencing graphs.

use crate::error::GraphError;
use crate::graph::{OpId, SequencingGraph};
use crate::ops::{Operation, OperationKind};
use crate::Seconds;

/// Builder for [`SequencingGraph`] with name-based edge insertion and eager
/// duplicate checking.
///
/// # Example
///
/// ```
/// use biochip_assay::{AssayBuilder, OperationKind};
///
/// let assay = AssayBuilder::new("mini")
///     .operation("m1", OperationKind::Mix, 30)?
///     .operation("m2", OperationKind::Mix, 30)?
///     .operation("m3", OperationKind::Mix, 30)?
///     .dependency("m1", "m3")?
///     .dependency("m2", "m3")?
///     .build()?;
/// assert_eq!(assay.num_operations(), 3);
/// # Ok::<(), biochip_assay::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AssayBuilder {
    graph: SequencingGraph,
}

impl AssayBuilder {
    /// Starts building an assay with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AssayBuilder {
            graph: SequencingGraph::new(name),
        }
    }

    /// Adds an operation with an explicit duration.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateName`] if an operation with the same
    /// name was already added.
    pub fn operation(
        mut self,
        name: impl Into<String>,
        kind: OperationKind,
        duration: Seconds,
    ) -> Result<Self, GraphError> {
        let name = name.into();
        if self.graph.id_by_name(&name).is_some() {
            return Err(GraphError::DuplicateName { name });
        }
        self.graph
            .add_operation(Operation::new(name, kind, duration));
        Ok(self)
    }

    /// Adds an operation with the kind's default duration.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateName`] if the name already exists.
    pub fn operation_default(
        self,
        name: impl Into<String>,
        kind: OperationKind,
    ) -> Result<Self, GraphError> {
        let duration = kind.default_duration();
        self.operation(name, kind, duration)
    }

    /// Adds a dependency edge between two named operations.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownName`] if either name is unknown, or any
    /// error of [`SequencingGraph::add_dependency`].
    pub fn dependency(mut self, parent: &str, child: &str) -> Result<Self, GraphError> {
        let p = self
            .graph
            .id_by_name(parent)
            .ok_or_else(|| GraphError::UnknownName {
                name: parent.to_owned(),
            })?;
        let c = self
            .graph
            .id_by_name(child)
            .ok_or_else(|| GraphError::UnknownName {
                name: child.to_owned(),
            })?;
        self.graph.add_dependency(p, c)?;
        Ok(self)
    }

    /// Returns the id of a previously added operation, if any.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<OpId> {
        self.graph.id_by_name(name)
    }

    /// Finishes building, validating the resulting graph.
    ///
    /// # Errors
    ///
    /// Returns any validation error of [`SequencingGraph::validate`].
    pub fn build(self) -> Result<SequencingGraph, GraphError> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Finishes building without validation (useful for intentionally
    /// constructing invalid graphs in tests).
    #[must_use]
    pub fn build_unchecked(self) -> SequencingGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_happy_path() {
        let g = AssayBuilder::new("t")
            .operation("a", OperationKind::Mix, 10)
            .unwrap()
            .operation("b", OperationKind::Mix, 20)
            .unwrap()
            .dependency("a", "b")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(g.num_operations(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn builder_rejects_duplicate_names_eagerly() {
        let err = AssayBuilder::new("t")
            .operation("a", OperationKind::Mix, 10)
            .unwrap()
            .operation("a", OperationKind::Mix, 10)
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateName { .. }));
    }

    #[test]
    fn builder_rejects_unknown_edge_names() {
        let err = AssayBuilder::new("t")
            .operation("a", OperationKind::Mix, 10)
            .unwrap()
            .dependency("a", "zzz")
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownName { .. }));
    }

    #[test]
    fn build_validates_cycles() {
        let err = AssayBuilder::new("t")
            .operation("a", OperationKind::Mix, 10)
            .unwrap()
            .operation("b", OperationKind::Mix, 10)
            .unwrap()
            .dependency("a", "b")
            .unwrap()
            .dependency("b", "a")
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::CycleDetected);
    }

    #[test]
    fn build_unchecked_skips_validation() {
        let g = AssayBuilder::new("t").build_unchecked();
        assert!(g.is_empty());
    }

    #[test]
    fn id_of_returns_ids() {
        let b = AssayBuilder::new("t")
            .operation("a", OperationKind::Mix, 10)
            .unwrap();
        assert!(b.id_of("a").is_some());
        assert!(b.id_of("x").is_none());
    }
}
