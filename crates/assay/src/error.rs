//! Error type for sequencing-graph construction and validation.

use std::fmt;

use crate::graph::OpId;

/// Errors produced while constructing or validating a [`SequencingGraph`].
///
/// [`SequencingGraph`]: crate::SequencingGraph
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An operation id was used that does not exist in the graph.
    UnknownOperation {
        /// The offending id.
        id: OpId,
    },
    /// An operation name was referenced that does not exist in the graph.
    UnknownName {
        /// The offending name.
        name: String,
    },
    /// Two operations with the same name were added.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The same dependency edge was added twice.
    DuplicateEdge {
        /// Parent operation.
        parent: OpId,
        /// Child operation.
        child: OpId,
    },
    /// An edge would connect an operation to itself.
    SelfLoop {
        /// The operation in question.
        id: OpId,
    },
    /// The dependency relation contains a cycle, so the graph is not a DAG.
    CycleDetected,
    /// A non-input operation has no parents, or an input operation has parents.
    InvalidRole {
        /// The operation in question.
        id: OpId,
        /// Explanation of the violated rule.
        reason: String,
    },
    /// The graph is empty.
    Empty,
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownOperation { id } => {
                write!(f, "unknown operation id {id}")
            }
            GraphError::UnknownName { name } => {
                write!(f, "unknown operation name `{name}`")
            }
            GraphError::DuplicateName { name } => {
                write!(f, "duplicate operation name `{name}`")
            }
            GraphError::DuplicateEdge { parent, child } => {
                write!(f, "duplicate dependency edge {parent} -> {child}")
            }
            GraphError::SelfLoop { id } => {
                write!(f, "operation {id} cannot depend on itself")
            }
            GraphError::CycleDetected => {
                write!(f, "sequencing graph contains a dependency cycle")
            }
            GraphError::InvalidRole { id, reason } => {
                write!(f, "operation {id} has an invalid role: {reason}")
            }
            GraphError::Empty => write!(f, "sequencing graph contains no operations"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = GraphError::DuplicateName {
            name: "o1".to_owned(),
        };
        assert!(err.to_string().contains("o1"));

        let err = GraphError::Parse {
            line: 4,
            message: "bad token".to_owned(),
        };
        let text = err.to_string();
        assert!(text.contains("line 4"));
        assert!(text.contains("bad token"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
