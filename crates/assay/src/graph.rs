//! The sequencing graph data structure.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::error::GraphError;
use crate::ops::{Operation, OperationKind};
use crate::Seconds;

/// Identifier of an operation within a [`SequencingGraph`].
///
/// Ids are dense indices assigned in insertion order, which makes them usable
/// directly as `Vec` indices in downstream algorithms.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OpId(pub usize);

impl OpId {
    /// The underlying dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

impl From<usize> for OpId {
    fn from(value: usize) -> Self {
        OpId(value)
    }
}

/// A dependency edge `parent -> child`: the child consumes the fluid sample
/// produced by the parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DependencyEdge {
    /// Producer of the intermediate fluid sample.
    pub parent: OpId,
    /// Consumer of the intermediate fluid sample.
    pub child: OpId,
}

impl DependencyEdge {
    /// Creates a new dependency edge.
    #[must_use]
    pub fn new(parent: OpId, child: OpId) -> Self {
        DependencyEdge { parent, child }
    }
}

/// A directed acyclic graph of fluidic operations describing a bioassay.
///
/// Nodes are [`Operation`]s, edges are producer → consumer dependencies.
/// The structure is append-only: operations and edges can be added but not
/// removed, which keeps [`OpId`]s stable.
///
/// # Example
///
/// ```
/// use biochip_assay::{OperationKind, SequencingGraph};
///
/// let mut g = SequencingGraph::new("demo");
/// let a = g.add_operation_with_duration("a", OperationKind::Mix, 30);
/// let b = g.add_operation_with_duration("b", OperationKind::Mix, 30);
/// g.add_dependency(a, b)?;
/// assert_eq!(g.children(a), &[b]);
/// assert!(g.validate().is_ok());
/// # Ok::<(), biochip_assay::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencingGraph {
    name: String,
    operations: Vec<Operation>,
    /// children[i] = ids of operations that consume the output of operation i.
    children: Vec<Vec<OpId>>,
    /// parents[i] = ids of operations whose output operation i consumes.
    parents: Vec<Vec<OpId>>,
    edges: Vec<DependencyEdge>,
    name_index: HashMap<String, OpId>,
}

// Hand-written (de)serialization: the canonical JSON form carries only
// `{name, operations, edges}`; the adjacency lists and the name index are
// derived state. Rebuilding through `add_operation`/`add_dependency` means
// malformed documents (out-of-range edge endpoints, self-loops, duplicate
// edges) surface as clean errors instead of corrupting invariants and
// panicking later.
impl Serialize for SequencingGraph {
    fn to_json(&self) -> serde::Json {
        serde::Json::object([
            ("name", self.name.to_json()),
            ("operations", self.operations.to_json()),
            ("edges", self.edges.to_json()),
        ])
    }
}

impl Deserialize for SequencingGraph {
    fn from_json(value: &serde::Json) -> Result<Self, serde::JsonError> {
        let name: String = value.field("name")?;
        let operations: Vec<Operation> = value.field("operations")?;
        let edges: Vec<DependencyEdge> = value.field("edges")?;
        let mut graph = SequencingGraph::new(name);
        for op in operations {
            graph.add_operation(op);
        }
        for edge in edges {
            graph
                .add_dependency(edge.parent, edge.child)
                .map_err(|e| serde::JsonError::new(format!("invalid edge {edge:?}: {e}")))?;
        }
        Ok(graph)
    }
}

impl SequencingGraph {
    /// Creates an empty sequencing graph with the given assay name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SequencingGraph {
            name: name.into(),
            operations: Vec::new(),
            children: Vec::new(),
            parents: Vec::new(),
            edges: Vec::new(),
            name_index: HashMap::new(),
        }
    }

    /// The assay name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an operation, returning its id.
    ///
    /// Duplicate names are allowed at insertion time but rejected by
    /// [`validate`](Self::validate); use [`AssayBuilder`](crate::AssayBuilder)
    /// for eager checking.
    pub fn add_operation(&mut self, op: Operation) -> OpId {
        let id = OpId(self.operations.len());
        self.name_index.entry(op.name.clone()).or_insert(id);
        self.operations.push(op);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    /// Convenience: adds an operation from name/kind/duration.
    pub fn add_operation_with_duration(
        &mut self,
        name: impl Into<String>,
        kind: OperationKind,
        duration: Seconds,
    ) -> OpId {
        self.add_operation(Operation::new(name, kind, duration))
    }

    /// Convenience: adds an operation with the kind's default duration.
    pub fn add_operation_default(&mut self, name: impl Into<String>, kind: OperationKind) -> OpId {
        self.add_operation(Operation::with_default_duration(name, kind))
    }

    /// Adds a dependency edge `parent -> child`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownOperation`] if either endpoint does not
    /// exist, [`GraphError::SelfLoop`] if `parent == child` and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_dependency(&mut self, parent: OpId, child: OpId) -> Result<(), GraphError> {
        if parent.index() >= self.operations.len() {
            return Err(GraphError::UnknownOperation { id: parent });
        }
        if child.index() >= self.operations.len() {
            return Err(GraphError::UnknownOperation { id: child });
        }
        if parent == child {
            return Err(GraphError::SelfLoop { id: parent });
        }
        if self.children[parent.index()].contains(&child) {
            return Err(GraphError::DuplicateEdge { parent, child });
        }
        self.children[parent.index()].push(child);
        self.parents[child.index()].push(parent);
        self.edges.push(DependencyEdge::new(parent, child));
        Ok(())
    }

    /// Looks up an operation id by name.
    #[must_use]
    pub fn id_by_name(&self, name: &str) -> Option<OpId> {
        self.name_index.get(name).copied()
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn operation(&self, id: OpId) -> &Operation {
        &self.operations[id.index()]
    }

    /// The operation with the given id, or `None` if out of range.
    #[must_use]
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.operations.get(id.index())
    }

    /// Number of operations.
    #[must_use]
    pub fn num_operations(&self) -> usize {
        self.operations.len()
    }

    /// Number of dependency edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Iterator over `(id, operation)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.operations
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId(i), op))
    }

    /// All operation ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.operations.len()).map(OpId)
    }

    /// All dependency edges in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[DependencyEdge] {
        &self.edges
    }

    /// Children (consumers) of the given operation.
    #[must_use]
    pub fn children(&self, id: OpId) -> &[OpId] {
        &self.children[id.index()]
    }

    /// Parents (producers) of the given operation.
    #[must_use]
    pub fn parents(&self, id: OpId) -> &[OpId] {
        &self.parents[id.index()]
    }

    /// Operations with no parents (assay inputs or root mixes).
    #[must_use]
    pub fn roots(&self) -> Vec<OpId> {
        self.ids()
            .filter(|&id| self.parents(id).is_empty())
            .collect()
    }

    /// Operations with no children (assay outputs or final operations).
    #[must_use]
    pub fn sinks(&self) -> Vec<OpId> {
        self.ids()
            .filter(|&id| self.children(id).is_empty())
            .collect()
    }

    /// Ids of operations that occupy a functional device (mix/dilute/heat/detect).
    #[must_use]
    pub fn device_operations(&self) -> Vec<OpId> {
        self.iter()
            .filter(|(_, op)| op.needs_device())
            .map(|(id, _)| id)
            .collect()
    }

    /// A topological ordering of all operations.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the dependency relation is
    /// cyclic.
    pub fn topological_order(&self) -> Result<Vec<OpId>, GraphError> {
        let n = self.operations.len();
        let mut indegree = vec![0usize; n];
        for edge in &self.edges {
            indegree[edge.child.index()] += 1;
        }
        let mut queue: VecDeque<OpId> = (0..n).filter(|&i| indegree[i] == 0).map(OpId).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &child in self.children(id) {
                indegree[child.index()] -= 1;
                if indegree[child.index()] == 0 {
                    queue.push_back(child);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::CycleDetected)
        }
    }

    /// Whether the dependency relation is acyclic.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_ok()
    }

    /// Depth of the graph: number of operations on the longest dependency
    /// chain, counting only operations that occupy a device.
    #[must_use]
    pub fn depth(&self) -> usize {
        let Ok(order) = self.topological_order() else {
            return 0;
        };
        let mut level = vec![0usize; self.operations.len()];
        let mut max = 0;
        for &id in &order {
            let own = usize::from(self.operation(id).needs_device());
            let parent_level = self
                .parents(id)
                .iter()
                .map(|p| level[p.index()])
                .max()
                .unwrap_or(0);
            level[id.index()] = parent_level + own;
            max = max.max(level[id.index()]);
        }
        max
    }

    /// Length of the critical path in seconds: the minimum possible execution
    /// time with unlimited devices and zero transport time.
    #[must_use]
    pub fn critical_path(&self) -> Seconds {
        let Ok(order) = self.topological_order() else {
            return 0;
        };
        let mut finish = vec![0u64; self.operations.len()];
        let mut max = 0;
        for &id in &order {
            let start = self
                .parents(id)
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(0);
            finish[id.index()] = start + self.operation(id).duration;
            max = max.max(finish[id.index()]);
        }
        max
    }

    /// Total work: sum of the durations of all device operations.
    #[must_use]
    pub fn total_work(&self) -> Seconds {
        self.iter()
            .filter(|(_, op)| op.needs_device())
            .map(|(_, op)| op.duration)
            .sum()
    }

    /// Validates structural invariants:
    ///
    /// * the graph is non-empty,
    /// * operation names are unique,
    /// * the dependency relation is acyclic,
    /// * input operations have no parents and output operations have no
    ///   children.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut seen = HashSet::new();
        for (id, op) in self.iter() {
            if !seen.insert(op.name.as_str()) {
                return Err(GraphError::DuplicateName {
                    name: op.name.clone(),
                });
            }
            match op.kind {
                OperationKind::Input if !self.parents(id).is_empty() => {
                    return Err(GraphError::InvalidRole {
                        id,
                        reason: "input operations must not have parents".to_owned(),
                    });
                }
                OperationKind::Output if !self.children(id).is_empty() => {
                    return Err(GraphError::InvalidRole {
                        id,
                        reason: "output operations must not have children".to_owned(),
                    });
                }
                _ => {}
            }
        }
        self.topological_order().map(|_| ())
    }
}

impl fmt::Display for SequencingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assay `{}`: {} operations, {} dependencies",
            self.name,
            self.num_operations(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> SequencingGraph {
        let mut g = SequencingGraph::new("chain");
        let ids: Vec<OpId> = (0..n)
            .map(|i| g.add_operation_with_duration(format!("o{i}"), OperationKind::Mix, 10))
            .collect();
        for w in ids.windows(2) {
            g.add_dependency(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph_is_invalid() {
        let g = SequencingGraph::new("empty");
        assert_eq!(g.validate(), Err(GraphError::Empty));
    }

    #[test]
    fn add_and_query_operations() {
        let mut g = SequencingGraph::new("t");
        let a = g.add_operation_default("a", OperationKind::Mix);
        let b = g.add_operation_default("b", OperationKind::Detect);
        assert_eq!(g.num_operations(), 2);
        assert_eq!(g.id_by_name("a"), Some(a));
        assert_eq!(g.id_by_name("b"), Some(b));
        assert_eq!(g.id_by_name("c"), None);
        assert_eq!(g.operation(a).kind, OperationKind::Mix);
        assert!(g.get(OpId(99)).is_none());
    }

    #[test]
    fn dependency_errors() {
        let mut g = SequencingGraph::new("t");
        let a = g.add_operation_default("a", OperationKind::Mix);
        let b = g.add_operation_default("b", OperationKind::Mix);
        assert_eq!(
            g.add_dependency(a, OpId(9)),
            Err(GraphError::UnknownOperation { id: OpId(9) })
        );
        assert_eq!(g.add_dependency(a, a), Err(GraphError::SelfLoop { id: a }));
        g.add_dependency(a, b).unwrap();
        assert_eq!(
            g.add_dependency(a, b),
            Err(GraphError::DuplicateEdge {
                parent: a,
                child: b
            })
        );
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let g = chain(5);
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 5);
        for edge in g.edges() {
            let pi = order.iter().position(|&x| x == edge.parent).unwrap();
            let ci = order.iter().position(|&x| x == edge.child).unwrap();
            assert!(pi < ci);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = SequencingGraph::new("cyc");
        let a = g.add_operation_default("a", OperationKind::Mix);
        let b = g.add_operation_default("b", OperationKind::Mix);
        let c = g.add_operation_default("c", OperationKind::Mix);
        g.add_dependency(a, b).unwrap();
        g.add_dependency(b, c).unwrap();
        g.add_dependency(c, a).unwrap();
        assert!(!g.is_acyclic());
        assert_eq!(g.validate(), Err(GraphError::CycleDetected));
    }

    #[test]
    fn duplicate_names_rejected_by_validate() {
        let mut g = SequencingGraph::new("dup");
        g.add_operation_default("a", OperationKind::Mix);
        g.add_operation_default("a", OperationKind::Mix);
        assert!(matches!(
            g.validate(),
            Err(GraphError::DuplicateName { .. })
        ));
    }

    #[test]
    fn input_with_parent_is_invalid() {
        let mut g = SequencingGraph::new("bad");
        let a = g.add_operation_default("a", OperationKind::Mix);
        let i = g.add_operation_default("i", OperationKind::Input);
        g.add_dependency(a, i).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::InvalidRole { .. })));
    }

    #[test]
    fn critical_path_and_depth_of_chain() {
        let g = chain(4);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.critical_path(), 40);
        assert_eq!(g.total_work(), 40);
    }

    #[test]
    fn roots_and_sinks() {
        let g = chain(3);
        assert_eq!(g.roots(), vec![OpId(0)]);
        assert_eq!(g.sinks(), vec![OpId(2)]);
    }

    #[test]
    fn inputs_do_not_contribute_to_depth_or_work() {
        let mut g = SequencingGraph::new("io");
        let i1 = g.add_operation_default("i1", OperationKind::Input);
        let i2 = g.add_operation_default("i2", OperationKind::Input);
        let m = g.add_operation_with_duration("m", OperationKind::Mix, 50);
        g.add_dependency(i1, m).unwrap();
        g.add_dependency(i2, m).unwrap();
        assert_eq!(g.depth(), 1);
        assert_eq!(g.total_work(), 50);
        assert_eq!(g.device_operations(), vec![m]);
    }

    #[test]
    fn display_mentions_counts() {
        let g = chain(3);
        let s = g.to_string();
        assert!(s.contains("3 operations"));
        assert!(s.contains("2 dependencies"));
    }
}
