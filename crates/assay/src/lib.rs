//! Sequencing graphs and benchmark bioassays for flow-based microfluidic biochips.
//!
//! A biochemical assay is described by a *sequencing graph*: a directed acyclic
//! graph whose nodes are fluidic operations (mixing, dilution, detection, ...)
//! and whose edges express data dependencies — a parent operation produces an
//! intermediate fluid sample that a child operation consumes. This crate
//! provides:
//!
//! * [`SequencingGraph`] — the core data structure with validation and
//!   analysis helpers (topological order, critical path, width, ...),
//! * [`AssayBuilder`] — an ergonomic builder,
//! * [`library`] — the real-world benchmark assays used in the paper
//!   (PCR mixing stage, in-vitro diagnostics, colorimetric protein assay),
//! * [`random`] — a seeded random assay generator reproducing the RA30/RA70/
//!   RA100 stress cases,
//! * [`text`] — a tiny line-oriented interchange format,
//! * [`analysis`] — structural analyses used by the scheduler.
//!
//! # Example
//!
//! ```
//! use biochip_assay::library;
//!
//! let pcr = library::pcr();
//! // 7 mixing operations plus 8 input dispensing operations.
//! assert_eq!(pcr.device_operations().len(), 7);
//! assert!(pcr.validate().is_ok());
//! // The PCR mixing tree is three levels deep.
//! assert_eq!(pcr.depth(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod ops;

pub mod analysis;
pub mod library;
pub mod random;
pub mod text;

pub use builder::AssayBuilder;
pub use error::GraphError;
pub use graph::{DependencyEdge, OpId, SequencingGraph};
pub use ops::{DeviceClass, Operation, OperationKind, ParseKindError};

/// Time unit used throughout the workspace: one second of assay execution.
///
/// All durations, start times and storage lifetimes are expressed in whole
/// seconds, mirroring the second-granularity numbers reported in the paper.
pub type Seconds = u64;
