//! Benchmark bioassays used in the paper's evaluation.
//!
//! The paper evaluates on three real-world assays — the mixing stage of the
//! polymerase chain reaction (PCR, 7 operations), an in-vitro diagnostics
//! panel (IVD, 12 operations) and a colorimetric protein assay (CPA, 55
//! operations) — plus three randomly generated assays (see
//! [`random`](crate::random)). The paper gives the PCR topology explicitly
//! (Fig. 2(a)); for IVD and CPA only the operation counts are reported, so the
//! generators here follow the canonical structures from the digital/flow-based
//! biochip literature (sample × reagent mix-and-detect panels for IVD, a
//! serial-dilution ladder with per-step detection for CPA) with exactly the
//! reported operation counts.

use crate::builder::AssayBuilder;
use crate::graph::SequencingGraph;
use crate::ops::OperationKind;
use crate::Seconds;

/// Default duration of a mixing operation, in seconds.
pub const MIX_SECONDS: Seconds = 60;
/// Default duration of a dilution operation, in seconds.
pub const DILUTE_SECONDS: Seconds = 30;
/// Default duration of a detection operation, in seconds.
pub const DETECT_SECONDS: Seconds = 30;

/// The mixing stage of the polymerase chain reaction (Fig. 2(a) of the paper).
///
/// Eight input reagents are combined by seven mixing operations arranged as a
/// complete binary tree: `o1..o4` mix the inputs pairwise, `o5`/`o6` mix their
/// results and `o7` produces the final product.
///
/// # Example
///
/// ```
/// let pcr = biochip_assay::library::pcr();
/// assert_eq!(pcr.num_operations(), 7 + 8); // 7 mixes + 8 inputs
/// assert_eq!(pcr.device_operations().len(), 7);
/// ```
#[must_use]
pub fn pcr() -> SequencingGraph {
    let mut b = AssayBuilder::new("PCR");
    for i in 1..=8 {
        b = b
            .operation(format!("i{i}"), OperationKind::Input, 0)
            .expect("unique input name");
    }
    for o in 1..=7 {
        b = b
            .operation(format!("o{o}"), OperationKind::Mix, MIX_SECONDS)
            .expect("unique op name");
    }
    let deps = [
        ("i1", "o1"),
        ("i2", "o1"),
        ("i3", "o2"),
        ("i4", "o2"),
        ("i5", "o3"),
        ("i6", "o3"),
        ("i7", "o4"),
        ("i8", "o4"),
        ("o1", "o5"),
        ("o2", "o5"),
        ("o3", "o6"),
        ("o4", "o6"),
        ("o5", "o7"),
        ("o6", "o7"),
    ];
    for (p, c) in deps {
        b = b.dependency(p, c).expect("valid dependency");
    }
    b.build().expect("PCR benchmark is valid")
}

/// In-vitro diagnostics panel with 12 device operations.
///
/// Three physiological samples are each mixed with two reagents and every
/// mixture is measured by a detection operation: `3 × 2` mixes plus `3 × 2`
/// detections = 12 operations, matching `|O| = 12` in Table 2.
#[must_use]
pub fn ivd() -> SequencingGraph {
    ivd_with(3, 2)
}

/// Generalized in-vitro diagnostics panel: `samples × reagents` mixes, each
/// followed by a detection.
///
/// The total number of device operations is `2 * samples * reagents`.
///
/// # Panics
///
/// Panics if `samples` or `reagents` is zero.
#[must_use]
pub fn ivd_with(samples: usize, reagents: usize) -> SequencingGraph {
    assert!(samples > 0, "ivd_with requires at least one sample");
    assert!(reagents > 0, "ivd_with requires at least one reagent");
    let mut b = AssayBuilder::new("IVD");
    for s in 1..=samples {
        b = b
            .operation(format!("S{s}"), OperationKind::Input, 0)
            .expect("unique sample name");
    }
    for r in 1..=reagents {
        b = b
            .operation(format!("R{r}"), OperationKind::Input, 0)
            .expect("unique reagent name");
    }
    for s in 1..=samples {
        for r in 1..=reagents {
            let mix = format!("mix_s{s}r{r}");
            let det = format!("det_s{s}r{r}");
            b = b
                .operation(&mix, OperationKind::Mix, MIX_SECONDS)
                .expect("unique mix name")
                .operation(&det, OperationKind::Detect, DETECT_SECONDS)
                .expect("unique detect name")
                .dependency(&format!("S{s}"), &mix)
                .expect("sample edge")
                .dependency(&format!("R{r}"), &mix)
                .expect("reagent edge")
                .dependency(&mix, &det)
                .expect("detect edge");
        }
    }
    b.build().expect("IVD benchmark is valid")
}

/// Colorimetric protein assay with 55 device operations.
///
/// One initial mix of the protein sample with buffer feeds a serial-dilution
/// ladder of 18 steps; the output of every dilution step is mixed with the
/// Coomassie Brilliant Blue reagent and measured by a detector:
/// `1 + 18 × (dilute + mix + detect) = 55` operations, matching `|O| = 55`.
#[must_use]
pub fn cpa() -> SequencingGraph {
    cpa_with(18)
}

/// Generalized colorimetric protein assay with a serial-dilution ladder of
/// `steps` steps (`1 + 3 * steps` device operations).
///
/// # Panics
///
/// Panics if `steps` is zero.
#[must_use]
pub fn cpa_with(steps: usize) -> SequencingGraph {
    assert!(steps > 0, "cpa_with requires at least one dilution step");
    let mut b = AssayBuilder::new("CPA")
        .operation("sample", OperationKind::Input, 0)
        .expect("input")
        .operation("buffer", OperationKind::Input, 0)
        .expect("input")
        .operation("reagent", OperationKind::Input, 0)
        .expect("input")
        .operation("prep", OperationKind::Mix, MIX_SECONDS)
        .expect("prep mix")
        .dependency("sample", "prep")
        .expect("edge")
        .dependency("buffer", "prep")
        .expect("edge");
    let mut prev = "prep".to_owned();
    for s in 1..=steps {
        let dil = format!("dil{s}");
        let mix = format!("mix{s}");
        let det = format!("det{s}");
        b = b
            .operation(&dil, OperationKind::Dilute, DILUTE_SECONDS)
            .expect("dilute")
            .operation(&mix, OperationKind::Mix, MIX_SECONDS)
            .expect("mix")
            .operation(&det, OperationKind::Detect, DETECT_SECONDS)
            .expect("detect")
            .dependency(&prev, &dil)
            .expect("ladder edge")
            .dependency("buffer", &dil)
            .expect("buffer edge")
            .dependency(&dil, &mix)
            .expect("mix edge")
            .dependency("reagent", &mix)
            .expect("reagent edge")
            .dependency(&mix, &det)
            .expect("detect edge");
        prev = dil;
    }
    b.build().expect("CPA benchmark is valid")
}

/// A balanced binary mixing tree with `2^levels` inputs and `2^levels - 1`
/// mixing operations (PCR is `mixing_tree(3)` with renamed operations).
///
/// Useful for scalability studies beyond the paper's benchmark set.
///
/// # Panics
///
/// Panics if `levels` is zero or greater than 16.
#[must_use]
pub fn mixing_tree(levels: u32) -> SequencingGraph {
    assert!(levels > 0 && levels <= 16, "levels must be in 1..=16");
    let inputs = 1usize << levels;
    let mut b = AssayBuilder::new(format!("MixTree{levels}"));
    for i in 0..inputs {
        b = b
            .operation(format!("in{i}"), OperationKind::Input, 0)
            .expect("unique input");
    }
    // Nodes are created level by level; `frontier` holds the names whose
    // outputs still need to be combined.
    let mut frontier: Vec<String> = (0..inputs).map(|i| format!("in{i}")).collect();
    let mut counter = 0usize;
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len() / 2);
        for pair in frontier.chunks(2) {
            counter += 1;
            let name = format!("m{counter}");
            b = b
                .operation(&name, OperationKind::Mix, MIX_SECONDS)
                .expect("unique mix");
            for parent in pair {
                b = b.dependency(parent, &name).expect("tree edge");
            }
            next.push(name);
        }
        frontier = next;
    }
    b.build().expect("mixing tree is valid")
}

/// Returns every named benchmark assay of the paper's Table 2 together with
/// the short name used in the tables (`"PCR"`, `"IVD"`, `"CPA"`,
/// `"RA30"`, `"RA70"`, `"RA100"`).
#[must_use]
pub fn paper_benchmarks() -> Vec<(&'static str, SequencingGraph)> {
    vec![
        ("RA100", crate::random::ra100()),
        ("RA70", crate::random::ra70()),
        ("CPA", cpa()),
        ("RA30", crate::random::ra30()),
        ("IVD", ivd()),
        ("PCR", pcr()),
    ]
}

/// The named assays [`by_name`] resolves, with their accepted aliases.
///
/// Canonical names match the paper's Table 2 plus the scale family; the
/// aliases let callers write the assay's plain-English name (`invitro` for
/// IVD, `protein` for CPA).
pub const NAMED_ASSAYS: &[(&str, &[&str])] = &[
    ("PCR", &["pcr"]),
    ("IVD", &["ivd", "invitro", "in-vitro"]),
    ("CPA", &["cpa", "protein"]),
    ("RA30", &["ra30"]),
    ("RA70", &["ra70"]),
    ("RA100", &["ra100"]),
    ("RA1K", &["ra1k", "ra1000"]),
    ("RA10K", &["ra10k", "ra10000"]),
];

/// Resolves a name or alias (case-insensitive) to its canonical benchmark
/// name, or `None` for unknown names.
#[must_use]
pub fn canonical_name(name: &str) -> Option<&'static str> {
    let lower = name.to_lowercase();
    NAMED_ASSAYS
        .iter()
        .find(|(canon, aliases)| canon.to_lowercase() == lower || aliases.contains(&lower.as_str()))
        .map(|(canon, _)| *canon)
}

/// Resolves a benchmark assay by canonical name or alias (case-insensitive),
/// returning `None` for unknown names. The CLI and the job service both
/// resolve submissions through this single table.
#[must_use]
pub fn by_name(name: &str) -> Option<SequencingGraph> {
    let canonical = canonical_name(name)?;
    Some(match canonical {
        "PCR" => pcr(),
        "IVD" => ivd(),
        "CPA" => cpa(),
        "RA30" => crate::random::ra30(),
        "RA70" => crate::random::ra70(),
        "RA100" => crate::random::ra100(),
        // Scale-family workloads: the full pipeline handles these end to
        // end; RA10K takes a few seconds in release builds.
        "RA1K" => crate::random::ra1k(),
        "RA10K" => crate::random::ra10k(),
        _ => unreachable!("NAMED_ASSAYS names are exhaustive"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_canonicals_and_aliases() {
        for (canonical, aliases) in NAMED_ASSAYS {
            let graph = by_name(canonical).unwrap();
            assert!(graph.validate().is_ok(), "{canonical}");
            for alias in *aliases {
                assert_eq!(by_name(alias), Some(graph.clone()), "{alias}");
            }
        }
        assert_eq!(by_name("invitro").unwrap(), ivd());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn pcr_matches_paper_shape() {
        let g = pcr();
        assert_eq!(g.device_operations().len(), 7);
        assert_eq!(g.roots().len(), 8); // the eight inputs
        assert_eq!(g.depth(), 3);
        assert!(g.validate().is_ok());
        // o7 is the unique sink.
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn ivd_has_twelve_device_operations() {
        let g = ivd();
        assert_eq!(g.device_operations().len(), 12);
        assert!(g.validate().is_ok());
        assert_eq!(g.depth(), 2); // mix then detect
    }

    #[test]
    fn ivd_with_scales() {
        let g = ivd_with(4, 3);
        assert_eq!(g.device_operations().len(), 24);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn ivd_with_zero_samples_panics() {
        let _ = ivd_with(0, 2);
    }

    #[test]
    fn cpa_has_fifty_five_device_operations() {
        let g = cpa();
        assert_eq!(g.device_operations().len(), 55);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn cpa_with_counts() {
        for steps in [1, 5, 10] {
            let g = cpa_with(steps);
            assert_eq!(g.device_operations().len(), 1 + 3 * steps);
        }
    }

    #[test]
    fn mixing_tree_counts() {
        for levels in 1..=5u32 {
            let g = mixing_tree(levels);
            assert_eq!(g.device_operations().len(), (1 << levels) - 1);
            assert_eq!(g.depth(), levels as usize);
        }
    }

    #[test]
    fn paper_benchmarks_have_expected_sizes() {
        let sizes: Vec<(String, usize)> = paper_benchmarks()
            .into_iter()
            .map(|(name, g)| (name.to_owned(), g.device_operations().len()))
            .collect();
        let expected = [
            ("RA100", 100),
            ("RA70", 70),
            ("CPA", 55),
            ("RA30", 30),
            ("IVD", 12),
            ("PCR", 7),
        ];
        for ((name, got), (exp_name, exp)) in sizes.iter().zip(expected.iter()) {
            assert_eq!(name, exp_name);
            assert_eq!(got, exp, "size of {name}");
        }
    }

    #[test]
    fn benchmarks_are_all_valid() {
        for (name, g) in paper_benchmarks() {
            assert!(g.validate().is_ok(), "{name} must be valid");
        }
    }
}
