//! Operation kinds and per-operation metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Seconds;

/// The kind of a fluidic operation in a sequencing graph.
///
/// The paper's evaluation only uses mixing operations executed on mixers, but
/// real assays also contain dilution, heating and detection steps, so the
/// model keeps the full set. The [`device_class`](OperationKind::device_class)
/// method maps each kind to the device class able to execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperationKind {
    /// Dispensing of an input reagent or sample onto the chip.
    Input,
    /// Mixing of two (or more) fluid samples in a ring mixer.
    Mix,
    /// Dilution of a sample with a buffer (executed on a mixer).
    Dilute,
    /// Heating / incubation of a sample.
    Heat,
    /// Optical or electrochemical detection.
    Detect,
    /// Transport of a final product to an output port.
    Output,
}

impl OperationKind {
    /// The class of device that can execute this operation.
    ///
    /// Inputs and outputs are executed by chip I/O ports and do not occupy a
    /// functional device.
    #[must_use]
    pub fn device_class(self) -> DeviceClass {
        match self {
            OperationKind::Input | OperationKind::Output => DeviceClass::Port,
            OperationKind::Mix | OperationKind::Dilute => DeviceClass::Mixer,
            OperationKind::Heat => DeviceClass::Heater,
            OperationKind::Detect => DeviceClass::Detector,
        }
    }

    /// Default duration of this operation kind, in seconds.
    ///
    /// These defaults follow the magnitudes commonly used in the flow-based
    /// biochip synthesis literature (mixing ≈ tens of seconds, detection
    /// ≈ 30 s) and produce assay execution times of the same order as the
    /// paper's Table 2.
    #[must_use]
    pub fn default_duration(self) -> Seconds {
        match self {
            OperationKind::Input | OperationKind::Output => 0,
            OperationKind::Mix => 60,
            OperationKind::Dilute => 60,
            OperationKind::Heat => 90,
            OperationKind::Detect => 30,
        }
    }

    /// Whether this operation occupies a functional device (mixer, heater,
    /// detector) for its duration.
    #[must_use]
    pub fn needs_device(self) -> bool {
        self.device_class() != DeviceClass::Port
    }

    /// All operation kinds, in declaration order.
    #[must_use]
    pub fn all() -> &'static [OperationKind] {
        &[
            OperationKind::Input,
            OperationKind::Mix,
            OperationKind::Dilute,
            OperationKind::Heat,
            OperationKind::Detect,
            OperationKind::Output,
        ]
    }
}

impl fmt::Display for OperationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperationKind::Input => "input",
            OperationKind::Mix => "mix",
            OperationKind::Dilute => "dilute",
            OperationKind::Heat => "heat",
            OperationKind::Detect => "detect",
            OperationKind::Output => "output",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for OperationKind {
    type Err = ParseKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "input" => Ok(OperationKind::Input),
            "mix" => Ok(OperationKind::Mix),
            "dilute" => Ok(OperationKind::Dilute),
            "heat" => Ok(OperationKind::Heat),
            "detect" => Ok(OperationKind::Detect),
            "output" => Ok(OperationKind::Output),
            other => Err(ParseKindError {
                found: other.to_owned(),
            }),
        }
    }
}

/// Error returned when parsing an [`OperationKind`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKindError {
    found: String,
}

impl fmt::Display for ParseKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation kind `{}`", self.found)
    }
}

impl std::error::Error for ParseKindError {}

/// The class of an on-chip device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A ring mixer built from nine valves (Fig. 1(b) of the paper).
    Mixer,
    /// A heating element.
    Heater,
    /// An optical detector.
    Detector,
    /// A chip inlet/outlet port (not a functional device).
    Port,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Mixer => "mixer",
            DeviceClass::Heater => "heater",
            DeviceClass::Detector => "detector",
            DeviceClass::Port => "port",
        };
        f.write_str(s)
    }
}

/// A single operation of a sequencing graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Human-readable name, unique within a graph (e.g. `"o3"`).
    pub name: String,
    /// What the operation does.
    pub kind: OperationKind,
    /// Execution duration in seconds.
    pub duration: Seconds,
}

impl Operation {
    /// Creates an operation with an explicit duration.
    ///
    /// # Example
    ///
    /// ```
    /// use biochip_assay::{Operation, OperationKind};
    /// let op = Operation::new("o1", OperationKind::Mix, 45);
    /// assert_eq!(op.duration, 45);
    /// ```
    #[must_use]
    pub fn new(name: impl Into<String>, kind: OperationKind, duration: Seconds) -> Self {
        Operation {
            name: name.into(),
            kind,
            duration,
        }
    }

    /// Creates an operation with the kind's [default duration](OperationKind::default_duration).
    #[must_use]
    pub fn with_default_duration(name: impl Into<String>, kind: OperationKind) -> Self {
        let duration = kind.default_duration();
        Operation::new(name, kind, duration)
    }

    /// Whether the operation needs a functional device.
    #[must_use]
    pub fn needs_device(&self) -> bool {
        self.kind.needs_device()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {}s)", self.name, self.kind, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_class_mapping() {
        assert_eq!(OperationKind::Mix.device_class(), DeviceClass::Mixer);
        assert_eq!(OperationKind::Dilute.device_class(), DeviceClass::Mixer);
        assert_eq!(OperationKind::Heat.device_class(), DeviceClass::Heater);
        assert_eq!(OperationKind::Detect.device_class(), DeviceClass::Detector);
        assert_eq!(OperationKind::Input.device_class(), DeviceClass::Port);
        assert_eq!(OperationKind::Output.device_class(), DeviceClass::Port);
    }

    #[test]
    fn ports_do_not_need_devices() {
        assert!(!OperationKind::Input.needs_device());
        assert!(!OperationKind::Output.needs_device());
        assert!(OperationKind::Mix.needs_device());
    }

    #[test]
    fn default_durations_are_positive_for_device_ops() {
        for &kind in OperationKind::all() {
            if kind.needs_device() {
                assert!(kind.default_duration() > 0, "{kind} should take time");
            }
        }
    }

    #[test]
    fn kind_display_roundtrip() {
        for &kind in OperationKind::all() {
            let text = kind.to_string();
            let parsed: OperationKind = text.parse().expect("roundtrip");
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn kind_parse_rejects_unknown() {
        let err = "centrifuge".parse::<OperationKind>().unwrap_err();
        assert!(err.to_string().contains("centrifuge"));
    }

    #[test]
    fn operation_constructors() {
        let a = Operation::new("m", OperationKind::Mix, 10);
        assert_eq!(a.duration, 10);
        let b = Operation::with_default_duration("m", OperationKind::Mix);
        assert_eq!(b.duration, OperationKind::Mix.default_duration());
    }

    #[test]
    fn operation_display_mentions_name_and_kind() {
        let op = Operation::new("o7", OperationKind::Detect, 30);
        let shown = op.to_string();
        assert!(shown.contains("o7"));
        assert!(shown.contains("detect"));
    }
}
