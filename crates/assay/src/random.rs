//! Seeded random assay generation (the RA30 / RA70 / RA100 stress cases and
//! the RA1K / RA10K scale family).
//!
//! The paper evaluates on three randomly generated assays with 30, 70 and 100
//! operations but does not publish the generator. The generator here produces
//! layered DAGs of mixing operations: operations are distributed over layers
//! and every non-root operation draws its parents from earlier layers
//! (biased towards the immediately preceding layer). This yields the same
//! qualitative stress profile — many concurrently live intermediate samples
//! that must be stored — while being fully reproducible via the seed.
//!
//! Beyond the paper's 100-operation ceiling, the *scale family*
//! ([`ra1k`], [`ra10k`], or any size via [`RandomAssayConfig::scaled`])
//! stresses the schedulers with thousands of operations, wider layers,
//! configurable fan-in ([`RandomAssayConfig::with_max_fan_in`]) and fan-out
//! ([`RandomAssayConfig::with_max_fan_out`]) and mixed operation durations
//! ([`RandomAssayConfig::with_duration_choices`]). All extensions are
//! RNG-stream compatible with the original generator: a configuration using
//! only the paper-era knobs produces bit-identical graphs to earlier
//! releases.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{OpId, SequencingGraph};
use crate::ops::OperationKind;
use crate::Seconds;

/// Configuration of the random assay generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomAssayConfig {
    /// Number of device operations to generate.
    pub num_operations: usize,
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
    /// Average number of operations per layer (controls parallelism).
    pub layer_width: usize,
    /// Probability (in percent) that an operation has more than one parent.
    pub two_parent_percent: u8,
    /// Duration of each generated mixing operation (used when
    /// [`duration_choices`](Self::duration_choices) is empty).
    pub mix_duration: Seconds,
    /// Largest fan-in of a generated operation: when the multi-parent roll
    /// succeeds, the parent count is drawn uniformly from `2..=max_fan_in`.
    /// The default of 2 reproduces the paper-era one-or-two-parent graphs.
    pub max_fan_in: usize,
    /// Soft cap on the fan-out of a generated operation: parents that
    /// already feed this many children are avoided when an alternative
    /// exists. `0` (the default) leaves fan-out unbounded.
    pub max_fan_out: usize,
    /// Duration mix: when non-empty, each operation draws its duration
    /// uniformly from these choices instead of using
    /// [`mix_duration`](Self::mix_duration).
    pub duration_choices: Vec<Seconds>,
}

impl RandomAssayConfig {
    /// Creates a configuration with the defaults used for the paper's
    /// RA benchmarks (layer width 5, 70 % two-parent operations, 60 s mixes).
    #[must_use]
    pub fn new(num_operations: usize, seed: u64) -> Self {
        RandomAssayConfig {
            num_operations,
            seed,
            layer_width: 5,
            two_parent_percent: 70,
            mix_duration: 60,
            max_fan_in: 2,
            max_fan_out: 0,
            duration_choices: Vec::new(),
        }
    }

    /// Creates a configuration for the scale family: wider layers (so the
    /// ready set grows with assay size), fan-in up to 3 with a soft fan-out
    /// cap of 6, and a mixed duration profile. This is the generator behind
    /// [`ra1k`] and [`ra10k`] and the `biochip bench scale` size sweep.
    #[must_use]
    pub fn scaled(num_operations: usize, seed: u64) -> Self {
        RandomAssayConfig::new(num_operations, seed)
            .with_layer_width((num_operations / 100).max(8))
            .with_max_fan_in(3)
            .with_max_fan_out(6)
            .with_duration_choices(vec![30, 60, 90, 120])
    }

    /// Sets the average layer width.
    #[must_use]
    pub fn with_layer_width(mut self, width: usize) -> Self {
        self.layer_width = width.max(1);
        self
    }

    /// Sets the probability (percent) of two-parent operations.
    #[must_use]
    pub fn with_two_parent_percent(mut self, percent: u8) -> Self {
        self.two_parent_percent = percent.min(100);
        self
    }

    /// Sets the duration of generated mixing operations.
    #[must_use]
    pub fn with_mix_duration(mut self, duration: Seconds) -> Self {
        self.mix_duration = duration;
        self
    }

    /// Sets the largest fan-in (at least 2; 2 reproduces the paper-era
    /// generator exactly).
    #[must_use]
    pub fn with_max_fan_in(mut self, fan_in: usize) -> Self {
        self.max_fan_in = fan_in.max(2);
        self
    }

    /// Sets the soft fan-out cap (`0` disables the cap).
    #[must_use]
    pub fn with_max_fan_out(mut self, fan_out: usize) -> Self {
        self.max_fan_out = fan_out;
        self
    }

    /// Sets the duration mix (an empty list falls back to
    /// [`mix_duration`](Self::mix_duration)).
    #[must_use]
    pub fn with_duration_choices(mut self, choices: Vec<Seconds>) -> Self {
        self.duration_choices = choices;
        self
    }
}

impl Default for RandomAssayConfig {
    fn default() -> Self {
        RandomAssayConfig::new(30, 0xB10C)
    }
}

/// Generates a random assay according to `config`.
///
/// The result is deterministic in `config` (including the seed).
///
/// # Panics
///
/// Panics if `config.num_operations` is zero.
#[must_use]
pub fn generate(config: &RandomAssayConfig) -> SequencingGraph {
    assert!(
        config.num_operations > 0,
        "random assay needs at least one operation"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let name = format!("RA{}", config.num_operations);
    let mut graph = SequencingGraph::new(name);

    // Split operations into layers of width ~layer_width (at least 1).
    let mut layers: Vec<Vec<OpId>> = Vec::new();
    let mut created = 0usize;
    while created < config.num_operations {
        let remaining = config.num_operations - created;
        let span = config.layer_width.min(remaining).max(1);
        // Jitter the layer width by ±1 to avoid a perfectly regular profile.
        let width = if span > 2 && remaining > span {
            span - 1 + rng.gen_range(0..=2).min(remaining - span + 1)
        } else {
            span
        };
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            // Only a real duration *mix* consumes randomness, so paper-era
            // configurations keep their historical RNG stream (and graphs).
            let duration = match config.duration_choices.len() {
                0 => config.mix_duration,
                1 => config.duration_choices[0],
                n => config.duration_choices[rng.gen_range(0..n)],
            };
            let id = graph.add_operation_with_duration(
                format!("o{}", created + 1),
                OperationKind::Mix,
                duration,
            );
            layer.push(id);
            created += 1;
            if created == config.num_operations {
                break;
            }
        }
        layers.push(layer);
    }

    // Wire parents: every operation beyond the first layer takes one to
    // `max_fan_in` parents from earlier layers, biased towards the previous
    // layer.
    let mut child_count = vec![0usize; config.num_operations];
    for li in 1..layers.len() {
        for &child in &layers[li] {
            let multi = rng.gen_range(0..100) < u32::from(config.two_parent_percent);
            // Direct struct construction can bypass the `with_max_fan_in`
            // clamp, so re-clamp here before sampling `2..=max`.
            let wanted = match (multi, config.max_fan_in.max(2)) {
                (false, _) => 1,
                // The fan-in draw is skipped at the paper-era default of 2,
                // keeping the historical RNG stream.
                (true, 2) => 2,
                (true, max) => rng.gen_range(2..=max),
            };
            let mut chosen: Vec<OpId> = Vec::with_capacity(wanted);
            let attempt_budget = 8 * wanted + 16;
            let mut attempts = 0;
            while chosen.len() < wanted && attempts < attempt_budget {
                attempts += 1;
                // 75 %: previous layer, 25 %: any earlier layer.
                let source_layer = if rng.gen_range(0..4) < 3 || li == 1 {
                    li - 1
                } else {
                    rng.gen_range(0..li)
                };
                let candidate = *layers[source_layer]
                    .choose(&mut rng)
                    .expect("layers are non-empty");
                if chosen.contains(&candidate) {
                    if layers[source_layer].len() == 1 && wanted > 1 {
                        // Cannot find another distinct parent in a width-1
                        // layer; settle for fewer parents.
                        break;
                    }
                    continue;
                }
                // Soft fan-out cap: avoid saturated parents while the
                // attempt budget allows looking for an alternative.
                if config.max_fan_out > 0
                    && child_count[candidate.index()] >= config.max_fan_out
                    && attempts < attempt_budget / 2
                {
                    continue;
                }
                chosen.push(candidate);
            }
            for parent in chosen {
                // Duplicate edges can only arise from the retry loop above and
                // are prevented there, so this cannot fail.
                child_count[parent.index()] += 1;
                graph
                    .add_dependency(parent, child)
                    .expect("generator never creates duplicate or cyclic edges");
            }
        }
    }
    graph
}

/// Seed used for the RA30 benchmark.
pub const RA30_SEED: u64 = 30;
/// Seed used for the RA70 benchmark.
pub const RA70_SEED: u64 = 70;
/// Seed used for the RA100 benchmark.
pub const RA100_SEED: u64 = 100;

/// The RA30 random benchmark (30 mixing operations).
#[must_use]
pub fn ra30() -> SequencingGraph {
    generate(&RandomAssayConfig::new(30, RA30_SEED))
}

/// The RA70 random benchmark (70 mixing operations).
#[must_use]
pub fn ra70() -> SequencingGraph {
    generate(&RandomAssayConfig::new(70, RA70_SEED))
}

/// The RA100 random benchmark (100 mixing operations).
#[must_use]
pub fn ra100() -> SequencingGraph {
    generate(&RandomAssayConfig::new(100, RA100_SEED))
}

/// Seed used for the RA1K scale benchmark.
pub const RA1K_SEED: u64 = 1_000;
/// Seed used for the RA10K scale benchmark.
pub const RA10K_SEED: u64 = 10_000;

/// The RA1K scale benchmark (1,000 operations, see
/// [`RandomAssayConfig::scaled`]).
#[must_use]
pub fn ra1k() -> SequencingGraph {
    generate(&RandomAssayConfig::scaled(1_000, RA1K_SEED))
}

/// The RA10K scale benchmark (10,000 operations, see
/// [`RandomAssayConfig::scaled`]).
#[must_use]
pub fn ra10k() -> SequencingGraph {
    generate(&RandomAssayConfig::scaled(10_000, RA10K_SEED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ra30();
        let b = ra30();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomAssayConfig::new(30, 1));
        let b = generate(&RandomAssayConfig::new(30, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn benchmark_sizes() {
        assert_eq!(ra30().num_operations(), 30);
        assert_eq!(ra70().num_operations(), 70);
        assert_eq!(ra100().num_operations(), 100);
    }

    #[test]
    fn scale_presets_have_expected_shape() {
        let g = ra1k();
        assert_eq!(g.num_operations(), 1_000);
        assert!(g.validate().is_ok());
        // The duration mix actually mixes.
        let durations: std::collections::HashSet<u64> =
            g.iter().map(|(_, op)| op.duration).collect();
        assert!(durations.len() > 1, "scale family mixes durations");
        // Fan-in goes beyond the paper-era maximum of two somewhere.
        assert!(g.ids().any(|id| g.parents(id).len() > 2));
    }

    #[test]
    fn fan_in_and_fan_out_knobs_shape_the_graph() {
        let cfg = RandomAssayConfig::new(200, 42)
            .with_layer_width(10)
            .with_two_parent_percent(100)
            .with_max_fan_in(4)
            .with_max_fan_out(3);
        let g = generate(&cfg);
        assert!(g.validate().is_ok());
        for id in g.ids() {
            assert!(g.parents(id).len() <= 4, "{id} exceeds max fan-in");
        }
        // The cap is soft, but it must visibly flatten the fan-out profile
        // compared to the uncapped generator.
        let uncapped = generate(&RandomAssayConfig {
            max_fan_out: 0,
            ..cfg.clone()
        });
        let max_out = |g: &SequencingGraph| g.ids().map(|id| g.children(id).len()).max().unwrap();
        assert!(max_out(&g) <= max_out(&uncapped));
    }

    #[test]
    fn direct_struct_fan_in_below_two_is_clamped_not_a_panic() {
        // Struct-update syntax bypasses the `with_max_fan_in` clamp; the
        // generator must re-clamp instead of sampling an empty range.
        for max_fan_in in [0, 1] {
            let cfg = RandomAssayConfig {
                max_fan_in,
                ..RandomAssayConfig::new(50, 7).with_two_parent_percent(100)
            };
            let g = generate(&cfg);
            assert!(g.validate().is_ok());
            assert_eq!(
                g,
                generate(&RandomAssayConfig::new(50, 7).with_two_parent_percent(100))
            );
        }
    }

    #[test]
    fn paper_era_configs_are_stream_compatible() {
        // The new knobs must not consume randomness at their defaults: a
        // plain `new` configuration produces the same graph as one that sets
        // the defaults explicitly.
        let plain = generate(&RandomAssayConfig::new(60, 7));
        let explicit = generate(
            &RandomAssayConfig::new(60, 7)
                .with_max_fan_in(2)
                .with_max_fan_out(0)
                .with_duration_choices(Vec::new()),
        );
        assert_eq!(plain, explicit);
        // A single-choice duration mix is also draw-free.
        let single = generate(&RandomAssayConfig::new(60, 7).with_duration_choices(vec![60]));
        assert_eq!(plain, single);
    }

    #[test]
    fn generated_graphs_are_valid_dags() {
        for g in [ra30(), ra70(), ra100()] {
            assert!(g.validate().is_ok());
            assert!(g.is_acyclic());
        }
    }

    #[test]
    fn non_root_operations_have_parents() {
        let g = ra70();
        let order = g.topological_order().unwrap();
        let first_layer_end = g.roots().len();
        for &id in order.iter().skip(first_layer_end) {
            // Every operation outside the first layer has at least one parent.
            if g.parents(id).is_empty() {
                assert!(g.roots().contains(&id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_operations_panics() {
        let _ = generate(&RandomAssayConfig::new(0, 1));
    }

    #[test]
    fn builder_style_config() {
        let cfg = RandomAssayConfig::new(10, 7)
            .with_layer_width(3)
            .with_two_parent_percent(100)
            .with_mix_duration(45);
        let g = generate(&cfg);
        assert_eq!(g.num_operations(), 10);
        for (_, op) in g.iter() {
            assert_eq!(op.duration, 45);
        }
    }

    proptest! {
        #[test]
        fn arbitrary_configs_produce_valid_dags(
            n in 1usize..60,
            seed in 0u64..1000,
            width in 1usize..8,
            two in 0u8..=100,
        ) {
            let cfg = RandomAssayConfig::new(n, seed)
                .with_layer_width(width)
                .with_two_parent_percent(two);
            let g = generate(&cfg);
            prop_assert_eq!(g.num_operations(), n);
            prop_assert!(g.validate().is_ok());
            // Edges always point from earlier to later operations, so the
            // graph is acyclic by construction.
            for e in g.edges() {
                prop_assert!(e.parent.index() < e.child.index());
            }
        }
    }
}
