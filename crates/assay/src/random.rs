//! Seeded random assay generation (the RA30 / RA70 / RA100 stress cases).
//!
//! The paper evaluates on three randomly generated assays with 30, 70 and 100
//! operations but does not publish the generator. The generator here produces
//! layered DAGs of mixing operations: operations are distributed over layers
//! and every non-root operation draws one or two parents from earlier layers
//! (biased towards the immediately preceding layer). This yields the same
//! qualitative stress profile — many concurrently live intermediate samples
//! that must be stored — while being fully reproducible via the seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{OpId, SequencingGraph};
use crate::ops::OperationKind;
use crate::Seconds;

/// Configuration of the random assay generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomAssayConfig {
    /// Number of device operations to generate.
    pub num_operations: usize,
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
    /// Average number of operations per layer (controls parallelism).
    pub layer_width: usize,
    /// Probability (in percent) that an operation has two parents instead of
    /// one.
    pub two_parent_percent: u8,
    /// Duration of each generated mixing operation.
    pub mix_duration: Seconds,
}

impl RandomAssayConfig {
    /// Creates a configuration with the defaults used for the paper's
    /// RA benchmarks (layer width 5, 70 % two-parent operations, 60 s mixes).
    #[must_use]
    pub fn new(num_operations: usize, seed: u64) -> Self {
        RandomAssayConfig {
            num_operations,
            seed,
            layer_width: 5,
            two_parent_percent: 70,
            mix_duration: 60,
        }
    }

    /// Sets the average layer width.
    #[must_use]
    pub fn with_layer_width(mut self, width: usize) -> Self {
        self.layer_width = width.max(1);
        self
    }

    /// Sets the probability (percent) of two-parent operations.
    #[must_use]
    pub fn with_two_parent_percent(mut self, percent: u8) -> Self {
        self.two_parent_percent = percent.min(100);
        self
    }

    /// Sets the duration of generated mixing operations.
    #[must_use]
    pub fn with_mix_duration(mut self, duration: Seconds) -> Self {
        self.mix_duration = duration;
        self
    }
}

impl Default for RandomAssayConfig {
    fn default() -> Self {
        RandomAssayConfig::new(30, 0xB10C)
    }
}

/// Generates a random assay according to `config`.
///
/// The result is deterministic in `config` (including the seed).
///
/// # Panics
///
/// Panics if `config.num_operations` is zero.
#[must_use]
pub fn generate(config: &RandomAssayConfig) -> SequencingGraph {
    assert!(
        config.num_operations > 0,
        "random assay needs at least one operation"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let name = format!("RA{}", config.num_operations);
    let mut graph = SequencingGraph::new(name);

    // Split operations into layers of width ~layer_width (at least 1).
    let mut layers: Vec<Vec<OpId>> = Vec::new();
    let mut created = 0usize;
    while created < config.num_operations {
        let remaining = config.num_operations - created;
        let span = config.layer_width.min(remaining).max(1);
        // Jitter the layer width by ±1 to avoid a perfectly regular profile.
        let width = if span > 2 && remaining > span {
            span - 1 + rng.gen_range(0..=2).min(remaining - span + 1)
        } else {
            span
        };
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let id = graph.add_operation_with_duration(
                format!("o{}", created + 1),
                OperationKind::Mix,
                config.mix_duration,
            );
            layer.push(id);
            created += 1;
            if created == config.num_operations {
                break;
            }
        }
        layers.push(layer);
    }

    // Wire parents: every operation beyond the first layer takes one or two
    // parents from earlier layers, biased towards the previous layer.
    for li in 1..layers.len() {
        for &child in &layers[li] {
            let two = rng.gen_range(0..100) < u32::from(config.two_parent_percent);
            let wanted = if two { 2 } else { 1 };
            let mut chosen: Vec<OpId> = Vec::with_capacity(wanted);
            while chosen.len() < wanted {
                // 75 %: previous layer, 25 %: any earlier layer.
                let source_layer = if rng.gen_range(0..4) < 3 || li == 1 {
                    li - 1
                } else {
                    rng.gen_range(0..li)
                };
                let candidate = *layers[source_layer]
                    .choose(&mut rng)
                    .expect("layers are non-empty");
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                } else if layers[source_layer].len() == 1 && wanted > 1 {
                    // Cannot find a second distinct parent in a width-1 layer;
                    // settle for one parent.
                    break;
                }
            }
            for parent in chosen {
                // Duplicate edges can only arise from the retry loop above and
                // are prevented there, so this cannot fail.
                graph
                    .add_dependency(parent, child)
                    .expect("generator never creates duplicate or cyclic edges");
            }
        }
    }
    graph
}

/// Seed used for the RA30 benchmark.
pub const RA30_SEED: u64 = 30;
/// Seed used for the RA70 benchmark.
pub const RA70_SEED: u64 = 70;
/// Seed used for the RA100 benchmark.
pub const RA100_SEED: u64 = 100;

/// The RA30 random benchmark (30 mixing operations).
#[must_use]
pub fn ra30() -> SequencingGraph {
    generate(&RandomAssayConfig::new(30, RA30_SEED))
}

/// The RA70 random benchmark (70 mixing operations).
#[must_use]
pub fn ra70() -> SequencingGraph {
    generate(&RandomAssayConfig::new(70, RA70_SEED))
}

/// The RA100 random benchmark (100 mixing operations).
#[must_use]
pub fn ra100() -> SequencingGraph {
    generate(&RandomAssayConfig::new(100, RA100_SEED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ra30();
        let b = ra30();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomAssayConfig::new(30, 1));
        let b = generate(&RandomAssayConfig::new(30, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn benchmark_sizes() {
        assert_eq!(ra30().num_operations(), 30);
        assert_eq!(ra70().num_operations(), 70);
        assert_eq!(ra100().num_operations(), 100);
    }

    #[test]
    fn generated_graphs_are_valid_dags() {
        for g in [ra30(), ra70(), ra100()] {
            assert!(g.validate().is_ok());
            assert!(g.is_acyclic());
        }
    }

    #[test]
    fn non_root_operations_have_parents() {
        let g = ra70();
        let order = g.topological_order().unwrap();
        let first_layer_end = g.roots().len();
        for &id in order.iter().skip(first_layer_end) {
            // Every operation outside the first layer has at least one parent.
            if g.parents(id).is_empty() {
                assert!(g.roots().contains(&id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_operations_panics() {
        let _ = generate(&RandomAssayConfig::new(0, 1));
    }

    #[test]
    fn builder_style_config() {
        let cfg = RandomAssayConfig::new(10, 7)
            .with_layer_width(3)
            .with_two_parent_percent(100)
            .with_mix_duration(45);
        let g = generate(&cfg);
        assert_eq!(g.num_operations(), 10);
        for (_, op) in g.iter() {
            assert_eq!(op.duration, 45);
        }
    }

    proptest! {
        #[test]
        fn arbitrary_configs_produce_valid_dags(
            n in 1usize..60,
            seed in 0u64..1000,
            width in 1usize..8,
            two in 0u8..=100,
        ) {
            let cfg = RandomAssayConfig::new(n, seed)
                .with_layer_width(width)
                .with_two_parent_percent(two);
            let g = generate(&cfg);
            prop_assert_eq!(g.num_operations(), n);
            prop_assert!(g.validate().is_ok());
            // Edges always point from earlier to later operations, so the
            // graph is acyclic by construction.
            for e in g.edges() {
                prop_assert!(e.parent.index() < e.child.index());
            }
        }
    }
}
