//! A tiny line-oriented text format for sequencing graphs.
//!
//! The format is intentionally simple so that assays can be written by hand
//! or exported from other tools:
//!
//! ```text
//! # comment
//! assay PCR
//! op i1 input 0
//! op o1 mix 60
//! dep i1 o1
//! ```
//!
//! Lines are `assay <name>`, `op <name> <kind> <duration-seconds>` and
//! `dep <parent-name> <child-name>`; blank lines and `#` comments are ignored.

use crate::error::GraphError;
use crate::graph::SequencingGraph;
use crate::ops::{Operation, OperationKind};

/// Serializes a sequencing graph into the text format.
///
/// The output can be parsed back with [`parse`] and round-trips exactly
/// (same operations in the same order, same edges).
#[must_use]
pub fn to_text(graph: &SequencingGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("assay {}\n", graph.name()));
    for (_, op) in graph.iter() {
        out.push_str(&format!("op {} {} {}\n", op.name, op.kind, op.duration));
    }
    for edge in graph.edges() {
        out.push_str(&format!(
            "dep {} {}\n",
            graph.operation(edge.parent).name,
            graph.operation(edge.child).name
        ));
    }
    out
}

/// Parses a sequencing graph from the text format.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, plus any graph
/// construction error (duplicate names, unknown edge endpoints, ...) tagged
/// with the offending line number.
pub fn parse(input: &str) -> Result<SequencingGraph, GraphError> {
    let mut graph: Option<SequencingGraph> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "assay" => {
                let name = tokens.next().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`assay` requires a name".to_owned(),
                })?;
                if graph.is_some() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: "duplicate `assay` line".to_owned(),
                    });
                }
                graph = Some(SequencingGraph::new(name));
            }
            "op" => {
                let g = graph.as_mut().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`op` before `assay`".to_owned(),
                })?;
                let name = tokens.next().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`op` requires a name".to_owned(),
                })?;
                if g.id_by_name(name).is_some() {
                    return Err(GraphError::DuplicateName {
                        name: name.to_owned(),
                    });
                }
                let kind: OperationKind = tokens
                    .next()
                    .ok_or_else(|| GraphError::Parse {
                        line: line_no,
                        message: "`op` requires a kind".to_owned(),
                    })?
                    .parse()
                    .map_err(|e| GraphError::Parse {
                        line: line_no,
                        message: format!("{e}"),
                    })?;
                let duration = tokens
                    .next()
                    .ok_or_else(|| GraphError::Parse {
                        line: line_no,
                        message: "`op` requires a duration".to_owned(),
                    })?
                    .parse::<u64>()
                    .map_err(|e| GraphError::Parse {
                        line: line_no,
                        message: format!("invalid duration: {e}"),
                    })?;
                g.add_operation(Operation::new(name, kind, duration));
            }
            "dep" => {
                let g = graph.as_mut().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`dep` before `assay`".to_owned(),
                })?;
                let parent = tokens.next().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`dep` requires a parent".to_owned(),
                })?;
                let child = tokens.next().ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "`dep` requires a child".to_owned(),
                })?;
                let p = g
                    .id_by_name(parent)
                    .ok_or_else(|| GraphError::UnknownName {
                        name: parent.to_owned(),
                    })?;
                let c = g.id_by_name(child).ok_or_else(|| GraphError::UnknownName {
                    name: child.to_owned(),
                })?;
                g.add_dependency(p, c)?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("unknown keyword `{other}`"),
                });
            }
        }
        if let Some(extra) = tokens.next() {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("unexpected trailing token `{extra}`"),
            });
        }
    }
    graph.ok_or(GraphError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_pcr() {
        let pcr = library::pcr();
        let text = to_text(&pcr);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, pcr);
    }

    #[test]
    fn roundtrip_all_benchmarks() {
        for (name, g) in library::paper_benchmarks() {
            let parsed = parse(&to_text(&g)).unwrap();
            assert_eq!(parsed, g, "roundtrip of {name}");
        }
    }

    #[test]
    fn parse_simple_assay() {
        let text = "\
# a tiny assay
assay tiny

op a mix 10
op b detect 20
dep a b
";
        let g = parse(text).unwrap();
        assert_eq!(g.name(), "tiny");
        assert_eq!(g.num_operations(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("assay t\nbogus x y\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_op_before_assay() {
        assert!(matches!(
            parse("op a mix 10\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn parse_rejects_duplicate_assay_line() {
        assert!(matches!(
            parse("assay a\nassay b\n"),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        assert!(matches!(
            parse("assay t\nop a centrifuge 10\n"),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn parse_rejects_bad_duration() {
        assert!(matches!(
            parse("assay t\nop a mix ten\n"),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn parse_rejects_unknown_dep_names() {
        assert!(matches!(
            parse("assay t\nop a mix 10\ndep a zz\n"),
            Err(GraphError::UnknownName { .. })
        ));
    }

    #[test]
    fn parse_rejects_trailing_tokens() {
        assert!(matches!(
            parse("assay t extra\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_error() {
        assert_eq!(parse(""), Err(GraphError::Empty));
        assert_eq!(parse("# only a comment\n"), Err(GraphError::Empty));
    }

    proptest! {
        #[test]
        fn random_assays_roundtrip(n in 1usize..40, seed in 0u64..200) {
            let g = crate::random::generate(&crate::random::RandomAssayConfig::new(n, seed));
            let parsed = parse(&to_text(&g)).unwrap();
            prop_assert_eq!(parsed, g);
        }
    }
}
