//! Timing bench: dedicated-storage comparison over the benchmark set.
fn main() {
    biochip_bench::measure("fig10_rows", 3, biochip_bench::fig10_rows);
}
