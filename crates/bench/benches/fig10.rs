//! Criterion bench: channel caching vs. dedicated storage comparison (Fig. 10).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for assay in ["IVD", "RA30"] {
        group.bench_function(assay, |b| {
            b.iter(|| {
                let report = biochip_bench::run_benchmark_heuristic(assay);
                std::hint::black_box((
                    report.execution_ratio_vs_dedicated(),
                    report.valve_ratio_vs_dedicated(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
