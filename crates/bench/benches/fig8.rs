//! Timing bench: Fig. 8 ratio computation over the benchmark set.
fn main() {
    biochip_bench::measure("fig8_rows", 3, biochip_bench::fig8_rows);
}
