//! Criterion bench: architectural synthesis edge/valve ratio extraction.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("pcr_ratios", |b| {
        b.iter(|| {
            let report = biochip_bench::run_benchmark_heuristic("PCR");
            std::hint::black_box((report.edge_ratio, report.valve_ratio))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
