//! Criterion bench: storage-aware vs. makespan-only synthesis (Fig. 9).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("ra30_both_schedulers", |b| {
        b.iter(|| std::hint::black_box(biochip_bench::fig9_rows()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
