//! Timing bench: both-scheduler synthesis of RA30 (Fig. 9 core loop).
fn main() {
    biochip_bench::measure("fig9_rows", 3, biochip_bench::fig9_rows);
}
