//! Timing bench: full Table 2 regeneration (heuristic scheduler).
fn main() {
    biochip_bench::measure("table2_heuristic", 3, || {
        ["PCR", "IVD", "CPA", "RA30", "RA70", "RA100"].map(|name| {
            biochip_bench::run_benchmark_heuristic(name).expect("benchmark set synthesizes")
        })
    });
}
