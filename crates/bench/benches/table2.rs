//! Criterion bench: full-pipeline runtime per benchmark assay (the runtime
//! columns of Table 2).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for assay in ["PCR", "IVD", "RA30"] {
        group.bench_function(assay, |b| {
            b.iter(|| std::hint::black_box(biochip_bench::run_benchmark_heuristic(assay)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
