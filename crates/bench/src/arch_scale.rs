//! Architectural-synthesis scale sweep: place & route throughput vs. assay
//! size.
//!
//! `BENCH_scale.json` tracks the *scheduler* at 10k-op scale; this sweep
//! does the same for the paper's headline contribution — architectural
//! synthesis with distributed channel storage. Each row runs the full
//! schedule → extract → place → route pipeline on a scale-family assay and
//! records routed-tasks/sec together with the staged router's work counters
//! (windows tried, path searches, nodes expanded, segments priced) and the
//! peak reservation-calendar length, i.e. the `n` of the router's
//! `O(log n)` occupancy queries.
//!
//! The committed `BENCH_arch_baseline.json` holds the pre-refactor
//! measurements of the same sweep: the linear-scan router completed only
//! the paper-sized benchmarks and failed outright on every scale assay, so
//! any `ok` row at RA1K/RA10K is new capability, not just speedup.
//!
//! Run it with `cargo run --release -p biochip-bench --bin arch` or
//! `biochip bench arch [--sizes 100,1000,10000] [--mixers 8]`.

use std::time::Instant;

use biochip_synth::arch::{extract_transport_tasks, ArchitectureSynthesizer, SynthesisOptions};
use biochip_synth::assay::random::{self, RandomAssayConfig};
use biochip_synth::schedule::{ListScheduler, ScheduleProblem, Scheduler, SchedulingStrategy};

/// Default graph sizes of the architectural scale sweep.
pub const DEFAULT_ARCH_SIZES: &[usize] = &[100, 1_000, 10_000];

/// Default mixer count of the architectural scale sweep.
pub const DEFAULT_ARCH_MIXERS: usize = 8;

/// One row of the architectural scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchScaleRow {
    /// Sweep assay label (scale-family generator, `-scaled` suffix as in
    /// `BENCH_scale.json`).
    pub assay: String,
    /// Number of device operations.
    pub operations: usize,
    /// Mixers available to the scheduler.
    pub mixers: usize,
    /// `ok`, or `failed: <error>` when synthesis cannot route the assay.
    pub status: String,
    /// Transportation tasks extracted from the schedule.
    pub transport_tasks: usize,
    /// Peak concurrent channel storage demanded by the schedule.
    pub peak_storage: usize,
    /// Wall-clock seconds of one `ArchitectureSynthesizer::synthesize` call.
    pub arch_seconds: f64,
    /// Transport tasks routed per second (`transport_tasks / arch_seconds`;
    /// 0 for failed rows).
    pub routed_tasks_per_sec: f64,
    /// Connection-grid dimensions of the synthesized chip.
    pub grid: String,
    /// Channel segments kept (`n_e`).
    pub used_edges: usize,
    /// Valves of the synthesized chip (`n_v`).
    pub valves: usize,
    /// Largest reservation calendar over all edges and nodes.
    pub peak_calendar: usize,
    /// Placement + routing attempts across grid sizes.
    pub grids_tried: usize,
    /// Window-selection stage: candidate windows evaluated.
    pub windows_tried: usize,
    /// Path-search stage: Dijkstra invocations.
    pub path_searches: usize,
    /// Path-search stage: total nodes expanded.
    pub nodes_expanded: usize,
    /// Store stage: cache segments priced through the segment index.
    pub segments_priced: usize,
    /// Commit stage: tasks committed past their schedule deadline.
    pub postponed_tasks: usize,
}

biochip_json::impl_json_struct!(ArchScaleRow {
    assay,
    operations,
    mixers,
    status,
    transport_tasks,
    peak_storage,
    arch_seconds,
    routed_tasks_per_sec,
    grid,
    used_edges,
    valves,
    peak_calendar,
    grids_tried,
    windows_tried,
    path_searches,
    nodes_expanded,
    segments_priced,
    postponed_tasks,
});

/// Runs the architectural scale sweep over the given assay sizes.
///
/// Failures are recorded as rows (status `failed: …`, zero throughput)
/// instead of panicking, so the sweep doubles as the capability record the
/// baseline file was produced with.
#[must_use]
pub fn arch_scale_rows(sizes: &[usize], mixers: usize) -> Vec<ArchScaleRow> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let seed = size as u64;
        let graph = random::generate(&RandomAssayConfig::scaled(size, seed));
        let problem = ScheduleProblem::new(graph).with_mixers(mixers);
        let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
            .schedule(&problem)
            .unwrap_or_else(|e| panic!("arch sweep size {size}: scheduling failed: {e}"));
        let peak_storage = schedule.metrics(&problem).max_concurrent_storage;
        let tasks = extract_transport_tasks(&problem, &schedule).len();

        let started = Instant::now();
        let result = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule);
        let arch_seconds = started.elapsed().as_secs_f64();

        let assay = format!("{}-scaled", problem.graph().name());
        let row = match result {
            Ok(arch) => {
                arch.verify()
                    .unwrap_or_else(|e| panic!("arch sweep size {size}: verify failed: {e}"));
                let stats = arch.stats();
                ArchScaleRow {
                    assay,
                    operations: size,
                    mixers,
                    status: "ok".to_owned(),
                    transport_tasks: tasks,
                    peak_storage,
                    arch_seconds,
                    routed_tasks_per_sec: if arch_seconds > 0.0 {
                        tasks as f64 / arch_seconds
                    } else {
                        f64::INFINITY
                    },
                    grid: arch.grid().dimensions(),
                    used_edges: arch.used_edge_count(),
                    valves: arch.valve_count(),
                    peak_calendar: stats.peak_calendar_len,
                    grids_tried: stats.grids_tried,
                    windows_tried: stats.router.windows_tried,
                    path_searches: stats.router.path_searches,
                    nodes_expanded: stats.router.nodes_expanded,
                    segments_priced: stats.router.segments_priced,
                    postponed_tasks: stats.router.postponed_tasks,
                }
            }
            Err(e) => ArchScaleRow {
                assay,
                operations: size,
                mixers,
                status: format!("failed: {e}"),
                transport_tasks: tasks,
                peak_storage,
                arch_seconds,
                routed_tasks_per_sec: 0.0,
                grid: String::new(),
                used_edges: 0,
                valves: 0,
                peak_calendar: 0,
                grids_tried: 0,
                windows_tried: 0,
                path_searches: 0,
                nodes_expanded: 0,
                segments_priced: 0,
                postponed_tasks: 0,
            },
        };
        rows.push(row);
    }
    rows
}

/// Formats the architectural sweep as an aligned text table.
#[must_use]
pub fn format_arch_scale(rows: &[ArchScaleRow]) -> String {
    let mut out = String::from(
        "assay           |O|     tasks   peak_st  t_arch(s)  tasks/s    grid    ne     nv     cal   status\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:<7} {:<7} {:<8} {:<10.4} {:<10.0} {:<7} {:<6} {:<6} {:<5} {}\n",
            r.assay,
            r.operations,
            r.transport_tasks,
            r.peak_storage,
            r.arch_seconds,
            r.routed_tasks_per_sec,
            r.grid,
            r.used_edges,
            r.valves,
            r.peak_calendar,
            r.status,
        ));
    }
    out
}

/// Formats the architectural sweep as CSV.
#[must_use]
pub fn arch_scale_csv(rows: &[ArchScaleRow]) -> String {
    let mut out = String::from(
        "assay,operations,mixers,status,transport_tasks,peak_storage,arch_seconds,routed_tasks_per_sec,grid,used_edges,valves,peak_calendar,grids_tried,windows_tried,path_searches,nodes_expanded,segments_priced,postponed_tasks\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.6},{:.0},{},{},{},{},{},{},{},{},{},{}\n",
            r.assay,
            r.operations,
            r.mixers,
            r.status,
            r.transport_tasks,
            r.peak_storage,
            r.arch_seconds,
            r.routed_tasks_per_sec,
            r.grid,
            r.used_edges,
            r.valves,
            r.peak_calendar,
            r.grids_tried,
            r.windows_tried,
            r.path_searches,
            r.nodes_expanded,
            r.segments_priced,
            r.postponed_tasks,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arch_sweep_produces_ok_rows() {
        let rows = arch_scale_rows(&[60], 4);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.status, "ok", "{}", row.status);
        assert!(row.transport_tasks > 0);
        assert!(row.routed_tasks_per_sec > 0.0);
        assert!(row.used_edges > 0);
        assert!(row.windows_tried >= row.transport_tasks);
        assert!(row.path_searches > 0);
    }

    #[test]
    fn formatting_covers_every_row() {
        let rows = arch_scale_rows(&[40], 2);
        let table = format_arch_scale(&rows);
        assert!(table.contains("RA40"));
        let csv = arch_scale_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}
