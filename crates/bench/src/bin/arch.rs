//! Runs the architectural-synthesis scale sweep and writes
//! `BENCH_arch.json`.
//!
//! Usage: `arch [SIZE...]` — positional graph sizes (default
//! `100 1000 10000`). The mixer count is fixed at
//! [`biochip_bench::DEFAULT_ARCH_MIXERS`] so the trajectory isolates
//! graph-size effects. Compare against the committed
//! `BENCH_arch_baseline.json` (pre-refactor router) for the
//! routed-tasks/sec trajectory.

#![forbid(unsafe_code)]

fn main() {
    let sizes = match biochip_bench::parse_size_args(
        std::env::args().skip(1),
        biochip_bench::DEFAULT_ARCH_SIZES,
    ) {
        Ok(sizes) => sizes,
        Err(message) => {
            eprintln!(
                "{message}\nusage: arch [SIZE...]   (positive graph sizes, default 100 1000 10000)"
            );
            std::process::exit(2);
        }
    };
    let rows = biochip_bench::arch_scale_rows(&sizes, biochip_bench::DEFAULT_ARCH_MIXERS);
    println!("Architectural synthesis scale sweep (place & route)\n");
    print!("{}", biochip_bench::format_arch_scale(&rows));
    biochip_bench::write_bench_json("arch", &rows);
}
