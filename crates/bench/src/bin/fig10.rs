//! Regenerates Fig. 10: channel caching vs. a dedicated storage unit.

#![forbid(unsafe_code)]
fn main() {
    let rows = biochip_bench::fig10_rows();
    println!("Fig. 10: Execution time and valve ratios vs. dedicated storage unit\n");
    println!("{:<8} {:>16} {:>12}", "Assay", "Execution Time", "Valve");
    for (name, exec, valve) in &rows {
        println!("{name:<8} {exec:>16.3} {valve:>12.3}");
    }
    biochip_bench::write_bench_json("fig10", &rows);
}
