//! Regenerates Fig. 11: execution snapshots of the RA30 chip.

#![forbid(unsafe_code)]
fn main() {
    let snapshots = biochip_bench::fig11_snapshots();
    println!("Fig. 11: Snapshots of the synthesized chip executing RA30\n");
    for (t, art) in &snapshots {
        println!("--- snapshot at {t}s (D device, + switch, =/# active segments) ---");
        println!("{art}");
    }
    biochip_bench::write_bench_json("fig11", &snapshots);
}
