//! Regenerates Fig. 8: edge/valve ratios vs. the full connection grid.

#![forbid(unsafe_code)]
fn main() {
    let rows = biochip_bench::fig8_rows();
    println!("Fig. 8: Edge and valve ratios vs. the original connection grid\n");
    println!("{:<8} {:>10} {:>10}", "Assay", "Edge", "Valve");
    for (name, edge, valve) in &rows {
        println!("{name:<8} {edge:>10.3} {valve:>10.3}");
    }
    biochip_bench::write_bench_json("fig8", &rows);
}
