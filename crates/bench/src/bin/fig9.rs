//! Regenerates Fig. 9: results with and without storage optimization.

#![forbid(unsafe_code)]
fn main() {
    let rows = biochip_bench::fig9_rows();
    println!("Fig. 9: Optimize execution time only vs. execution time and storage\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Assay", "tE base", "tE opt", "edges base", "edges opt", "valves base", "valves opt"
    );
    for r in &rows {
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.assay,
            r.execution_baseline,
            r.execution_optimized,
            r.edges.0,
            r.edges.1,
            r.valves.0,
            r.valves.1
        );
    }
    biochip_bench::write_bench_json("fig9", &rows);
}
