//! Cold-pipeline parallel sweep → stdout table + `BENCH_pipeline.json`.
//!
//! Positional arguments are the thread counts to bench (default: `1` and
//! the host's core count). Exits non-zero when any assay's output differs
//! across thread counts — the CI gate for bit-identical parallel synthesis.

#![forbid(unsafe_code)]

fn main() {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut defaults = vec![1, host];
    defaults.dedup();
    let threads = match biochip_bench::parse_size_args(std::env::args().skip(1), &defaults) {
        Ok(threads) => threads,
        Err(message) => {
            eprintln!("usage: pipeline [thread-counts...]\n{message}");
            std::process::exit(2);
        }
    };
    println!("Cold-pipeline parallel sweep (schedule / place / route / layout / replay)\n");
    let rows = match biochip_bench::pipeline_rows(biochip_bench::DEFAULT_PIPELINE_ASSAYS, &threads)
    {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("pipeline sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", biochip_bench::format_pipeline(&rows));
    biochip_bench::write_bench_json("pipeline", &rows);
    if let Err(divergence) = biochip_bench::assert_thread_equality(&rows) {
        eprintln!("DETERMINISM FAILURE: {divergence}");
        std::process::exit(1);
    }
    // Honesty about the host: rows benched with more threads than the host
    // has cores measure oversubscription. They keep their output_key check
    // (determinism holds anywhere) but carry no speedup claim.
    for row in &rows {
        if row.undersubscribed {
            eprintln!(
                "WARNING: {} at {} thread(s) on a {host}-core host is undersubscribed — \
                 wall times measure oversubscription, speedup_vs_single withheld",
                row.assay, row.threads
            );
        }
    }
    // Non-fatal tripwire: on a host with enough cores to actually run the
    // benched threads, a threaded row slower than the sequential row means
    // the scoring pool is a pessimization there — worth a loud note even
    // though CI only hard-fails on determinism (shared runners are too
    // noisy for a hard speedup floor).
    for row in &rows {
        if let Some(speedup) = row.speedup_vs_single {
            if row.threads > 1 && speedup < 1.0 {
                eprintln!(
                    "WARNING: {} at {} thread(s) ran {speedup:.2}x vs sequential on a \
                     {host}-core host",
                    row.assay, row.threads
                );
            }
        }
    }
    println!("outputs are bit-identical across {threads:?} thread(s)");
}
