//! Runs the scheduler scale sweep and writes `BENCH_scale.json`.
//!
//! Usage: `scale [SIZE...]` — positional graph sizes (default
//! `100 1000 10000`). The mixer count is fixed at
//! [`biochip_bench::DEFAULT_SCALE_MIXERS`] so the trajectory isolates
//! graph-size effects.

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|arg| {
            arg.parse()
                .unwrap_or_else(|e| panic!("invalid size `{arg}`: {e}"))
        })
        .collect();
    let sizes = if sizes.is_empty() {
        biochip_bench::DEFAULT_SCALE_SIZES.to_vec()
    } else {
        sizes
    };
    let rows = biochip_bench::scale_rows(&sizes, biochip_bench::DEFAULT_SCALE_MIXERS);
    println!("Scheduler scale sweep (list scheduler, both strategies)\n");
    print!("{}", biochip_bench::format_scale(&rows));
    biochip_bench::write_bench_json("scale", &rows);
}
