//! Runs the scheduler scale sweep and writes `BENCH_scale.json`.
//!
//! Usage: `scale [SIZE...]` — positional graph sizes (default
//! `100 1000 10000`). The mixer count is fixed at
//! [`biochip_bench::DEFAULT_SCALE_MIXERS`] so the trajectory isolates
//! graph-size effects.

#![forbid(unsafe_code)]

fn main() {
    let sizes = match biochip_bench::parse_size_args(
        std::env::args().skip(1),
        biochip_bench::DEFAULT_SCALE_SIZES,
    ) {
        Ok(sizes) => sizes,
        Err(message) => {
            eprintln!("{message}\nusage: scale [SIZE...]   (positive graph sizes, default 100 1000 10000)");
            std::process::exit(2);
        }
    };
    let rows = biochip_bench::scale_rows(&sizes, biochip_bench::DEFAULT_SCALE_MIXERS);
    println!("Scheduler scale sweep (list scheduler, both strategies)\n");
    print!("{}", biochip_bench::format_scale(&rows));
    biochip_bench::write_bench_json("scale", &rows);
}
