//! Runs the job-service benches and writes `BENCH_serve.json`.
//!
//! Two phases share one artifact:
//!
//! 1. Warm vs. cold: one full RA1K synthesis over HTTP, then `WARM_JOBS`
//!    replays of the identical submission against the content-addressed
//!    result cache.
//! 2. Load: `CLIENTS` concurrent clients (distinct identities) drive a
//!    mixed cold/warm stream against a durable server, the server is
//!    drained and restarted on the same data directory mid-run, and a
//!    strictly-limited server is overloaded to confirm structured 429s
//!    and zero 5xx.
//!
//! Usage: `serve [WARM_JOBS] [WORKERS] [CLIENTS]` — defaults: 200 warm
//! submissions, 2 workers, 200 concurrent clients.

#![forbid(unsafe_code)]

fn main() {
    let mut args = std::env::args().skip(1);
    let mut parse_or_usage = |what: &str, default: usize| -> usize {
        match args.next() {
            None => default,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "invalid {what} `{raw}`\nusage: serve [WARM_JOBS] [WORKERS] [CLIENTS]   (positive integers)"
                    );
                    std::process::exit(2);
                }
            },
        }
    };
    let warm_jobs = parse_or_usage("warm-job count", 200);
    let workers = parse_or_usage("worker count", 2);
    let clients = parse_or_usage("client count", 200);

    let warm_cold = match biochip_bench::run_serve_bench(warm_jobs, workers) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("serve bench failed: {message}");
            std::process::exit(1);
        }
    };
    println!("Job-service loopback bench (cold synthesis vs. cached resubmission)\n");
    print!("{}", biochip_bench::format_serve(&warm_cold));

    let load = match biochip_bench::run_serve_load(clients, workers, true) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("serve load bench failed: {message}");
            std::process::exit(1);
        }
    };
    println!("\nJob-service load bench (concurrent clients, restart, overload)\n");
    print!("{}", biochip_bench::format_serve_load(&load));

    let doc = biochip_bench::ServeBenchDoc { warm_cold, load };
    biochip_bench::write_bench_json("serve", &doc);
}
