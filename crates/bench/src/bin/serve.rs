//! Runs the job-service warm-vs-cold loopback bench and writes
//! `BENCH_serve.json`.
//!
//! Usage: `serve [WARM_JOBS] [WORKERS]` — defaults: 200 warm submissions,
//! 2 workers. The cold number is one full RA1K synthesis over HTTP; the
//! warm number replays the identical submission against the
//! content-addressed result cache.

#![forbid(unsafe_code)]

fn main() {
    let mut args = std::env::args().skip(1);
    let mut parse_or_usage = |what: &str, default: usize| -> usize {
        match args.next() {
            None => default,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "invalid {what} `{raw}`\nusage: serve [WARM_JOBS] [WORKERS]   (positive integers)"
                    );
                    std::process::exit(2);
                }
            },
        }
    };
    let warm_jobs = parse_or_usage("warm-job count", 200);
    let workers = parse_or_usage("worker count", 2);

    match biochip_bench::run_serve_bench(warm_jobs, workers) {
        Ok(report) => {
            println!("Job-service loopback bench (cold synthesis vs. cached resubmission)\n");
            print!("{}", biochip_bench::format_serve(&report));
            biochip_bench::write_bench_json("serve", &report);
        }
        Err(message) => {
            eprintln!("serve bench failed: {message}");
            std::process::exit(1);
        }
    }
}
