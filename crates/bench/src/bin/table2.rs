//! Regenerates Table 2 of the paper.

#![forbid(unsafe_code)]
fn main() {
    let rows = biochip_bench::table2_rows();
    println!("Table 2: Results of Scheduling and Synthesis\n");
    print!("{}", biochip_bench::format_table2(&rows));
    biochip_bench::write_bench_json("table2", &rows);
}
