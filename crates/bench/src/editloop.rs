//! Edit-loop sweep: warm-start resynthesis after single edits vs. cold runs.
//!
//! The interactive design loop the staged cache exists for: synthesize an
//! assay once, then apply one small edit at a time and resynthesize. Each
//! edit runs **twice** — cold (empty store, the baseline an uncached server
//! would pay) and warm (against a [`biochip_synth::MemoryStageStore`]
//! primed by the previous runs, the path `biochip serve` takes) — and the
//! row records both wall times, the per-stage reuse the warm run achieved
//! ([`biochip_synth::StageReuse`]) and, crucially, both `output_key`s.
//!
//! **The keys must match byte-for-byte.** Warm starts are a shortcut to the
//! same answer, never a different one; [`assert_editloop_identity`] is the
//! CI gate that fails the bench job on any divergence.
//!
//! Four edit kinds cover the reuse matrix:
//!
//! * `layout-config` — touches only the layout slice: schedule **and**
//!   architecture are served by exact stage-key hits.
//! * `route-config` — touches the routing slice: schedule hits, routing
//!   re-runs (the prior placement no longer has matching routing options).
//! * `schedule-config` — touches the scheduling slice without changing the
//!   schedule itself (a larger ILP time limit above the heuristic
//!   threshold): the schedule recomputes, then the warm hint replays the
//!   entire architecture.
//! * `op-duration` — a real assay edit (one late operation's duration
//!   bumped): every stage key changes, and reuse comes from the warm
//!   prefix replay ripping up only the tasks the edit actually moved.
//!
//! Run it with `biochip bench editloop [--assays RA1K] [--edits 6]`; the
//! rows land in `BENCH_editloop.json`.

use std::time::{Duration, Instant};

use biochip_synth::assay::{library, SequencingGraph};
use biochip_synth::{
    FlowController, MemoryStageStore, NoStageStore, StageReuse, SynthesisConfig, SynthesisFlow,
};

use crate::BenchError;

/// Default assays of the edit-loop sweep. RA1K keeps the CI job fast; pass
/// `--assays RA1K,RA10K` for the paper-scale version.
pub const DEFAULT_EDITLOOP_ASSAYS: &[&str] = &["RA1K"];

/// Default number of edits per assay: one of each config kind plus three
/// operation edits.
pub const DEFAULT_EDITLOOP_EDITS: usize = 6;

/// One edit of the loop: the same edited input synthesized cold and warm.
#[derive(Debug, Clone, PartialEq)]
pub struct EditLoopRow {
    /// Assay name.
    pub assay: String,
    /// Edit kind (`layout-config`, `route-config`, `schedule-config`,
    /// `op-duration`).
    pub edit: String,
    /// Edit index within the sweep (seeds the op pick and config deltas).
    pub seed: usize,
    /// Wall seconds of the cold run (empty stage store).
    pub cold_seconds: f64,
    /// Wall seconds of the warm run (store primed by the previous runs).
    pub warm_seconds: f64,
    /// `cold_seconds / warm_seconds`.
    pub speedup: f64,
    /// How the warm run's schedule stage was satisfied (`hit`/`warm`/`miss`).
    pub schedule_reuse: String,
    /// How the warm run's architecture stage was satisfied.
    pub architecture_reuse: String,
    /// The warm run adopted the prior placement.
    pub placement_reused: bool,
    /// Transports the warm run committed by replay instead of search.
    pub tasks_replayed: usize,
    /// Total transports of the warm run.
    pub tasks_total: usize,
    /// Output key of the cold run.
    pub output_key_cold: String,
    /// Output key of the warm run — must equal `output_key_cold`.
    pub output_key_warm: String,
    /// `output_key_warm == output_key_cold`.
    pub identical: bool,
}

biochip_json::impl_json_struct!(EditLoopRow {
    assay,
    edit,
    seed,
    cold_seconds,
    warm_seconds,
    speedup,
    schedule_reuse,
    architecture_reuse,
    placement_reused,
    tasks_replayed,
    tasks_total,
    output_key_cold,
    output_key_warm,
    identical,
});

/// The edit kind applied at position `seed` of the sweep: the three config
/// kinds first (while the store holds exactly the base artifacts), then
/// operation edits.
fn edit_kind(seed: usize) -> &'static str {
    match seed {
        0 => "layout-config",
        1 => "route-config",
        2 => "schedule-config",
        _ => "op-duration",
    }
}

/// Rebuilds `base` with one operation's duration bumped. The pick comes
/// from the last quarter of positive-duration operations so the edit only
/// moves a late slice of the schedule — the realistic "tweak one step near
/// the end" case where warm replay pays off most.
fn edit_operation(base: &SequencingGraph, seed: usize) -> SequencingGraph {
    let targets: Vec<_> = base
        .iter()
        .filter(|(_, op)| op.duration > 0)
        .map(|(id, _)| id)
        .collect();
    let tail = (targets.len() / 4).max(1);
    let pick = targets[targets.len() - 1 - (seed % tail)];
    let mut graph = SequencingGraph::new(base.name().to_owned());
    for (id, op) in base.iter() {
        let mut op = op.clone();
        if id == pick {
            op.duration += 1;
        }
        graph.add_operation(op);
    }
    for edge in base.edges() {
        graph
            .add_dependency(edge.parent, edge.child)
            .expect("edges copied from a valid graph stay valid");
    }
    graph
}

/// The `(config, graph)` pair for edit `seed` of the sweep.
fn edited_input(
    base_config: &SynthesisConfig,
    base_graph: &SequencingGraph,
    seed: usize,
) -> (SynthesisConfig, SequencingGraph) {
    let mut config = base_config.clone();
    let mut graph = base_graph.clone();
    match edit_kind(seed) {
        "layout-config" => config.layout.channel_pitch += 1,
        "route-config" => config.synthesis.routing.max_deadline_overrun += 1,
        // Above the heuristic threshold the ILP limit is never consulted,
        // so this invalidates the schedule stage key without changing the
        // schedule — the warm hint then replays the whole architecture.
        "schedule-config" => config.ilp_time_limit += Duration::from_secs(1),
        _ => graph = edit_operation(base_graph, seed),
    }
    (config, graph)
}

/// Runs one `(config, graph)` input against `store`, returning the outcome
/// key, the reuse receipt and the wall seconds.
fn run_once(
    name: &str,
    config: &SynthesisConfig,
    graph: SequencingGraph,
    store: &dyn biochip_synth::StageStore,
) -> Result<(String, StageReuse, f64), BenchError> {
    let flow = SynthesisFlow::new(config.clone());
    let problem = flow.problem_for(graph);
    let started = Instant::now();
    let (outcome, reuse) = flow
        .run_problem_staged(problem, &FlowController::new(), store)
        .map_err(|error| BenchError::Synthesis {
            name: name.to_owned(),
            error,
        })?;
    let seconds = started.elapsed().as_secs_f64();
    Ok((outcome.output_key(), reuse, seconds))
}

/// Runs the sweep: per assay, one base run to prime the store, then `edits`
/// single edits, each synthesized cold and warm.
///
/// # Errors
///
/// Returns a [`BenchError`] for unknown assay names and synthesis failures.
pub fn editloop_rows(assays: &[&str], edits: usize) -> Result<Vec<EditLoopRow>, BenchError> {
    let mut rows = Vec::with_capacity(assays.len() * edits);
    for &name in assays {
        let graph = library::by_name(name).ok_or_else(|| BenchError::UnknownBenchmark {
            name: name.to_owned(),
            known: library::NAMED_ASSAYS.iter().map(|(n, _)| *n).collect(),
        })?;
        // The same 8-mixer inventory as the cold pipeline sweep. The scale
        // assays are far above the ILP threshold, so the Auto scheduler
        // resolves to the deterministic storage-aware heuristic — a
        // precondition for byte-identical warm/cold comparison.
        let config = SynthesisConfig::default().with_mixers(8);
        let store = MemoryStageStore::new();
        run_once(name, &config, graph.clone(), &store)?;
        for seed in 0..edits {
            let (edited_config, edited_graph) = edited_input(&config, &graph, seed);
            let (cold_key, _, cold_seconds) =
                run_once(name, &edited_config, edited_graph.clone(), &NoStageStore)?;
            let (warm_key, reuse, warm_seconds) =
                run_once(name, &edited_config, edited_graph, &store)?;
            rows.push(EditLoopRow {
                assay: name.to_owned(),
                edit: edit_kind(seed).to_owned(),
                seed,
                cold_seconds,
                warm_seconds,
                speedup: if warm_seconds > 0.0 {
                    cold_seconds / warm_seconds
                } else {
                    1.0
                },
                schedule_reuse: reuse.schedule.name().to_owned(),
                architecture_reuse: reuse.architecture.name().to_owned(),
                placement_reused: reuse.placement_reused,
                tasks_replayed: reuse.tasks_replayed,
                tasks_total: reuse.tasks_total,
                identical: warm_key == cold_key,
                output_key_cold: cold_key,
                output_key_warm: warm_key,
            });
        }
    }
    Ok(rows)
}

/// Verifies that every warm run reproduced its cold run's output key — the
/// CI gate that fails the bench job when a warm start changes the answer.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn assert_editloop_identity(rows: &[EditLoopRow]) -> Result<(), String> {
    for row in rows {
        if !row.identical {
            return Err(format!(
                "{} edit {} ({}): warm output [{}] differs from cold output [{}] — \
                 warm-start synthesis must be byte-identical",
                row.assay, row.seed, row.edit, row.output_key_warm, row.output_key_cold
            ));
        }
    }
    Ok(())
}

/// Formats the sweep as an aligned text table.
#[must_use]
pub fn format_editloop(rows: &[EditLoopRow]) -> String {
    let mut out = String::from(
        "assay     edit             cold(s)   warm(s)   speedup  sched  arch   replayed     identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<16} {:<9.4} {:<9.4} {:<8.2} {:<6} {:<6} {:<12} {}\n",
            r.assay,
            r.edit,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup,
            r.schedule_reuse,
            r.architecture_reuse,
            format!("{}/{}", r.tasks_replayed, r.tasks_total),
            r.identical,
        ));
    }
    out
}

/// Formats the sweep as CSV.
#[must_use]
pub fn editloop_csv(rows: &[EditLoopRow]) -> String {
    let mut out = String::from(
        "assay,edit,seed,cold_seconds,warm_seconds,speedup,schedule_reuse,architecture_reuse,placement_reused,tasks_replayed,tasks_total,output_key_cold,output_key_warm,identical\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.3},{},{},{},{},{},{},{},{}\n",
            r.assay,
            r.edit,
            r.seed,
            r.cold_seconds,
            r.warm_seconds,
            r.speedup,
            r.schedule_reuse,
            r.architecture_reuse,
            r.placement_reused,
            r.tasks_replayed,
            r.tasks_total,
            r.output_key_cold,
            r.output_key_warm,
            r.identical,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra30_edit_loop_is_byte_identical_and_reuses_stages() {
        // RA30 (30 device operations, above the ILP threshold) keeps the
        // debug-build test fast while exercising every edit kind once plus
        // one op edit.
        let rows = editloop_rows(&["RA30"], 4).unwrap();
        assert_eq!(rows.len(), 4);
        assert_editloop_identity(&rows).unwrap();
        let by_kind = |kind: &str| {
            rows.iter()
                .find(|r| r.edit == kind)
                .unwrap_or_else(|| panic!("{kind} row missing"))
        };
        // Layout edit: both upstream stages served by exact key hits.
        let layout = by_kind("layout-config");
        assert_eq!(layout.schedule_reuse, "hit");
        assert_eq!(layout.architecture_reuse, "hit");
        // Route edit: schedule hits, the architecture re-runs.
        let route = by_kind("route-config");
        assert_eq!(route.schedule_reuse, "hit");
        assert_ne!(route.architecture_reuse, "hit");
        // Schedule-slice edit: the schedule recomputes to the same result,
        // so the warm hint replays the full architecture.
        let sched = by_kind("schedule-config");
        assert_eq!(sched.schedule_reuse, "miss");
        assert_eq!(sched.architecture_reuse, "warm");
        assert_eq!(sched.tasks_replayed, sched.tasks_total);
        assert!(sched.placement_reused);
        // Op edit: everything misses by key, reuse comes from prefix replay.
        let op = by_kind("op-duration");
        assert_eq!(op.schedule_reuse, "miss");
        assert!(op.tasks_total > 0);
        // Rendering smoke checks + JSON round-trip.
        let table = format_editloop(&rows);
        assert!(table.contains("RA30"));
        assert_eq!(editloop_csv(&rows).lines().count(), rows.len() + 1);
        let json = biochip_json::Serialize::to_json(&rows[0]);
        let back: EditLoopRow = biochip_json::Deserialize::from_json(&json).unwrap();
        assert_eq!(back, rows[0]);
    }

    #[test]
    fn divergent_keys_fail_the_identity_gate() {
        let mut rows = editloop_rows(&["RA30"], 1).unwrap();
        rows[0].identical = false;
        rows[0].output_key_warm = "deadbeefdeadbeef".to_owned();
        let err = assert_editloop_identity(&rows).unwrap_err();
        assert!(err.contains("byte-identical"), "{err}");
        assert!(err.contains("RA30"), "{err}");
    }

    #[test]
    fn unknown_assays_error_cleanly() {
        let err = editloop_rows(&["NOPE"], 1).unwrap_err();
        assert!(matches!(err, BenchError::UnknownBenchmark { .. }));
    }
}
