//! Experiment harnesses reproducing the paper's tables and figures.
//!
//! Every table/figure of the evaluation section has a function here that
//! regenerates its rows, a binary that prints them
//! (`cargo run -p biochip-bench --bin table2` etc.) and a Criterion bench
//! measuring the runtime of the underlying synthesis
//! (`cargo bench -p biochip-bench`). `EXPERIMENTS.md` records the measured
//! values next to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch_scale;
pub mod editloop;
pub mod pipeline;
pub mod scale;
pub mod serve_bench;

pub use arch_scale::{
    arch_scale_csv, arch_scale_rows, format_arch_scale, ArchScaleRow, DEFAULT_ARCH_MIXERS,
    DEFAULT_ARCH_SIZES,
};
pub use editloop::{
    assert_editloop_identity, editloop_csv, editloop_rows, format_editloop, EditLoopRow,
    DEFAULT_EDITLOOP_ASSAYS, DEFAULT_EDITLOOP_EDITS,
};
pub use pipeline::{
    assert_thread_equality, format_pipeline, pipeline_csv, pipeline_rows, pipeline_rows_with_host,
    PipelineRow, DEFAULT_PIPELINE_ASSAYS,
};
pub use scale::{
    format_scale, scale_csv, scale_rows, ScaleRow, DEFAULT_SCALE_MIXERS, DEFAULT_SCALE_SIZES,
};
pub use serve_bench::{
    format_serve, format_serve_load, run_serve_bench, run_serve_load, ServeBenchDoc,
    ServeBenchReport, ServeLoadReport,
};

use std::fmt;

use biochip_synth::assay::{library, SequencingGraph};
use biochip_synth::{FlowError, SchedulerChoice, SynthesisConfig, SynthesisFlow, SynthesisReport};

/// A benchmark-harness failure on user-supplied input (an unknown benchmark
/// name, a synthesis failure of a requested run).
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// The requested name is not part of the benchmark set.
    UnknownBenchmark {
        /// The name that did not resolve.
        name: String,
        /// The names that would have.
        known: Vec<&'static str>,
    },
    /// Synthesis of the named benchmark failed.
    Synthesis {
        /// The benchmark being synthesized.
        name: String,
        /// The flow failure.
        error: FlowError,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownBenchmark { name, known } => {
                write!(
                    f,
                    "unknown benchmark `{name}` (known: {})",
                    known.join(", ")
                )
            }
            BenchError::Synthesis { name, error } => write!(f, "{name}: {error}"),
        }
    }
}

impl std::error::Error for BenchError {}

/// Parses positional size arguments for the `scale`/`arch` bins, falling
/// back to `defaults` when none are given.
///
/// # Errors
///
/// Returns a usage message (for stderr + exit code 2) when an argument is
/// not a positive integer — the bins must not panic on user input.
pub fn parse_size_args(
    args: impl IntoIterator<Item = String>,
    defaults: &[usize],
) -> Result<Vec<usize>, String> {
    let mut sizes = Vec::new();
    for arg in args {
        match arg.parse::<usize>() {
            Ok(size) if size > 0 => sizes.push(size),
            Ok(_) => return Err(format!("invalid size `{arg}`: must be positive")),
            Err(e) => return Err(format!("invalid size `{arg}`: {e}")),
        }
    }
    if sizes.is_empty() {
        sizes = defaults.to_vec();
    }
    Ok(sizes)
}

/// The commit the benchmark binary was run against: `$BIOCHIP_COMMIT` when
/// set (CI exports it), otherwise `git rev-parse --short HEAD`, otherwise
/// `"unknown"`. Stamped into every artifact so trajectories across commits
/// stay comparable.
#[must_use]
pub fn bench_commit() -> String {
    if let Ok(commit) = std::env::var("BIOCHIP_COMMIT") {
        if !commit.is_empty() {
            return commit;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Writes a machine-readable benchmark artifact as `BENCH_<name>.json`.
///
/// Every artifact is wrapped in a `biochip-bench/v1` envelope stamping the
/// commit ([`bench_commit`]) and the host's thread count next to the
/// payload (under `data`), so artifacts from different commits and machines
/// stay comparable. The output directory is `$BIOCHIP_BENCH_DIR` (default:
/// the current directory), so CI can collect every artifact from one place
/// and track the perf trajectory across commits. I/O failures are reported
/// to stderr but do not abort the run — the printed tables remain the
/// primary output.
pub fn write_bench_json<T: biochip_json::Serialize>(name: &str, value: &T) {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let envelope = biochip_json::Json::object([
        (
            "schema",
            biochip_json::Json::String("biochip-bench/v1".to_owned()),
        ),
        ("commit", biochip_json::Json::String(bench_commit())),
        (
            "host_threads",
            biochip_json::Json::Number(host_threads as f64),
        ),
        ("data", value.to_json()),
    ]);
    let dir = std::env::var("BIOCHIP_BENCH_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, envelope.to_pretty()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// Times `runs` executions of `f`, printing and returning the mean seconds.
///
/// The stand-in for the Criterion harness (not fetchable offline): prints a
/// `bench <name>: mean <t>s over <n> runs` line and records the numbers via
/// [`write_bench_json`] under `BENCH_bench_<name>.json`.
pub fn measure<T>(name: &str, runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs > 0, "need at least one run");
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(started.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    println!("bench {name}: mean {mean:.4}s (min {min:.4}s, max {max:.4}s) over {runs} runs");
    #[derive(Debug)]
    struct Sample {
        name: String,
        runs: usize,
        mean_seconds: f64,
        min_seconds: f64,
        max_seconds: f64,
    }
    biochip_json::impl_json_struct!(Sample {
        name,
        runs,
        mean_seconds,
        min_seconds,
        max_seconds
    });
    write_bench_json(
        &format!("bench_{name}"),
        &Sample {
            name: name.to_owned(),
            runs,
            mean_seconds: mean,
            min_seconds: min,
            max_seconds: max,
        },
    );
    mean
}

/// The benchmark set of Table 2 with the device inventory used for each
/// assay (the paper does not report its device counts; these are chosen so
/// that utilization is comparable to the reported execution times).
#[must_use]
pub fn paper_configs() -> Vec<(&'static str, SequencingGraph, SynthesisConfig)> {
    library::paper_benchmarks()
        .into_iter()
        .map(|(name, graph)| {
            let ops = graph.device_operations().len();
            let config = SynthesisConfig::default()
                .with_mixers(match ops {
                    0..=7 => 2,
                    8..=30 => 3,
                    _ => 4,
                })
                .with_detectors(2)
                .with_heaters(1)
                .with_scheduler(SchedulerChoice::Auto);
            (name, graph, config)
        })
        .collect()
}

fn benchmark_config(name: &str) -> Result<(SequencingGraph, SynthesisConfig), BenchError> {
    paper_configs()
        .into_iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, graph, config)| (graph, config))
        .ok_or_else(|| BenchError::UnknownBenchmark {
            name: name.to_owned(),
            known: paper_configs().iter().map(|(n, _, _)| *n).collect(),
        })
}

/// Runs the full flow for one named benchmark with its Table-2 configuration.
///
/// # Errors
///
/// Returns a [`BenchError`] when the name is not part of the benchmark set
/// or its synthesis fails — both reachable from user-supplied benchmark
/// names, so neither panics.
pub fn run_benchmark(name: &str) -> Result<SynthesisReport, BenchError> {
    let (graph, config) = benchmark_config(name)?;
    Ok(SynthesisFlow::new(config)
        .run(graph)
        .map_err(|error| BenchError::Synthesis {
            name: name.to_owned(),
            error,
        })?
        .report)
}

/// Like [`run_benchmark`] but forcing the heuristic (storage-aware list)
/// scheduler — used by the timing benches so that a single iteration does
/// not include the ILP solver's multi-second time limit.
///
/// # Errors
///
/// Returns a [`BenchError`] when the name is not part of the benchmark set
/// or its synthesis fails.
pub fn run_benchmark_heuristic(name: &str) -> Result<SynthesisReport, BenchError> {
    let (graph, config) = benchmark_config(name)?;
    Ok(
        SynthesisFlow::new(config.with_scheduler(SchedulerChoice::StorageAware))
            .run(graph)
            .map_err(|error| BenchError::Synthesis {
                name: name.to_owned(),
                error,
            })?
            .report,
    )
}

/// Table 2: one report per benchmark assay (scheduling, architectural
/// synthesis and physical design results).
#[must_use]
pub fn table2_rows() -> Vec<SynthesisReport> {
    paper_configs()
        .into_iter()
        .map(|(name, graph, config)| {
            SynthesisFlow::new(config)
                .run(graph)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .report
        })
        .collect()
}

/// Fig. 8: used-edge and valve ratios of the synthesized chips relative to
/// the full connection grid, per assay.
#[must_use]
pub fn fig8_rows() -> Vec<(String, f64, f64)> {
    table2_rows()
        .into_iter()
        .map(|r| (r.assay.clone(), r.edge_ratio, r.valve_ratio))
        .collect()
}

/// One row of the Fig. 9 comparison (with vs. without storage optimization).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Assay name.
    pub assay: String,
    /// Execution time when optimizing execution time only.
    pub execution_baseline: u64,
    /// Execution time when optimizing execution time and storage.
    pub execution_optimized: u64,
    /// Kept channel segments (baseline / optimized).
    pub edges: (usize, usize),
    /// Valves (baseline / optimized).
    pub valves: (usize, usize),
}

biochip_json::impl_json_struct!(Fig9Row {
    assay,
    execution_baseline,
    execution_optimized,
    edges,
    valves,
});

/// Fig. 9: RA30, IVD and PCR synthesized from a makespan-only schedule and
/// from a storage-optimized schedule.
#[must_use]
pub fn fig9_rows() -> Vec<Fig9Row> {
    ["RA30", "IVD", "PCR"]
        .into_iter()
        .map(|name| {
            let (_, graph, config) = paper_configs()
                .into_iter()
                .find(|(n, _, _)| *n == name)
                .expect("benchmark exists");
            let baseline =
                SynthesisFlow::new(config.clone().with_scheduler(SchedulerChoice::MakespanOnly))
                    .run(graph.clone())
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
                    .report;
            let optimized =
                SynthesisFlow::new(config.with_scheduler(SchedulerChoice::StorageAware))
                    .run(graph)
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
                    .report;
            Fig9Row {
                assay: name.to_owned(),
                execution_baseline: baseline.execution_time,
                execution_optimized: optimized.execution_time,
                edges: (baseline.used_edges, optimized.used_edges),
                valves: (baseline.valves, optimized.valves),
            }
        })
        .collect()
}

/// Fig. 10: execution-time and valve ratios of the channel-caching chip vs.
/// the dedicated-storage baseline, per assay (values below 1 mean the
/// proposed method wins).
#[must_use]
pub fn fig10_rows() -> Vec<(String, f64, f64)> {
    table2_rows()
        .into_iter()
        .map(|r| {
            (
                r.assay.clone(),
                r.execution_ratio_vs_dedicated(),
                r.valve_ratio_vs_dedicated(),
            )
        })
        .collect()
}

/// Fig. 11: two ASCII snapshots of the RA30 chip while it executes (one
/// during a store, one while a sample rests in its channel segment).
#[must_use]
pub fn fig11_snapshots() -> Vec<(u64, String)> {
    let (_, graph, config) = paper_configs()
        .into_iter()
        .find(|(n, _, _)| *n == "RA30")
        .expect("RA30 exists");
    let outcome = SynthesisFlow::new(config)
        .run(graph)
        .expect("RA30 synthesizes");
    let storage = outcome.architecture.storage_routes();
    let times: Vec<u64> = if let Some(store) = storage.first() {
        let (from, until) = store.task.storage_interval.unwrap_or((35, 45));
        vec![store.task.window_start, (from + until) / 2]
    } else {
        let makespan = outcome.schedule.makespan();
        vec![makespan / 3, 2 * makespan / 3]
    };
    times
        .into_iter()
        .map(|t| {
            let snapshot = biochip_synth::sim::snapshot_at(&outcome.architecture, t);
            let art = biochip_synth::layout::render_ascii(
                &outcome.architecture,
                &snapshot.active_edges(),
            );
            (t, art)
        })
        .collect()
}

/// Formats Table 2 in the paper's column order.
#[must_use]
pub fn format_table2(rows: &[SynthesisReport]) -> String {
    let mut out = String::from(
        "Assay   |O|   tE(s)  ts(ms)    G     ne   nv   tr(ms)   dr       de       dp       tp(ms)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<7} {:<5} {:<7} {:<9} {:<5} {:<4} {:<4} {:<8} {:<8} {:<8} {:<8} {:.2}\n",
            r.assay,
            r.operations,
            r.execution_time,
            r.scheduling_time.as_millis(),
            r.grid,
            r.used_edges,
            r.valves,
            r.architecture_time.as_millis(),
            r.dims_scaled,
            r.dims_expanded,
            r.dims_compressed,
            r.layout_time.as_secs_f64() * 1000.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_set_covers_all_six_assays() {
        let names: Vec<&str> = paper_configs().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["RA100", "RA70", "CPA", "RA30", "IVD", "PCR"]);
    }

    #[test]
    fn unknown_benchmark_names_error_instead_of_panicking() {
        let err = run_benchmark("NOPE").unwrap_err();
        assert!(matches!(err, BenchError::UnknownBenchmark { .. }));
        assert!(err.to_string().contains("PCR"), "{err}");
        let err = run_benchmark_heuristic("NOPE").unwrap_err();
        assert!(matches!(err, BenchError::UnknownBenchmark { .. }));
    }

    #[test]
    fn size_args_parse_or_report_usage() {
        let ok = parse_size_args(["10".to_owned(), "20".to_owned()], &[1]).unwrap();
        assert_eq!(ok, vec![10, 20]);
        assert_eq!(parse_size_args([], &[100, 1000]).unwrap(), vec![100, 1000]);
        assert!(parse_size_args(["ten".to_owned()], &[1])
            .unwrap_err()
            .contains("ten"));
        assert!(parse_size_args(["0".to_owned()], &[1])
            .unwrap_err()
            .contains("positive"));
        assert!(parse_size_args(["-3".to_owned()], &[1]).is_err());
    }

    #[test]
    fn pcr_and_ivd_reports_have_the_paper_shape() {
        for name in ["PCR", "IVD"] {
            let report = run_benchmark(name).unwrap();
            assert!(
                report.edge_ratio < 1.0,
                "{name}: only part of the grid is kept"
            );
            assert!(report.valve_ratio < 1.0, "{name}");
            assert!(
                report.valve_ratio_vs_dedicated() < 1.0,
                "{name}: fewer valves than the baseline"
            );
        }
    }

    #[test]
    fn fig9_rows_cover_the_three_assays() {
        let rows = fig9_rows();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.execution_baseline > 0);
            assert!(row.execution_optimized > 0);
            assert!(row.edges.0 > 0 && row.edges.1 > 0);
        }
    }

    #[test]
    fn fig10_ratios_favor_channel_caching_for_storage_heavy_assays() {
        let rows = fig10_rows();
        assert_eq!(rows.len(), 6);
        for (name, exec_ratio, valve_ratio) in &rows {
            assert!(*valve_ratio < 1.0, "{name}: valves must beat the baseline");
            assert!(
                *exec_ratio <= 1.5,
                "{name}: execution far above the baseline"
            );
        }
        // At least one assay shows a clear execution-time win, mirroring the
        // paper's 28 % improvement on its largest benchmark.
        assert!(rows.iter().any(|(_, e, _)| *e < 1.0));
    }

    #[test]
    fn fig11_produces_two_snapshots() {
        let snapshots = fig11_snapshots();
        assert_eq!(snapshots.len(), 2);
        for (_, art) in &snapshots {
            assert!(art.contains('D'));
        }
    }

    #[test]
    fn table2_formatting_contains_every_assay() {
        let rows = vec![run_benchmark("PCR").unwrap()];
        let text = format_table2(&rows);
        assert!(text.contains("PCR"));
        assert!(text.lines().count() >= 2);
    }
}
