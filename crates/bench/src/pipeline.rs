//! Cold-pipeline parallel sweep: per-stage latency and multi-core speedup.
//!
//! `BENCH_arch.json` tracks the router's throughput; this sweep tracks the
//! whole **cold path** — schedule → place → route → layout → replay — per
//! thread count, for the scale assays the job service actually serves cold
//! (RA1K and RA10K). Each row records the wall time of every stage, the
//! end-to-end total, the speedup against the `threads = 1` row of the same
//! assay, and an `output_key`: the canonical content hash of the
//! (timing-stripped) report, the schedule and the replay. The synthesizer's
//! parallelism is **bit-deterministic** — multi-start placement reduces by
//! `(cost, start index)`, router scoring by candidate order — so the key
//! must be identical across thread counts; [`assert_thread_equality`]
//! enforces exactly that and the `pipeline` bin fails CI when it does not
//! hold.
//!
//! Run it with `cargo run --release -p biochip-bench --bin pipeline`
//! (positional args = thread counts, default `1 <cores>`) or
//! `biochip bench pipeline [--threads 1,4] [--assays RA1K,RA10K]`.

use std::time::Instant;

use biochip_synth::arch::{ArchitectureSynthesizer, Parallelism};
use biochip_synth::assay::library;
use biochip_synth::sim::{replay, simulate_dedicated_storage};
use biochip_synth::{SynthesisConfig, SynthesisFlow, SynthesisReport};

use crate::BenchError;

/// Default assays of the pipeline sweep: the scale workloads of the CI
/// smoke runs, under the same 8-mixer inventory.
pub const DEFAULT_PIPELINE_ASSAYS: &[&str] = &["RA1K", "RA10K"];

/// One row of the pipeline sweep: one assay, cold, at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Assay name.
    pub assay: String,
    /// Number of device operations.
    pub operations: usize,
    /// Scoring threads the synthesizer was allowed.
    pub threads: usize,
    /// Scheduling wall seconds.
    pub schedule_seconds: f64,
    /// Placement wall seconds (all grid attempts).
    pub place_seconds: f64,
    /// Routing wall seconds (all grid attempts).
    pub route_seconds: f64,
    /// Physical-design wall seconds.
    pub layout_seconds: f64,
    /// Replay + dedicated-baseline wall seconds.
    pub replay_seconds: f64,
    /// End-to-end cold wall seconds (sum of the stages above).
    pub total_seconds: f64,
    /// `total_seconds(threads = 1) / total_seconds` for the same assay
    /// (1.0 for the single-thread row itself).
    pub speedup_vs_single: f64,
    /// Canonical content hash of the timing-stripped outcome (report,
    /// schedule, replay). Must be identical across thread counts.
    pub output_key: String,
    /// Grid attempts the synthesizer needed.
    pub grids_tried: usize,
}

biochip_json::impl_json_struct!(PipelineRow {
    assay,
    operations,
    threads,
    schedule_seconds,
    place_seconds,
    route_seconds,
    layout_seconds,
    replay_seconds,
    total_seconds,
    speedup_vs_single,
    output_key,
    grids_tried,
});

/// Runs one assay cold at one thread count, timing each stage.
fn run_cold(name: &str, threads: usize) -> Result<PipelineRow, BenchError> {
    let graph = library::by_name(name).ok_or_else(|| BenchError::UnknownBenchmark {
        name: name.to_owned(),
        known: library::NAMED_ASSAYS.iter().map(|(n, _)| *n).collect(),
    })?;
    let config = SynthesisConfig::default()
        .with_mixers(8)
        .with_parallelism(Parallelism::with_threads(threads));
    let flow = SynthesisFlow::new(config.clone());
    let problem = flow.problem_for(graph);
    let operations = problem.graph().device_operations().len();
    let synthesis_err = |error| BenchError::Synthesis {
        name: name.to_owned(),
        error,
    };

    let started = Instant::now();
    let schedule = flow.schedule(&problem).map_err(synthesis_err)?;
    let schedule_seconds = started.elapsed().as_secs_f64();

    let arch_started = Instant::now();
    let (architecture, arch_timings) = ArchitectureSynthesizer::new(config.synthesis.clone())
        .with_parallelism(config.parallelism)
        .synthesize_timed(&problem, &schedule)
        .map_err(|e| synthesis_err(biochip_synth::FlowError::Architecture(e)))?;
    let arch_seconds = arch_started.elapsed().as_secs_f64();
    // Attribute the (tiny) non-place/route remainder of the stage — task
    // extraction, verification — to routing, keeping the stage sum equal to
    // the wall total.
    let place_seconds = arch_timings.placement_seconds;
    let route_seconds = (arch_seconds - place_seconds).max(arch_timings.routing_seconds);

    let layout_started = Instant::now();
    let layout = biochip_synth::layout::generate_layout(&architecture, &config.layout);
    let layout_seconds = layout_started.elapsed().as_secs_f64();

    let replay_started = Instant::now();
    let execution = replay(&problem, &schedule, &architecture);
    let dedicated = simulate_dedicated_storage(&problem, &schedule);
    let replay_seconds = replay_started.elapsed().as_secs_f64();

    let report = SynthesisReport::collect(
        &problem,
        &schedule,
        &architecture,
        &layout,
        &execution,
        &dedicated,
        std::time::Duration::from_secs_f64(schedule_seconds),
        std::time::Duration::from_secs_f64(arch_seconds),
        std::time::Duration::from_secs_f64(layout_seconds),
    );
    let outcome = biochip_json::Json::object([
        (
            "report",
            biochip_json::Serialize::to_json(&report.without_timings()),
        ),
        ("schedule", biochip_json::Serialize::to_json(&schedule)),
        ("execution", biochip_json::Serialize::to_json(&execution)),
    ]);
    let output_key = format!("{:016x}", biochip_json::canonical_hash(&outcome));

    Ok(PipelineRow {
        assay: report.assay.clone(),
        operations,
        threads,
        schedule_seconds,
        place_seconds,
        route_seconds,
        layout_seconds,
        replay_seconds,
        total_seconds: schedule_seconds + arch_seconds + layout_seconds + replay_seconds,
        speedup_vs_single: 1.0,
        output_key,
        grids_tried: report.grids_tried,
    })
}

/// Runs the sweep: every assay × every thread count, speedups filled in
/// against each assay's `threads = 1` row (or, when 1 was not benched, the
/// row with the lowest benched thread count).
///
/// # Errors
///
/// Returns a [`BenchError`] for unknown assay names and synthesis failures.
pub fn pipeline_rows(
    assays: &[&str],
    thread_counts: &[usize],
) -> Result<Vec<PipelineRow>, BenchError> {
    let mut rows = Vec::with_capacity(assays.len() * thread_counts.len());
    for &name in assays {
        let first = rows.len();
        for &threads in thread_counts {
            rows.push(run_cold(name, threads.max(1))?);
        }
        let base_total = rows[first..]
            .iter()
            .min_by_key(|r| r.threads)
            .map(|r| r.total_seconds)
            .unwrap_or(0.0);
        for row in &mut rows[first..] {
            row.speedup_vs_single = if row.total_seconds > 0.0 {
                base_total / row.total_seconds
            } else {
                1.0
            };
        }
    }
    Ok(rows)
}

/// Verifies that every assay produced one identical `output_key` across all
/// benched thread counts.
///
/// # Errors
///
/// Returns a description of the first divergence — the CI gate that fails
/// the job when threaded output differs from sequential output.
pub fn assert_thread_equality(rows: &[PipelineRow]) -> Result<(), String> {
    for row in rows {
        let baseline = rows
            .iter()
            .find(|r| r.assay == row.assay)
            .expect("row's own assay is present");
        if row.output_key != baseline.output_key {
            return Err(format!(
                "{}: output at {} thread(s) [{}] differs from {} thread(s) [{}] — \
                 parallel synthesis must be bit-identical",
                row.assay, row.threads, row.output_key, baseline.threads, baseline.output_key
            ));
        }
    }
    Ok(())
}

/// Formats the pipeline sweep as an aligned text table.
#[must_use]
pub fn format_pipeline(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "assay     |O|     thr  t_sched(s)  t_place(s)  t_route(s)  t_layout(s)  t_replay(s)  total(s)  speedup  key\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<7} {:<4} {:<11.4} {:<11.4} {:<11.4} {:<12.4} {:<12.4} {:<9.4} {:<8.2} {}\n",
            r.assay,
            r.operations,
            r.threads,
            r.schedule_seconds,
            r.place_seconds,
            r.route_seconds,
            r.layout_seconds,
            r.replay_seconds,
            r.total_seconds,
            r.speedup_vs_single,
            r.output_key,
        ));
    }
    out
}

/// Formats the pipeline sweep as CSV.
#[must_use]
pub fn pipeline_csv(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "assay,operations,threads,schedule_seconds,place_seconds,route_seconds,layout_seconds,replay_seconds,total_seconds,speedup_vs_single,output_key,grids_tried\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{},{}\n",
            r.assay,
            r.operations,
            r.threads,
            r.schedule_seconds,
            r.place_seconds,
            r.route_seconds,
            r.layout_seconds,
            r.replay_seconds,
            r.total_seconds,
            r.speedup_vs_single,
            r.output_key,
            r.grids_tried,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_sweep_is_thread_identical() {
        // PCR is tiny, so the sweep is fast even in debug builds.
        let rows = pipeline_rows(&["PCR"], &[1, 2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert!((rows[0].speedup_vs_single - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].output_key, rows[1].output_key);
        // The baseline is the threads = 1 row regardless of sweep order.
        let reversed = pipeline_rows(&["PCR"], &[2, 1]).unwrap();
        let single = reversed.iter().find(|r| r.threads == 1).unwrap();
        assert!(
            (single.speedup_vs_single - 1.0).abs() < 1e-12,
            "the single-thread row is its own baseline, got {}",
            single.speedup_vs_single
        );
        assert_thread_equality(&rows).unwrap();
        assert!(rows.iter().all(|r| r.total_seconds > 0.0));
        let table = format_pipeline(&rows);
        assert!(table.contains("PCR"));
        let csv = pipeline_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }

    #[test]
    fn divergent_keys_are_reported() {
        let mut rows = pipeline_rows(&["PCR"], &[1]).unwrap();
        let mut forged = rows[0].clone();
        forged.threads = 4;
        forged.output_key = "deadbeefdeadbeef".to_owned();
        rows.push(forged);
        let err = assert_thread_equality(&rows).unwrap_err();
        assert!(err.contains("PCR"), "{err}");
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn unknown_assays_error_cleanly() {
        let err = pipeline_rows(&["NOPE"], &[1]).unwrap_err();
        assert!(matches!(err, BenchError::UnknownBenchmark { .. }));
    }
}
