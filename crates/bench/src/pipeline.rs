//! Cold-pipeline parallel sweep: per-stage latency and multi-core speedup.
//!
//! `BENCH_arch.json` tracks the router's throughput; this sweep tracks the
//! whole **cold path** — schedule → place → route → layout → replay — per
//! thread count, for the scale assays the job service actually serves cold
//! (RA1K and RA10K). Stage times come from the telemetry spans the pipeline
//! records anyway (the run executes under
//! [`biochip_telemetry::with_collection`]); only the end-to-end total is a
//! stopwatch, so the stages may sum to slightly less than the total (task
//! extraction, verification and span bookkeeping live between spans). Each
//! row also records the outcome's `output_key`: the canonical content hash
//! of the timing- and search-effort-stripped report, the schedule and the
//! replay (see `SynthesisOutcome::output_key`). The synthesizer's
//! parallelism is **bit-deterministic** — multi-start placement reduces by
//! `(cost, start index)`, router scoring by candidate order — so the key
//! must be identical across thread counts; [`assert_thread_equality`]
//! enforces exactly that and the `pipeline` bin fails CI when it does not
//! hold.
//!
//! **Honesty about host parallelism:** a row benched with more threads than
//! the host has cores measures oversubscription, not speedup. Such rows are
//! marked `undersubscribed` and get no `speedup_vs_single` — CI still
//! compares their `output_key` (determinism holds at any thread count) but
//! never reads a "speedup" off them.
//!
//! Run it with `cargo run --release -p biochip-bench --bin pipeline`
//! (positional args = thread counts, default `1 <cores>`) or
//! `biochip bench pipeline [--threads 1,4] [--assays RA1K,RA10K]`.

use std::time::Instant;

use biochip_synth::arch::Parallelism;
use biochip_synth::assay::library;
use biochip_synth::{SynthesisConfig, SynthesisFlow};
use biochip_telemetry as telemetry;

use crate::BenchError;

/// Default assays of the pipeline sweep: the scale workloads of the CI
/// smoke runs, under the same 8-mixer inventory.
pub const DEFAULT_PIPELINE_ASSAYS: &[&str] = &["RA1K", "RA10K"];

/// One row of the pipeline sweep: one assay, cold, at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Assay name.
    pub assay: String,
    /// Number of device operations.
    pub operations: usize,
    /// Scoring threads the synthesizer was allowed.
    pub threads: usize,
    /// Scheduling wall seconds (the pipeline's `"schedule"` span).
    pub schedule_seconds: f64,
    /// Placement wall seconds (`"place"` spans, all grid attempts).
    pub place_seconds: f64,
    /// Routing wall seconds (`"route"` spans, all grid attempts).
    pub route_seconds: f64,
    /// Window-selection share of routing (`"route.window_select"` spans):
    /// candidate enumeration, oracle early-reject and lazy-merge ordering.
    pub window_select_seconds: f64,
    /// Path-search share of routing (`"route.path_search"` spans): the
    /// oracle-guided A* runs themselves.
    pub path_search_seconds: f64,
    /// Commit share of routing (`"route.commit"` spans): reservation
    /// writes, segment pricing and plan bookkeeping for accepted paths.
    pub commit_seconds: f64,
    /// Physical-design wall seconds (the `"layout"` span).
    pub layout_seconds: f64,
    /// Replay + dedicated-baseline wall seconds (the `"replay"` span).
    pub replay_seconds: f64,
    /// End-to-end cold wall seconds (stopwatch around the whole run; the
    /// stages above may sum to slightly less).
    pub total_seconds: f64,
    /// `true` when the row was benched with more threads than the host has
    /// cores — its wall times measure oversubscription, not parallel
    /// speedup, so `speedup_vs_single` is withheld.
    pub undersubscribed: bool,
    /// `total_seconds(threads = 1) / total_seconds` for the same assay
    /// (`1.0` for the single-thread row itself); absent on undersubscribed
    /// rows.
    pub speedup_vs_single: Option<f64>,
    /// Canonical content hash of the timing-stripped outcome (report,
    /// schedule, replay). Must be identical across thread counts.
    pub output_key: String,
    /// Grid attempts the synthesizer needed.
    pub grids_tried: usize,
}

biochip_json::impl_json_struct!(PipelineRow {
    assay,
    operations,
    threads,
    schedule_seconds,
    place_seconds,
    route_seconds,
    window_select_seconds,
    path_search_seconds,
    commit_seconds,
    layout_seconds,
    replay_seconds,
    total_seconds,
    undersubscribed,
    speedup_vs_single,
    output_key,
    grids_tried,
});

/// Sums the durations of all complete spans named `name`.
fn span_seconds(events: &[telemetry::SpanEvent], name: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.name == name)
        .map(|e| match e.kind {
            telemetry::SpanKind::Complete { dur_micros } => dur_micros as f64 / 1e6,
            telemetry::SpanKind::Instant => 0.0,
        })
        .sum()
}

/// Runs one assay cold at one thread count, reading the per-stage times off
/// the pipeline's telemetry spans.
fn run_cold(name: &str, threads: usize, host_threads: usize) -> Result<PipelineRow, BenchError> {
    let graph = library::by_name(name).ok_or_else(|| BenchError::UnknownBenchmark {
        name: name.to_owned(),
        known: library::NAMED_ASSAYS.iter().map(|(n, _)| *n).collect(),
    })?;
    let config = SynthesisConfig::default()
        .with_mixers(8)
        .with_parallelism(Parallelism::with_threads(threads));
    let flow = SynthesisFlow::new(config);

    let started = Instant::now();
    let (result, events) = telemetry::with_collection(|| flow.run(graph));
    let total_seconds = started.elapsed().as_secs_f64();
    let outcome = result.map_err(|error| BenchError::Synthesis {
        name: name.to_owned(),
        error,
    })?;

    let output_key = outcome.output_key();

    Ok(PipelineRow {
        assay: outcome.report.assay.clone(),
        operations: outcome.report.operations,
        threads,
        schedule_seconds: span_seconds(&events, "schedule"),
        place_seconds: span_seconds(&events, "place"),
        route_seconds: span_seconds(&events, "route"),
        window_select_seconds: span_seconds(&events, "route.window_select"),
        path_search_seconds: span_seconds(&events, "route.path_search"),
        commit_seconds: span_seconds(&events, "route.commit"),
        layout_seconds: span_seconds(&events, "layout"),
        replay_seconds: span_seconds(&events, "replay"),
        total_seconds,
        undersubscribed: threads > host_threads,
        speedup_vs_single: None,
        output_key,
        grids_tried: outcome.report.grids_tried,
    })
}

/// Runs the sweep: every assay × every thread count, speedups filled in
/// against each assay's `threads = 1` row (or, when 1 was not benched, the
/// row with the lowest benched thread count). Uses the host's detected core
/// count to flag undersubscribed rows — see
/// [`pipeline_rows_with_host`] to pin it (tests, reproducibility).
///
/// # Errors
///
/// Returns a [`BenchError`] for unknown assay names and synthesis failures.
pub fn pipeline_rows(
    assays: &[&str],
    thread_counts: &[usize],
) -> Result<Vec<PipelineRow>, BenchError> {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    pipeline_rows_with_host(assays, thread_counts, host)
}

/// [`pipeline_rows`] with an explicit host core count. Rows benched with
/// `threads > host_threads` are marked [`PipelineRow::undersubscribed`] and
/// excluded from `speedup_vs_single` — their wall times measure thread
/// oversubscription, not parallelism.
///
/// # Errors
///
/// Returns a [`BenchError`] for unknown assay names and synthesis failures.
pub fn pipeline_rows_with_host(
    assays: &[&str],
    thread_counts: &[usize],
    host_threads: usize,
) -> Result<Vec<PipelineRow>, BenchError> {
    let mut rows = Vec::with_capacity(assays.len() * thread_counts.len());
    for &name in assays {
        let first = rows.len();
        for &threads in thread_counts {
            rows.push(run_cold(name, threads.max(1), host_threads)?);
        }
        let base_total = rows[first..]
            .iter()
            .min_by_key(|r| r.threads)
            .map(|r| r.total_seconds)
            .unwrap_or(0.0);
        for row in &mut rows[first..] {
            row.speedup_vs_single = if row.undersubscribed {
                None
            } else if row.total_seconds > 0.0 {
                Some(base_total / row.total_seconds)
            } else {
                Some(1.0)
            };
        }
    }
    Ok(rows)
}

/// Verifies that every assay produced one identical `output_key` across all
/// benched thread counts. Undersubscribed rows are **not** exempt:
/// determinism must hold at any thread count, on any host.
///
/// # Errors
///
/// Returns a description of the first divergence — the CI gate that fails
/// the job when threaded output differs from sequential output.
pub fn assert_thread_equality(rows: &[PipelineRow]) -> Result<(), String> {
    for row in rows {
        let baseline = rows
            .iter()
            .find(|r| r.assay == row.assay)
            .expect("row's own assay is present");
        if row.output_key != baseline.output_key {
            return Err(format!(
                "{}: output at {} thread(s) [{}] differs from {} thread(s) [{}] — \
                 parallel synthesis must be bit-identical",
                row.assay, row.threads, row.output_key, baseline.threads, baseline.output_key
            ));
        }
    }
    Ok(())
}

fn format_speedup(row: &PipelineRow) -> String {
    match row.speedup_vs_single {
        Some(speedup) => format!("{speedup:.2}"),
        None => "n/a".to_owned(),
    }
}

/// Formats the pipeline sweep as an aligned text table. Undersubscribed
/// rows show `n/a` in the speedup column and are flagged `oversub`.
#[must_use]
pub fn format_pipeline(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "assay     |O|     thr  t_sched(s)  t_place(s)  t_route(s)  t_win(s)    t_path(s)   t_commit(s)  t_layout(s)  t_replay(s)  total(s)  speedup  key\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<7} {:<4} {:<11.4} {:<11.4} {:<11.4} {:<11.4} {:<11.4} {:<12.4} {:<12.4} {:<12.4} {:<9.4} {:<8} {}{}\n",
            r.assay,
            r.operations,
            r.threads,
            r.schedule_seconds,
            r.place_seconds,
            r.route_seconds,
            r.window_select_seconds,
            r.path_search_seconds,
            r.commit_seconds,
            r.layout_seconds,
            r.replay_seconds,
            r.total_seconds,
            format_speedup(r),
            r.output_key,
            if r.undersubscribed { "  (oversub)" } else { "" },
        ));
    }
    out
}

/// Formats the pipeline sweep as CSV.
#[must_use]
pub fn pipeline_csv(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "assay,operations,threads,schedule_seconds,place_seconds,route_seconds,window_select_seconds,path_search_seconds,commit_seconds,layout_seconds,replay_seconds,total_seconds,undersubscribed,speedup_vs_single,output_key,grids_tried\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{}\n",
            r.assay,
            r.operations,
            r.threads,
            r.schedule_seconds,
            r.place_seconds,
            r.route_seconds,
            r.window_select_seconds,
            r.path_search_seconds,
            r.commit_seconds,
            r.layout_seconds,
            r.replay_seconds,
            r.total_seconds,
            r.undersubscribed,
            format_speedup(r),
            r.output_key,
            r.grids_tried,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_sweep_is_thread_identical() {
        // PCR is tiny, so the sweep is fast even in debug builds. The host
        // core count is pinned high so the rows are never undersubscribed,
        // whatever machine the test runs on.
        let rows = pipeline_rows_with_host(&["PCR"], &[1, 2], 64).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        assert!((rows[0].speedup_vs_single.unwrap() - 1.0).abs() < 1e-12);
        assert!(rows[1].speedup_vs_single.is_some());
        assert!(rows.iter().all(|r| !r.undersubscribed));
        assert_eq!(rows[0].output_key, rows[1].output_key);
        // The baseline is the threads = 1 row regardless of sweep order.
        let reversed = pipeline_rows_with_host(&["PCR"], &[2, 1], 64).unwrap();
        let single = reversed.iter().find(|r| r.threads == 1).unwrap();
        assert!(
            (single.speedup_vs_single.unwrap() - 1.0).abs() < 1e-12,
            "the single-thread row is its own baseline, got {:?}",
            single.speedup_vs_single
        );
        assert_thread_equality(&rows).unwrap();
        assert!(rows.iter().all(|r| r.total_seconds > 0.0));
        // The span-derived stage times are populated and bounded by the
        // stopwatch total.
        for r in &rows {
            assert!(r.schedule_seconds >= 0.0);
            assert!(r.route_seconds > 0.0, "route span missing: {r:?}");
            // The router sub-stage spans are disjoint children of the route
            // span: each is populated and together they cannot exceed it.
            assert!(
                r.path_search_seconds > 0.0,
                "path_search span missing: {r:?}"
            );
            assert!(r.window_select_seconds >= 0.0);
            assert!(r.commit_seconds > 0.0, "commit span missing: {r:?}");
            let sub_sum = r.window_select_seconds + r.path_search_seconds + r.commit_seconds;
            assert!(
                sub_sum <= r.route_seconds * 1.05 + 0.01,
                "router sub-stages ({sub_sum}s) exceed the route span ({}s)",
                r.route_seconds
            );
            let stage_sum = r.schedule_seconds
                + r.place_seconds
                + r.route_seconds
                + r.layout_seconds
                + r.replay_seconds;
            assert!(
                stage_sum <= r.total_seconds * 1.05 + 0.01,
                "stages ({stage_sum}s) exceed the wall total ({}s)",
                r.total_seconds
            );
        }
        let table = format_pipeline(&rows);
        assert!(table.contains("PCR"));
        let csv = pipeline_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }

    #[test]
    fn undersubscribed_rows_are_flagged_and_excluded_from_speedup() {
        // Pretend the host has a single core: the threads = 2 row must be
        // flagged, lose its speedup, and still match the output key.
        let rows = pipeline_rows_with_host(&["PCR"], &[1, 2], 1).unwrap();
        let single = rows.iter().find(|r| r.threads == 1).unwrap();
        let over = rows.iter().find(|r| r.threads == 2).unwrap();
        assert!(!single.undersubscribed);
        assert!(single.speedup_vs_single.is_some());
        assert!(over.undersubscribed);
        assert_eq!(over.speedup_vs_single, None);
        assert_eq!(single.output_key, over.output_key);
        assert_thread_equality(&rows).unwrap();
        // Rendering: the table says n/a + oversub, the CSV carries the flag,
        // and the JSON round-trips the Option.
        let table = format_pipeline(&rows);
        assert!(table.contains("n/a"));
        assert!(table.contains("(oversub)"));
        let csv = pipeline_csv(&rows);
        assert!(csv.contains(",true,n/a,"));
        let json = biochip_json::Serialize::to_json(over);
        let back: PipelineRow = biochip_json::Deserialize::from_json(&json).unwrap();
        assert_eq!(&back, over);
    }

    #[test]
    fn divergent_keys_are_reported() {
        let mut rows = pipeline_rows_with_host(&["PCR"], &[1], 64).unwrap();
        let mut forged = rows[0].clone();
        forged.threads = 4;
        forged.output_key = "deadbeefdeadbeef".to_owned();
        rows.push(forged);
        let err = assert_thread_equality(&rows).unwrap_err();
        assert!(err.contains("PCR"), "{err}");
        assert!(err.contains("bit-identical"), "{err}");
    }

    #[test]
    fn unknown_assays_error_cleanly() {
        let err = pipeline_rows(&["NOPE"], &[1]).unwrap_err();
        assert!(matches!(err, BenchError::UnknownBenchmark { .. }));
    }
}
