//! Scheduler scale sweep: throughput, makespan and storage vs. graph size.
//!
//! The paper's evaluation (Table 2, Fig. 8–10) stops at 100-operation
//! assays. This harness stresses the [`ListScheduler`] far beyond that with
//! the `biochip_assay::random` scale family (see
//! `RandomAssayConfig::scaled`), recording how scheduling throughput and
//! schedule quality evolve with graph size. The rows land in
//! `BENCH_scale.json` (via [`write_bench_json`](crate::write_bench_json)),
//! which CI uploads per commit — the perf trajectory that later sharding and
//! async work is measured against.
//!
//! Run it with `cargo run --release -p biochip-bench --bin scale` or
//! `biochip bench scale [--sizes 100,1000,10000] [--mixers 8]`.

use std::time::Instant;

use biochip_synth::assay::random::{self, RandomAssayConfig};
use biochip_synth::schedule::{ListScheduler, ScheduleProblem, Scheduler, SchedulingStrategy};

/// Default graph sizes of the scale sweep.
pub const DEFAULT_SCALE_SIZES: &[usize] = &[100, 1_000, 10_000];

/// Default mixer count of the scale sweep (kept fixed across sizes so the
/// trajectory isolates graph-size effects).
pub const DEFAULT_SCALE_MIXERS: usize = 8;

/// One row of the scale sweep: one assay size under one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Sweep assay label (e.g. `RA10000-scaled`). The `-scaled` suffix
    /// marks the `RandomAssayConfig::scaled` generator: the size-100 sweep
    /// graph is *not* the paper's RA100 benchmark (different layer width,
    /// fan-in/out and duration mix), so the label keeps `BENCH_scale.json`
    /// from being correlated with Table 2 rows of the same size.
    pub assay: String,
    /// Number of device operations.
    pub operations: usize,
    /// Number of dependency edges.
    pub edges: usize,
    /// Mixers available to the scheduler.
    pub mixers: usize,
    /// Scheduling strategy (`makespan-only` or `storage-aware`).
    pub strategy: String,
    /// Wall-clock seconds one `ListScheduler::schedule` call took.
    pub schedule_seconds: f64,
    /// Operations scheduled per second (`operations / schedule_seconds`).
    pub ops_per_second: f64,
    /// Assay execution time `t_E` of the resulting schedule, in seconds.
    pub makespan: u64,
    /// Sum of all storage lifetimes in the schedule, in seconds.
    pub total_storage_time: u64,
    /// Maximum number of concurrently stored samples.
    pub peak_storage: usize,
}

biochip_json::impl_json_struct!(ScaleRow {
    assay,
    operations,
    edges,
    mixers,
    strategy,
    schedule_seconds,
    ops_per_second,
    makespan,
    total_storage_time,
    peak_storage,
});

fn strategy_name(strategy: SchedulingStrategy) -> &'static str {
    match strategy {
        SchedulingStrategy::MakespanOnly => "makespan-only",
        SchedulingStrategy::StorageAware => "storage-aware",
    }
}

/// Runs the scale sweep: every size × both list-scheduling strategies.
///
/// Every produced schedule is re-validated against the problem before its
/// metrics are reported, so a row in `BENCH_scale.json` is also a
/// correctness witness for that graph size.
///
/// # Panics
///
/// Panics if scheduling or validation fails — the scale family is expected
/// to always schedule.
#[must_use]
pub fn scale_rows(sizes: &[usize], mixers: usize) -> Vec<ScaleRow> {
    let mut rows = Vec::with_capacity(sizes.len() * 2);
    for &size in sizes {
        let seed = size as u64;
        let graph = random::generate(&RandomAssayConfig::scaled(size, seed));
        let problem = ScheduleProblem::new(graph).with_mixers(mixers);
        for strategy in [
            SchedulingStrategy::MakespanOnly,
            SchedulingStrategy::StorageAware,
        ] {
            let started = Instant::now();
            let schedule = ListScheduler::new(strategy)
                .schedule(&problem)
                .unwrap_or_else(|e| panic!("scale sweep size {size}: {e}"));
            let elapsed = started.elapsed().as_secs_f64();
            schedule.validate(&problem).unwrap_or_else(|e| {
                panic!("scale sweep size {size} produced invalid schedule: {e}")
            });
            let metrics = schedule.metrics(&problem);
            rows.push(ScaleRow {
                assay: format!("{}-scaled", problem.graph().name()),
                operations: size,
                edges: problem.graph().num_edges(),
                mixers,
                strategy: strategy_name(strategy).to_owned(),
                schedule_seconds: elapsed,
                ops_per_second: if elapsed > 0.0 {
                    size as f64 / elapsed
                } else {
                    f64::INFINITY
                },
                makespan: metrics.makespan,
                total_storage_time: metrics.total_storage_time,
                peak_storage: metrics.max_concurrent_storage,
            });
        }
    }
    rows
}

/// Formats the scale sweep as an aligned text table.
#[must_use]
pub fn format_scale(rows: &[ScaleRow]) -> String {
    let mut out = String::from(
        "assay           |O|     edges   mixers  strategy       t_sched(s)  ops/s      tE(s)    storage(s)  peak\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:<7} {:<7} {:<7} {:<14} {:<11.4} {:<10.0} {:<8} {:<11} {}\n",
            r.assay,
            r.operations,
            r.edges,
            r.mixers,
            r.strategy,
            r.schedule_seconds,
            r.ops_per_second,
            r.makespan,
            r.total_storage_time,
            r.peak_storage,
        ));
    }
    out
}

/// Formats the scale sweep as CSV.
#[must_use]
pub fn scale_csv(rows: &[ScaleRow]) -> String {
    let mut out = String::from(
        "assay,operations,edges,mixers,strategy,schedule_seconds,ops_per_second,makespan_s,total_storage_time_s,peak_storage\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.0},{},{},{}\n",
            r.assay,
            r.operations,
            r.edges,
            r.mixers,
            r.strategy,
            r.schedule_seconds,
            r.ops_per_second,
            r.makespan,
            r.total_storage_time,
            r.peak_storage,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_produces_rows_for_both_strategies() {
        let rows = scale_rows(&[50, 120], 4);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.makespan > 0);
            assert!(row.ops_per_second > 0.0);
            assert_eq!(row.mixers, 4);
        }
        let strategies: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.strategy.as_str()).collect();
        assert_eq!(
            strategies,
            ["makespan-only", "storage-aware"].into_iter().collect()
        );
    }

    #[test]
    fn formatting_covers_every_row() {
        let rows = scale_rows(&[40], 2);
        let table = format_scale(&rows);
        assert!(table.contains("RA40"));
        let csv = scale_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}
