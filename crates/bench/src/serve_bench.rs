//! Loopback load generator for the job service: warm vs. cold throughput.
//!
//! Starts an in-process [`biochip_server::Server`], submits an RA1K job
//! cold (full synthesis), then replays the identical submission `warm_jobs`
//! times against the content-addressed cache, all over real loopback HTTP.
//! The headline number is the warm/cold speedup — the factor a production
//! deployment gains on repeated assays — written to `BENCH_serve.json`.

use std::time::{Duration, Instant};

use biochip_json::impl_json_struct;
use biochip_server::{client, ServeOptions, Server};

/// The submission the bench replays: RA1K under the 8-mixer configuration
/// the scale smoke runs use (the CI baseline for RA1K cold synthesis).
#[must_use]
pub fn bench_submission() -> String {
    let config = biochip_synth::SynthesisConfig::default().with_mixers(8);
    format!(
        r#"{{"assay": "RA1K", "config": {}}}"#,
        biochip_json::to_string(&config)
    )
}

/// Generous per-job timeout (RA1K cold is ~0.1 s release, seconds debug).
const JOB_TIMEOUT: Duration = Duration::from_secs(600);

/// Results of one warm-vs-cold loopback run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// The assay submitted.
    pub assay: String,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Warm submissions measured.
    pub warm_jobs: usize,
    /// Wall seconds for the cold (synthesizing) job, end to end over HTTP.
    pub cold_seconds: f64,
    /// Wall seconds per warm (cache-served) job, end to end over HTTP.
    pub warm_seconds_per_job: f64,
    /// Cold jobs/sec (1 / cold_seconds).
    pub cold_jobs_per_sec: f64,
    /// Warm jobs/sec.
    pub warm_jobs_per_sec: f64,
    /// warm_jobs_per_sec / cold_jobs_per_sec.
    pub speedup: f64,
    /// Cache hits observed by the server.
    pub cache_hits: usize,
    /// Cache misses observed by the server.
    pub cache_misses: usize,
}

impl_json_struct!(ServeBenchReport {
    assay,
    workers,
    warm_jobs,
    cold_seconds,
    warm_seconds_per_job,
    cold_jobs_per_sec,
    warm_jobs_per_sec,
    speedup,
    cache_hits,
    cache_misses,
});

/// Runs the warm-vs-cold loopback measurement.
///
/// # Errors
///
/// Returns a message when the server cannot start or a job misbehaves.
///
/// # Panics
///
/// Panics only if the spawned server thread itself panicked.
pub fn run_serve_bench(warm_jobs: usize, workers: usize) -> Result<ServeBenchReport, String> {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_capacity: 8,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("cannot start the server: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle().map_err(|e| e.to_string())?;
    let join = std::thread::spawn(move || server.run());

    let submission = bench_submission();

    // Cold: submission + synthesis + polling until done.
    let cold_started = Instant::now();
    let accepted = client::submit(addr, &submission)?;
    let cold_id = client::job_id(&accepted)?;
    let done = client::wait_for_job(addr, cold_id, JOB_TIMEOUT)?;
    let cold_seconds = cold_started.elapsed().as_secs_f64();
    let status = done
        .get("status")
        .and_then(|s| s.expect_str().ok())
        .unwrap_or("?");
    if status != "done" {
        return Err(format!("cold job ended {status}: {}", done.to_compact()));
    }
    let assay = done
        .get("assay")
        .and_then(|s| s.expect_str().ok())
        .unwrap_or("?")
        .to_owned();

    // Warm: the identical submission is answered from the cache at
    // acceptance time — each round trip still pays full HTTP cost.
    let warm_started = Instant::now();
    for _ in 0..warm_jobs {
        let accepted = client::submit(addr, &submission)?;
        let cached = accepted.get("cached") == Some(&biochip_json::Json::Bool(true));
        let status = accepted
            .get("status")
            .and_then(|s| s.expect_str().ok())
            .unwrap_or("?");
        if !cached || status != "done" {
            return Err(format!(
                "warm submission was not a cache hit: {}",
                accepted.to_compact()
            ));
        }
    }
    let warm_elapsed = warm_started.elapsed().as_secs_f64();
    let warm_seconds_per_job = warm_elapsed / warm_jobs.max(1) as f64;

    let (_, stats) = client::get(addr, "/stats").map_err(|e| e.to_string())?;
    let stats = biochip_json::parse(&stats).map_err(|e| e.to_string())?;
    let cache_count = |field: &str| -> usize {
        stats
            .get("cache")
            .and_then(|c| c.get(field))
            .and_then(|v| v.expect_number().ok())
            .unwrap_or(0.0) as usize
    };

    handle.stop();
    join.join().expect("server thread exits cleanly");

    let workers = stats
        .get("pool")
        .and_then(|p| p.get("workers"))
        .and_then(|v| v.expect_number().ok())
        .unwrap_or(workers as f64) as usize;
    Ok(ServeBenchReport {
        assay,
        workers,
        warm_jobs,
        cold_seconds,
        warm_seconds_per_job,
        cold_jobs_per_sec: 1.0 / cold_seconds.max(f64::EPSILON),
        warm_jobs_per_sec: 1.0 / warm_seconds_per_job.max(f64::EPSILON),
        speedup: cold_seconds / warm_seconds_per_job.max(f64::EPSILON),
        cache_hits: cache_count("hits"),
        cache_misses: cache_count("misses"),
    })
}

/// Formats the report as the human-readable table the bin prints.
#[must_use]
pub fn format_serve(report: &ServeBenchReport) -> String {
    format!(
        "assay        {}\n\
         workers      {}\n\
         cold         {:.4} s/job  ({:.2} jobs/s)\n\
         warm         {:.6} s/job  ({:.0} jobs/s, {} jobs)\n\
         speedup      {:.0}x\n\
         cache        {} hits / {} misses\n",
        report.assay,
        report.workers,
        report.cold_seconds,
        report.cold_jobs_per_sec,
        report.warm_seconds_per_job,
        report.warm_jobs_per_sec,
        report.warm_jobs,
        report.speedup,
        report.cache_hits,
        report.cache_misses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_report_round_trips() {
        let report = ServeBenchReport {
            assay: "RA1000".to_owned(),
            workers: 2,
            warm_jobs: 50,
            cold_seconds: 1.5,
            warm_seconds_per_job: 0.001,
            cold_jobs_per_sec: 1.0 / 1.5,
            warm_jobs_per_sec: 1000.0,
            speedup: 1500.0,
            cache_hits: 50,
            cache_misses: 1,
        };
        let back: ServeBenchReport =
            biochip_json::from_str(&biochip_json::to_string_pretty(&report)).unwrap();
        assert_eq!(back, report);
        assert!(format_serve(&report).contains("speedup"));
    }
}
