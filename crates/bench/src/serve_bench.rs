//! Loopback load generator for the job service: warm vs. cold throughput.
//!
//! Starts an in-process [`biochip_server::Server`], submits an RA1K job
//! cold (full synthesis), then replays the identical submission `warm_jobs`
//! times against the content-addressed cache, all over real loopback HTTP.
//! The headline number is the warm/cold speedup — the factor a production
//! deployment gains on repeated assays — written to `BENCH_serve.json`.

use std::time::{Duration, Instant};

use biochip_json::impl_json_struct;
use biochip_server::{client, ServeOptions, Server};

/// The submission the bench replays: RA1K under the 8-mixer configuration
/// the scale smoke runs use (the CI baseline for RA1K cold synthesis).
#[must_use]
pub fn bench_submission() -> String {
    let config = biochip_synth::SynthesisConfig::default().with_mixers(8);
    format!(
        r#"{{"assay": "RA1K", "config": {}}}"#,
        biochip_json::to_string(&config)
    )
}

/// Generous per-job timeout (RA1K cold is ~0.1 s release, seconds debug).
const JOB_TIMEOUT: Duration = Duration::from_secs(600);

/// Results of one warm-vs-cold loopback run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// The assay submitted.
    pub assay: String,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Warm submissions measured.
    pub warm_jobs: usize,
    /// Wall seconds for the cold (synthesizing) job, end to end over HTTP.
    pub cold_seconds: f64,
    /// Wall seconds per warm (cache-served) job, end to end over HTTP.
    pub warm_seconds_per_job: f64,
    /// Cold jobs/sec (1 / cold_seconds).
    pub cold_jobs_per_sec: f64,
    /// Warm jobs/sec.
    pub warm_jobs_per_sec: f64,
    /// warm_jobs_per_sec / cold_jobs_per_sec.
    pub speedup: f64,
    /// Cache hits observed by the server.
    pub cache_hits: usize,
    /// Cache misses observed by the server.
    pub cache_misses: usize,
}

impl_json_struct!(ServeBenchReport {
    assay,
    workers,
    warm_jobs,
    cold_seconds,
    warm_seconds_per_job,
    cold_jobs_per_sec,
    warm_jobs_per_sec,
    speedup,
    cache_hits,
    cache_misses,
});

/// Runs the warm-vs-cold loopback measurement.
///
/// # Errors
///
/// Returns a message when the server cannot start or a job misbehaves.
///
/// # Panics
///
/// Panics only if the spawned server thread itself panicked.
pub fn run_serve_bench(warm_jobs: usize, workers: usize) -> Result<ServeBenchReport, String> {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_capacity: 8,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("cannot start the server: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle().map_err(|e| e.to_string())?;
    let join = std::thread::spawn(move || server.run());

    let submission = bench_submission();

    // Cold: submission + synthesis + polling until done.
    let cold_started = Instant::now();
    let accepted = client::submit(addr, &submission)?;
    let cold_id = client::job_id(&accepted)?;
    let done = client::wait_for_job(addr, cold_id, JOB_TIMEOUT)?;
    let cold_seconds = cold_started.elapsed().as_secs_f64();
    let status = done
        .get("status")
        .and_then(|s| s.expect_str().ok())
        .unwrap_or("?");
    if status != "done" {
        return Err(format!("cold job ended {status}: {}", done.to_compact()));
    }
    let assay = done
        .get("assay")
        .and_then(|s| s.expect_str().ok())
        .unwrap_or("?")
        .to_owned();

    // Warm: the identical submission is answered from the cache at
    // acceptance time — each round trip still pays full HTTP cost.
    let warm_started = Instant::now();
    for _ in 0..warm_jobs {
        let accepted = client::submit(addr, &submission)?;
        let cached = accepted.get("cached") == Some(&biochip_json::Json::Bool(true));
        let status = accepted
            .get("status")
            .and_then(|s| s.expect_str().ok())
            .unwrap_or("?");
        if !cached || status != "done" {
            return Err(format!(
                "warm submission was not a cache hit: {}",
                accepted.to_compact()
            ));
        }
    }
    let warm_elapsed = warm_started.elapsed().as_secs_f64();
    let warm_seconds_per_job = warm_elapsed / warm_jobs.max(1) as f64;

    let (_, stats) = client::get(addr, "/stats").map_err(|e| e.to_string())?;
    let stats = biochip_json::parse(&stats).map_err(|e| e.to_string())?;
    let cache_count = |field: &str| -> usize {
        stats
            .get("cache")
            .and_then(|c| c.get(field))
            .and_then(|v| v.expect_number().ok())
            .unwrap_or(0.0) as usize
    };

    handle.stop();
    join.join().expect("server thread exits cleanly");

    let workers = stats
        .get("pool")
        .and_then(|p| p.get("workers"))
        .and_then(|v| v.expect_number().ok())
        .unwrap_or(workers as f64) as usize;
    Ok(ServeBenchReport {
        assay,
        workers,
        warm_jobs,
        cold_seconds,
        warm_seconds_per_job,
        cold_jobs_per_sec: 1.0 / cold_seconds.max(f64::EPSILON),
        warm_jobs_per_sec: 1.0 / warm_seconds_per_job.max(f64::EPSILON),
        speedup: cold_seconds / warm_seconds_per_job.max(f64::EPSILON),
        cache_hits: cache_count("hits"),
        cache_misses: cache_count("misses"),
    })
}

/// Formats the report as the human-readable table the bin prints.
#[must_use]
pub fn format_serve(report: &ServeBenchReport) -> String {
    format!(
        "assay        {}\n\
         workers      {}\n\
         cold         {:.4} s/job  ({:.2} jobs/s)\n\
         warm         {:.6} s/job  ({:.0} jobs/s, {} jobs)\n\
         speedup      {:.0}x\n\
         cache        {} hits / {} misses\n",
        report.assay,
        report.workers,
        report.cold_seconds,
        report.cold_jobs_per_sec,
        report.warm_seconds_per_job,
        report.warm_jobs_per_sec,
        report.warm_jobs,
        report.speedup,
        report.cache_hits,
        report.cache_misses,
    )
}

/// Results of the concurrent mixed cold/warm load phase (plus the overload
/// and restart probes).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLoadReport {
    /// Concurrent client threads, each with its own identity header.
    pub clients: usize,
    /// Submissions each client issued.
    pub requests_per_client: usize,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Cold (synthesizing) submissions in the mix.
    pub cold_jobs: usize,
    /// Warm (cache-served) submissions in the mix.
    pub warm_submissions: usize,
    /// Median `POST /jobs` round-trip latency, seconds.
    pub submit_p50_seconds: f64,
    /// 90th-percentile submit latency, seconds.
    pub submit_p90_seconds: f64,
    /// 99th-percentile submit latency, seconds.
    pub submit_p99_seconds: f64,
    /// Worst submit latency, seconds.
    pub submit_max_seconds: f64,
    /// Submissions answered 2xx.
    pub status_2xx: usize,
    /// Submissions answered a structured 429.
    pub status_429: usize,
    /// Submissions answered any other 4xx.
    pub status_4xx_other: usize,
    /// Submissions answered 5xx (the quota-respecting phase must see none).
    pub status_5xx: usize,
    /// Requests that failed at the socket level after retries.
    pub io_errors: usize,
    /// Connect retries the clients needed (loopback backlog pressure).
    pub retries: usize,
    /// (429 + other 4xx + 5xx + io errors) / total requests.
    pub error_rate: f64,
    /// Whether the server was restarted (drain + reopen on the same data
    /// dir) after the load phase.
    pub restarted: bool,
    /// Warm probes answered from the recovered store after the restart.
    pub post_restart_warm_hits: usize,
    /// Over-quota submissions answered a structured 429 by the strict
    /// server in the overload phase.
    pub overload_429: usize,
    /// Over-quota submissions the strict server still accepted.
    pub overload_accepted: usize,
    /// Over-quota submissions answered 5xx (must be zero).
    pub overload_5xx: usize,
}

impl_json_struct!(ServeLoadReport {
    clients,
    requests_per_client,
    workers,
    cold_jobs,
    warm_submissions,
    submit_p50_seconds,
    submit_p90_seconds,
    submit_p99_seconds,
    submit_max_seconds,
    status_2xx,
    status_429,
    status_4xx_other,
    status_5xx,
    io_errors,
    retries,
    error_rate,
    restarted,
    post_restart_warm_hits,
    overload_429,
    overload_accepted,
    overload_5xx,
});

/// The full `BENCH_serve.json` payload: the warm-vs-cold headline plus the
/// concurrent-load phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchDoc {
    /// Warm-vs-cold single-stream measurement.
    pub warm_cold: ServeBenchReport,
    /// Concurrent mixed-load, restart and overload measurement.
    pub load: ServeLoadReport,
}

impl_json_struct!(ServeBenchDoc { warm_cold, load });

/// The `q`-quantile of an unsorted latency sample (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client's submit with a tiny connect-retry loop: under hundreds of
/// concurrent loopback connects the listener backlog can momentarily
/// refuse, which is backpressure, not a server error.
fn submit_with_retry(
    addr: std::net::SocketAddr,
    client_id: &str,
    body: &str,
    retries: &std::sync::atomic::AtomicUsize,
) -> Result<biochip_server::client::Response, String> {
    let mut last = String::new();
    for attempt in 0..3 {
        match client::request_with(
            addr,
            "POST",
            "/jobs",
            &[("x-biochip-client", client_id)],
            Some(body),
        ) {
            Ok(response) => return Ok(response),
            Err(err) => {
                last = err.to_string();
                retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5 << attempt));
            }
        }
    }
    Err(last)
}

/// Drives ≥`clients` concurrent clients (each with its own identity) against
/// a durable server: a mixed cold/warm request stream with per-request
/// latency capture, an optional drain + restart on the same data directory
/// with warm re-probes, and an overload phase against a strictly-limited
/// server that must answer structured 429s and never 5xx.
///
/// # Errors
///
/// Returns a message when the server cannot start, when the
/// quota-respecting phase sees any 5xx, when the overload phase sees a 5xx,
/// or when post-restart probes miss the recovered store.
///
/// # Panics
///
/// Panics only if a spawned server or client thread itself panicked.
pub fn run_serve_load(
    clients: usize,
    workers: usize,
    restart: bool,
) -> Result<ServeLoadReport, String> {
    let clients = clients.max(1);
    let requests_per_client = 3usize;
    let data_dir = std::env::temp_dir().join(format!("biochip-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let options = ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        cache_capacity: 64,
        data_dir: Some(data_dir.display().to_string()),
        ..ServeOptions::default()
    };
    let start = |options: &ServeOptions| -> Result<_, String> {
        let server = Server::bind(options).map_err(|e| format!("cannot start the server: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        let handle = server.handle().map_err(|e| e.to_string())?;
        let join = std::thread::spawn(move || server.run());
        Ok((addr, handle, join))
    };
    let (addr, handle, join) = start(&options)?;

    // Prime the warm target: one cold RA1K whose result every warm
    // submission then hits.
    let warm_submission = bench_submission();
    let primed = client::submit(addr, &warm_submission)?;
    client::wait_for_job(addr, client::job_id(&primed)?, JOB_TIMEOUT)?;

    // The mixed load: every 10th client opens with a cold job (a PCR config
    // edit gives each a distinct content key), the rest of the stream is
    // warm RA1K resubmissions.
    let latencies = std::sync::Mutex::new(Vec::<f64>::new());
    let statuses = std::sync::Mutex::new(Vec::<u16>::new());
    let cold_ids = std::sync::Mutex::new(Vec::<u64>::new());
    let io_errors = std::sync::atomic::AtomicUsize::new(0);
    let retries = std::sync::atomic::AtomicUsize::new(0);
    let mut cold_jobs = 0usize;
    std::thread::scope(|scope| {
        for client_index in 0..clients {
            let is_cold_client = client_index % 10 == 0;
            if is_cold_client {
                cold_jobs += 1;
            }
            let (latencies, statuses, cold_ids) = (&latencies, &statuses, &cold_ids);
            let (io_errors, retries, warm_submission) = (&io_errors, &retries, &warm_submission);
            scope.spawn(move || {
                let identity = format!("load-{client_index}");
                for request_index in 0..requests_per_client {
                    let body = if is_cold_client && request_index == 0 {
                        let mut config = biochip_synth::SynthesisConfig::default();
                        config.layout.channel_pitch += 1 + client_index as u64;
                        format!(
                            r#"{{"assay": "PCR", "config": {}}}"#,
                            biochip_json::to_string(&config)
                        )
                    } else {
                        warm_submission.clone()
                    };
                    let started = Instant::now();
                    match submit_with_retry(addr, &identity, &body, retries) {
                        Ok(response) => {
                            latencies
                                .lock()
                                .unwrap()
                                .push(started.elapsed().as_secs_f64());
                            statuses.lock().unwrap().push(response.status);
                            if response.status < 300 && is_cold_client && request_index == 0 {
                                if let Ok(doc) = biochip_json::parse(&response.body) {
                                    if let Ok(id) = client::job_id(&doc) {
                                        cold_ids.lock().unwrap().push(id);
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            io_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Every accepted cold job must reach a terminal state before the drain.
    let cold_ids = cold_ids.into_inner().unwrap();
    for id in &cold_ids {
        client::wait_for_job(addr, *id, JOB_TIMEOUT)?;
    }

    let statuses = statuses.into_inner().unwrap();
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let status_2xx = statuses.iter().filter(|s| **s < 300).count();
    let status_429 = statuses.iter().filter(|s| **s == 429).count();
    let status_4xx_other = statuses
        .iter()
        .filter(|s| **s >= 400 && **s < 500 && **s != 429)
        .count();
    let status_5xx = statuses.iter().filter(|s| **s >= 500).count();
    if status_5xx > 0 {
        return Err(format!(
            "{status_5xx} submissions answered 5xx under quota-respecting load"
        ));
    }
    let io_errors = io_errors.into_inner();
    let total_requests = statuses.len() + io_errors;
    let error_rate = (status_429 + status_4xx_other + status_5xx + io_errors) as f64
        / total_requests.max(1) as f64;

    // Optional restart-in-the-middle: drain, reopen the same data dir and
    // verify the load's results are served warm from the recovered store.
    let mut post_restart_warm_hits = 0usize;
    if restart {
        let (status, body) = client::post_json(addr, "/shutdown", "").map_err(|e| e.to_string())?;
        if status != 202 {
            return Err(format!("shutdown answered {status}: {body}"));
        }
        join.join().expect("server thread exits cleanly");
        let (addr, handle, join) = start(&options)?;
        for probe in 0..clients.min(64) {
            let identity = format!("probe-{probe}");
            let response = submit_with_retry(addr, &identity, &warm_submission, &retries)?;
            let doc = biochip_json::parse(&response.body).map_err(|e| e.to_string())?;
            if response.status == 201 && doc.get("cached") == Some(&biochip_json::Json::Bool(true))
            {
                post_restart_warm_hits += 1;
            } else {
                return Err(format!(
                    "post-restart probe was not warm ({}): {}",
                    response.status, response.body
                ));
            }
        }
        handle.stop();
        join.join().expect("server thread exits cleanly");
    } else {
        handle.stop();
        join.join().expect("server thread exits cleanly");
    }

    // Overload phase: a strict server (1 job in flight per client, queue
    // depth 1) must reject the excess with structured 429s — never a 5xx.
    let strict = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        cache_capacity: 8,
        max_queue_depth: 1,
        max_inflight_per_client: 1,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("cannot start the strict server: {e}"))?;
    let strict_addr = strict.local_addr().map_err(|e| e.to_string())?;
    let strict_handle = strict.handle().map_err(|e| e.to_string())?;
    let strict_join = std::thread::spawn(move || strict.run());
    let mut overload_429 = 0usize;
    let mut overload_accepted = 0usize;
    let mut overload_5xx = 0usize;
    let mut accepted_ids = Vec::new();
    for burst in 0..20u64 {
        let mut config = biochip_synth::SynthesisConfig::default();
        config.layout.channel_pitch += 1 + burst;
        let body = format!(
            r#"{{"assay": "PCR", "config": {}}}"#,
            biochip_json::to_string(&config)
        );
        let response = submit_with_retry(strict_addr, "hog", &body, &retries)?;
        match response.status {
            status if status < 300 => {
                overload_accepted += 1;
                if let Ok(doc) = biochip_json::parse(&response.body) {
                    if let Ok(id) = client::job_id(&doc) {
                        accepted_ids.push(id);
                    }
                }
            }
            429 => {
                let doc = biochip_json::parse(&response.body).map_err(|e| e.to_string())?;
                let structured = doc.get("schema").is_some()
                    && doc.get("reason").is_some()
                    && response.header("retry-after").is_some();
                if !structured {
                    return Err(format!("unstructured 429: {}", response.body));
                }
                overload_429 += 1;
            }
            status if status >= 500 => overload_5xx += 1,
            _ => {}
        }
    }
    if overload_5xx > 0 {
        return Err(format!("{overload_5xx} overload submissions answered 5xx"));
    }
    if overload_429 == 0 {
        return Err("the overload burst was never throttled".to_owned());
    }
    for id in accepted_ids {
        client::wait_for_job(strict_addr, id, JOB_TIMEOUT)?;
    }
    strict_handle.stop();
    strict_join.join().expect("strict server thread exits");
    let _ = std::fs::remove_dir_all(&data_dir);

    Ok(ServeLoadReport {
        clients,
        requests_per_client,
        workers,
        cold_jobs,
        warm_submissions: total_requests.saturating_sub(cold_jobs),
        submit_p50_seconds: quantile(&latencies, 0.50),
        submit_p90_seconds: quantile(&latencies, 0.90),
        submit_p99_seconds: quantile(&latencies, 0.99),
        submit_max_seconds: latencies.last().copied().unwrap_or(0.0),
        status_2xx,
        status_429,
        status_4xx_other,
        status_5xx,
        io_errors,
        retries: retries.into_inner(),
        error_rate,
        restarted: restart,
        post_restart_warm_hits,
        overload_429,
        overload_accepted,
        overload_5xx,
    })
}

/// Formats the load report as the human-readable table the bin prints.
#[must_use]
pub fn format_serve_load(report: &ServeLoadReport) -> String {
    format!(
        "clients      {} x {} requests ({} cold jobs)\n\
         submit p50   {:.6} s\n\
         submit p90   {:.6} s\n\
         submit p99   {:.6} s\n\
         submit max   {:.6} s\n\
         statuses     {} ok / {} throttled / {} other 4xx / {} 5xx / {} io errors\n\
         error rate   {:.4}\n\
         restart      {} ({} warm hits after reopen)\n\
         overload     {} throttled / {} accepted / {} 5xx\n",
        report.clients,
        report.requests_per_client,
        report.cold_jobs,
        report.submit_p50_seconds,
        report.submit_p90_seconds,
        report.submit_p99_seconds,
        report.submit_max_seconds,
        report.status_2xx,
        report.status_429,
        report.status_4xx_other,
        report.status_5xx,
        report.io_errors,
        report.error_rate,
        if report.restarted { "yes" } else { "no" },
        report.post_restart_warm_hits,
        report.overload_429,
        report.overload_accepted,
        report.overload_5xx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&sorted, 0.50), 50.0);
        assert_eq!(quantile(&sorted, 0.90), 90.0);
        assert_eq!(quantile(&sorted, 0.99), 99.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn load_report_round_trips_and_formats() {
        let report = ServeLoadReport {
            clients: 200,
            requests_per_client: 3,
            workers: 2,
            cold_jobs: 20,
            warm_submissions: 580,
            submit_p50_seconds: 0.001,
            submit_p90_seconds: 0.002,
            submit_p99_seconds: 0.004,
            submit_max_seconds: 0.2,
            status_2xx: 600,
            status_429: 0,
            status_4xx_other: 0,
            status_5xx: 0,
            io_errors: 0,
            retries: 2,
            error_rate: 0.0,
            restarted: true,
            post_restart_warm_hits: 64,
            overload_429: 18,
            overload_accepted: 2,
            overload_5xx: 0,
        };
        let back: ServeLoadReport =
            biochip_json::from_str(&biochip_json::to_string_pretty(&report)).unwrap();
        assert_eq!(back, report);
        assert!(format_serve_load(&report).contains("submit p99"));
    }

    #[test]
    fn serve_bench_report_round_trips() {
        let report = ServeBenchReport {
            assay: "RA1000".to_owned(),
            workers: 2,
            warm_jobs: 50,
            cold_seconds: 1.5,
            warm_seconds_per_job: 0.001,
            cold_jobs_per_sec: 1.0 / 1.5,
            warm_jobs_per_sec: 1000.0,
            speedup: 1500.0,
            cache_hits: 50,
            cache_misses: 1,
        };
        let back: ServeBenchReport =
            biochip_json::from_str(&biochip_json::to_string_pretty(&report)).unwrap();
        assert_eq!(back, report);
        assert!(format_serve(&report).contains("speedup"));
    }
}
