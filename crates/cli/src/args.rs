//! A tiny dependency-free command-line option parser.
//!
//! Supports `--key value`, `--key=value` and boolean `--flag` options plus
//! positional arguments, with unknown-option detection. Each subcommand
//! declares the options it accepts up front, so `biochip run --mixerz 2`
//! fails loudly instead of being ignored.

use crate::CliError;

/// Declaration of one accepted option.
#[derive(Debug, Clone, Copy)]
pub struct OptionSpec {
    /// The long name including the leading dashes, e.g. `"--mixers"`.
    pub name: &'static str,
    /// Whether the option takes a value (`--mixers 2`) or is a flag.
    pub takes_value: bool,
    /// One-line help text.
    pub help: &'static str,
}

/// Parsed arguments of one subcommand.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: Vec<(String, String)>,
    flags: Vec<String>,
    positional: Vec<String>,
}

impl ParsedArgs {
    /// Parses `argv` (without the program and subcommand names) against the
    /// accepted option specs.
    ///
    /// # Errors
    ///
    /// Returns a usage [`CliError`] for unknown options or missing values.
    pub fn parse(argv: &[String], specs: &[OptionSpec]) -> Result<Self, CliError> {
        let mut parsed = ParsedArgs::default();
        let mut iter = argv.iter().peekable();
        while let Some(arg) = iter.next() {
            if !arg.starts_with("--") {
                parsed.positional.push(arg.clone());
                continue;
            }
            let (name, inline_value) = match arg.split_once('=') {
                Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
                None => (arg.clone(), None),
            };
            let spec = specs.iter().find(|s| s.name == name).ok_or_else(|| {
                CliError::usage(format!(
                    "unknown option `{name}`\n{}",
                    render_options(specs)
                ))
            })?;
            if spec.takes_value {
                let value = match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| {
                            CliError::usage(format!("option `{name}` requires a value"))
                        })?
                        .clone(),
                };
                parsed.values.push((name, value));
            } else {
                if inline_value.is_some() {
                    return Err(CliError::usage(format!(
                        "option `{name}` does not take a value"
                    )));
                }
                parsed.flags.push(name);
            }
        }
        Ok(parsed)
    }

    /// The last value given for an option, if any.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|n| n == name)
    }

    /// Positional (non-option) arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A value parsed with [`str::parse`], with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns a usage [`CliError`] if the value does not parse.
    pub fn parse_value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::usage(format!("invalid value `{raw}` for `{name}`: {e}"))),
        }
    }

    /// A comma-separated list value, trimmed and with empty entries dropped.
    #[must_use]
    pub fn list_value(&self, name: &str) -> Option<Vec<String>> {
        self.value(name).map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect()
        })
    }
}

/// Formats the accepted options as help text.
#[must_use]
pub fn render_options(specs: &[OptionSpec]) -> String {
    let mut out = String::from("options:\n");
    for spec in specs {
        let value_hint = if spec.takes_value { " <value>" } else { "" };
        out.push_str(&format!(
            "  {:<26} {}\n",
            format!("{}{value_hint}", spec.name),
            spec.help
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[OptionSpec] = &[
        OptionSpec {
            name: "--mixers",
            takes_value: true,
            help: "mixer count",
        },
        OptionSpec {
            name: "--full",
            takes_value: false,
            help: "emit everything",
        },
    ];

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_values_flags_and_positionals() {
        let parsed =
            ParsedArgs::parse(&argv(&["--mixers", "3", "--full", "extra"]), SPECS).unwrap();
        assert_eq!(parsed.value("--mixers"), Some("3"));
        assert!(parsed.flag("--full"));
        assert_eq!(parsed.positional(), &["extra".to_owned()]);
        assert_eq!(parsed.parse_value::<usize>("--mixers").unwrap(), Some(3));
    }

    #[test]
    fn parses_equals_form() {
        let parsed = ParsedArgs::parse(&argv(&["--mixers=4"]), SPECS).unwrap();
        assert_eq!(parsed.value("--mixers"), Some("4"));
    }

    #[test]
    fn last_value_wins() {
        let parsed = ParsedArgs::parse(&argv(&["--mixers", "1", "--mixers", "2"]), SPECS).unwrap();
        assert_eq!(parsed.parse_value::<usize>("--mixers").unwrap(), Some(2));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert_eq!(
            ParsedArgs::parse(&argv(&["--nope"]), SPECS)
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            ParsedArgs::parse(&argv(&["--mixers"]), SPECS)
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            ParsedArgs::parse(&argv(&["--full=1"]), SPECS)
                .unwrap_err()
                .code,
            2
        );
        let err = ParsedArgs::parse(&argv(&["--mixers", "abc"]), SPECS)
            .unwrap()
            .parse_value::<usize>("--mixers")
            .unwrap_err();
        assert!(err.message.contains("abc"));
    }

    #[test]
    fn list_values_split_on_commas() {
        let specs = &[OptionSpec {
            name: "--assays",
            takes_value: true,
            help: "",
        }];
        let parsed = ParsedArgs::parse(&argv(&["--assays", "pcr, ivd,,cpa"]), specs).unwrap();
        assert_eq!(
            parsed.list_value("--assays").unwrap(),
            vec!["pcr".to_owned(), "ivd".to_owned(), "cpa".to_owned()]
        );
    }
}
