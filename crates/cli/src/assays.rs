//! Resolution of assay names and assay input files.

use biochip_synth::assay::{library, text, SequencingGraph};

use crate::CliError;

/// The benchmark names the CLI accepts, with their aliases (shared with the
/// job service through [`library::NAMED_ASSAYS`]).
pub const LIBRARY: &[(&str, &[&str])] = library::NAMED_ASSAYS;

/// Resolves a library assay by name or alias (case-insensitive).
///
/// # Errors
///
/// Returns a usage [`CliError`] listing the known assays when the name does
/// not resolve.
pub fn by_name(name: &str) -> Result<SequencingGraph, CliError> {
    library::by_name(name).ok_or_else(|| {
        let known: Vec<&str> = LIBRARY.iter().map(|(c, _)| *c).collect();
        CliError::usage(format!(
            "unknown assay `{name}` (known: {})",
            known.join(", ")
        ))
    })
}

/// Loads an assay from a file: `.json` files hold a serialized
/// [`SequencingGraph`], anything else is parsed as the line-oriented
/// `assay`/`op`/`dep` text format.
///
/// # Errors
///
/// Returns a runtime [`CliError`] on I/O, parse or validation failures.
pub fn from_file(path: &str) -> Result<SequencingGraph, CliError> {
    let contents = crate::read_file(path)?;
    let graph: SequencingGraph = if path.ends_with(".json") {
        biochip_json::from_str(&contents)
            .map_err(|e| CliError::runtime(format!("`{path}` is not a valid assay JSON: {e}")))?
    } else {
        text::parse(&contents)
            .map_err(|e| CliError::runtime(format!("`{path}` is not a valid assay: {e}")))?
    };
    graph
        .validate()
        .map_err(|e| CliError::runtime(format!("`{path}` contains an invalid assay: {e}")))?;
    Ok(graph)
}

/// Resolves the assay for a command accepting `--assay NAME` or
/// `--input FILE` (exactly one of the two).
///
/// # Errors
///
/// Returns a usage [`CliError`] when neither or both are given, and
/// propagates name/file resolution failures.
pub fn resolve(assay: Option<&str>, input: Option<&str>) -> Result<SequencingGraph, CliError> {
    match (assay, input) {
        (Some(name), None) => by_name(name),
        (None, Some(path)) => from_file(path),
        (Some(_), Some(_)) => Err(CliError::usage(
            "give either --assay or --input, not both".to_owned(),
        )),
        (None, None) => Err(CliError::usage(
            "an assay is required: --assay <name> or --input <file>".to_owned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_and_aliases_resolve() {
        for (name, ops) in [("pcr", 7), ("PCR", 7), ("invitro", 12), ("protein", 55)] {
            let g = by_name(name).unwrap();
            assert_eq!(g.device_operations().len(), ops, "{name}");
        }
        assert_eq!(by_name("ra30").unwrap().num_operations(), 30);
    }

    #[test]
    fn unknown_name_lists_alternatives() {
        let err = by_name("nope").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("PCR"));
    }

    #[test]
    fn resolve_requires_exactly_one_source() {
        assert!(resolve(None, None).is_err());
        assert!(resolve(Some("pcr"), Some("x.assay")).is_err());
        assert!(resolve(Some("pcr"), None).is_ok());
    }

    #[test]
    fn text_files_round_trip_through_from_file() {
        let dir = std::env::temp_dir().join("biochip-cli-assay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.assay");
        let g = by_name("pcr").unwrap();
        std::fs::write(&path, biochip_synth::assay::text::to_text(&g)).unwrap();
        let loaded = from_file(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, g);

        let json_path = dir.join("mini.json");
        std::fs::write(&json_path, biochip_json::to_string_pretty(&g)).unwrap();
        let loaded = from_file(json_path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, g);
    }
}
