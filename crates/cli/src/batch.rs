//! Re-export of the batch runner, which moved to [`biochip_pool`].
//!
//! The scoped-thread + atomic work-queue machinery behind `biochip batch`
//! now lives in the shared `biochip-pool` crate so that the job service
//! (`biochip serve`) drives the same code. This module keeps the CLI-local
//! paths (`biochip_cli::batch::run_batch`, ...) working.

pub use biochip_pool::batch::{run_batch, BatchJob, BatchJobResult, BatchReport, JobStatus};
