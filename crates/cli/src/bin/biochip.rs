//! The `biochip` binary: see [`biochip_cli::commands::USAGE`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

use biochip_cli::CliError;

/// Whether a panic payload is the `println!` broken-pipe panic (Rust ignores
/// SIGPIPE, so `biochip ... | head` closes stdout under us).
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    biochip_pool::panic_message(payload)
        .unwrap_or("")
        .contains("Broken pipe")
}

fn main() -> ExitCode {
    // Suppress the default backtrace for broken-pipe panics; downstream
    // closing the pipe early (`| head`) is normal, not a crash.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));

    // `--json-errors` is a global pipeline-mode flag: any failure is also
    // emitted as a structured biochip-error/v1 document on stdout, so a
    // driving process parses errors the same way it parses results.
    let mut json_errors = false;
    let argv: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--json-errors" {
                json_errors = true;
                false
            } else {
                true
            }
        })
        .collect();

    let outcome = std::panic::catch_unwind(|| biochip_cli::commands::dispatch(&argv));
    let error = match outcome {
        Ok(Ok(())) => return ExitCode::SUCCESS,
        Ok(Err(error)) => error,
        Err(payload) if is_broken_pipe(payload.as_ref()) => return ExitCode::SUCCESS,
        Err(payload) => {
            // A contained panic degrades into a structured error: report it
            // and exit non-zero instead of crashing with a raw unwind.
            let message = match biochip_pool::panic_message(payload.as_ref()) {
                Some(message) => format!("internal error (panic): {message}"),
                None => "internal error (panic)".to_owned(),
            };
            CliError { message, code: 101 }
        }
    };
    eprintln!("biochip: {error}");
    if json_errors {
        println!("{}", error.json_body());
    }
    ExitCode::from(u8::try_from(error.code).unwrap_or(1))
}
