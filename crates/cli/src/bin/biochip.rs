//! The `biochip` binary: see [`biochip_cli::commands::USAGE`].

use std::process::ExitCode;

/// Whether a panic payload is the `println!` broken-pipe panic (Rust ignores
/// SIGPIPE, so `biochip ... | head` closes stdout under us).
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    let message = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    message.contains("Broken pipe")
}

fn main() -> ExitCode {
    // Suppress the default backtrace for broken-pipe panics; downstream
    // closing the pipe early (`| head`) is normal, not a crash.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    match std::panic::catch_unwind(|| biochip_cli::commands::dispatch(&argv)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(error)) => {
            eprintln!("biochip: {error}");
            ExitCode::from(u8::try_from(error.code).unwrap_or(1))
        }
        Err(payload) if is_broken_pipe(payload.as_ref()) => ExitCode::SUCCESS,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
