//! Implementation of the `biochip` subcommands.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use biochip_synth::arch::{ArchitectureSynthesizer, SynthesisOptions};
use biochip_synth::layout::{generate_layout, render_ascii};
use biochip_synth::sim::{replay, simulate_dedicated_storage};
use biochip_synth::{SchedulerChoice, SynthesisConfig, SynthesisFlow, SynthesisReport};

use crate::args::{render_options, OptionSpec, ParsedArgs};
use crate::assays;
use crate::batch::{run_batch, BatchJob};
use crate::state::{PipelineState, StageTimings};
use crate::{read_file, write_file, CliError};

/// Top-level usage text.
pub const USAGE: &str = "\
biochip — flow-based microfluidic biochip synthesis (Liu et al., DAC'17)

usage: biochip <command> [options]

commands:
  run       full pipeline on one assay (schedule → synth → layout → simulate)
  schedule  scheduling & binding only; writes a pipeline-state JSON
  synth     architectural synthesis + physical design from a schedule state
  simulate  replay a synthesized chip; completes the pipeline state
  batch     fan assays × configurations across a thread pool
  serve     run the persistent HTTP job service with a result cache
  bench     reproduce the paper's Table 2 / Fig 8-10 numbers + scale sweep
  assays    list the built-in benchmark assays
  lint      static analysis of the workspace sources (determinism,
            panic-safety, lock-discipline and unsafe-inventory rules)

run `biochip <command> --help` for the options of one command.
The global flag --json-errors additionally prints failures as a
structured biochip-error/v1 JSON document on stdout (pipeline mode).
";

/// Entry point: dispatches `argv` (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message and exit code on any failure.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::usage(USAGE.to_owned()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "schedule" => cmd_schedule(rest),
        "synth" => cmd_synth(rest),
        "simulate" => cmd_simulate(rest),
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "bench" => cmd_bench(rest),
        "assays" => cmd_assays(rest),
        "lint" => cmd_lint(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// shared configuration options
// ---------------------------------------------------------------------------

const CONFIG_SPECS: &[OptionSpec] = &[
    OptionSpec {
        name: "--assay",
        takes_value: true,
        help: "library assay (PCR, IVD, CPA, RA30-RA100, RA1K, RA10K; aliases invitro/protein)",
    },
    OptionSpec {
        name: "--input",
        takes_value: true,
        help: "assay file (.json = serialized graph, otherwise text format)",
    },
    OptionSpec {
        name: "--mixers",
        takes_value: true,
        help: "number of mixers (default 2)",
    },
    OptionSpec {
        name: "--detectors",
        takes_value: true,
        help: "number of detectors (default 2)",
    },
    OptionSpec {
        name: "--heaters",
        takes_value: true,
        help: "number of heaters (default 1)",
    },
    OptionSpec {
        name: "--scheduler",
        takes_value: true,
        help: "auto | ilp | storage | makespan (default auto)",
    },
    OptionSpec {
        name: "--transport",
        takes_value: true,
        help: "device-to-device transport time u_c in seconds",
    },
    OptionSpec {
        name: "--grid-size",
        takes_value: true,
        help: "fixed connection-grid side length (default: derived)",
    },
    OptionSpec {
        name: "--max-grid-size",
        takes_value: true,
        help: "largest grid the router may grow to (default 12)",
    },
    OptionSpec {
        name: "--ilp-time-limit",
        takes_value: true,
        help: "ILP scheduler wall-clock limit in seconds (default 15)",
    },
    OptionSpec {
        name: "--annealing-moves",
        takes_value: true,
        help: "placement refinement moves (default 2000; 0 disables refinement)",
    },
    OptionSpec {
        name: "--window-candidates",
        takes_value: true,
        help: "max candidate start times per transport window (default 16)",
    },
    OptionSpec {
        name: "--channel-pitch",
        takes_value: true,
        help: "minimum channel pitch for physical design (default 1)",
    },
    OptionSpec {
        name: "--threads",
        takes_value: true,
        help: "scoring threads for one synthesis (default 1; 0 = all cores; output is thread-count independent)",
    },
];

fn parse_scheduler(raw: &str) -> Result<SchedulerChoice, CliError> {
    match raw.to_lowercase().as_str() {
        "auto" => Ok(SchedulerChoice::Auto),
        "ilp" => Ok(SchedulerChoice::Ilp),
        "storage" | "storage-aware" | "list" => Ok(SchedulerChoice::StorageAware),
        "makespan" | "makespan-only" => Ok(SchedulerChoice::MakespanOnly),
        other => Err(CliError::usage(format!(
            "unknown scheduler `{other}` (expected auto, ilp, storage or makespan)"
        ))),
    }
}

fn config_from_args(parsed: &ParsedArgs) -> Result<SynthesisConfig, CliError> {
    let mut config = SynthesisConfig::default();
    if let Some(mixers) = parsed.parse_value::<usize>("--mixers")? {
        config = config.with_mixers(mixers);
    }
    if let Some(detectors) = parsed.parse_value::<usize>("--detectors")? {
        config = config.with_detectors(detectors);
    }
    if let Some(heaters) = parsed.parse_value::<usize>("--heaters")? {
        config = config.with_heaters(heaters);
    }
    if let Some(raw) = parsed.value("--scheduler") {
        config = config.with_scheduler(parse_scheduler(raw)?);
    }
    if let Some(transport) = parsed.parse_value::<u64>("--transport")? {
        config = config.with_transport_time(transport);
    }
    if let Some(side) = parsed.parse_value::<usize>("--grid-size")? {
        config.synthesis.grid_size = Some(side);
    }
    if let Some(side) = parsed.parse_value::<usize>("--max-grid-size")? {
        config.synthesis.max_grid_size = side;
    }
    if let Some(secs) = parsed.parse_value::<u64>("--ilp-time-limit")? {
        config.ilp_time_limit = Duration::from_secs(secs);
    }
    if let Some(moves) = parsed.parse_value::<usize>("--annealing-moves")? {
        config.synthesis.placement.refine = moves > 0;
        config.synthesis.placement.annealing_moves = moves.max(1);
    }
    if let Some(candidates) = parsed.parse_value::<usize>("--window-candidates")? {
        config.synthesis.routing.max_window_candidates = candidates.max(1);
    }
    if let Some(pitch) = parsed.parse_value::<u64>("--channel-pitch")? {
        config.layout.channel_pitch = pitch.max(1);
    }
    if let Some(threads) = parsed.parse_value::<usize>("--threads")? {
        config.parallelism = biochip_synth::arch::Parallelism::with_threads(threads);
    }
    Ok(config)
}

fn help_requested(argv: &[String]) -> bool {
    argv.iter().any(|a| a == "--help" || a == "-h")
}

fn print_help(command: &str, summary: &str, specs: &[OptionSpec]) {
    println!(
        "usage: biochip {command} [options]\n\n{summary}\n\n{}",
        render_options(specs)
    );
}

fn parse_with(
    argv: &[String],
    extra: &[OptionSpec],
) -> Result<(ParsedArgs, Vec<OptionSpec>), CliError> {
    let mut specs: Vec<OptionSpec> = CONFIG_SPECS.to_vec();
    specs.extend_from_slice(extra);
    let parsed = ParsedArgs::parse(argv, &specs)?;
    if let Some(stray) = parsed.positional().first() {
        return Err(CliError::usage(format!("unexpected argument `{stray}`")));
    }
    Ok((parsed, specs))
}

/// The `--trace <path>` option shared by the pipeline commands.
const TRACE_SPEC: OptionSpec = OptionSpec {
    name: "--trace",
    takes_value: true,
    help: "write a Chrome trace_event JSON of this run (open in Perfetto or chrome://tracing)",
};

/// Runs `f`, and when `--trace <path>` was given, collects the telemetry
/// spans it emits and writes them as a Chrome trace_event JSON file.
/// Collection never changes results — only whether the spans are kept.
fn with_optional_trace<T>(
    trace: Option<&str>,
    f: impl FnOnce() -> Result<T, CliError>,
) -> Result<T, CliError> {
    match trace {
        None => f(),
        Some(path) => {
            let (result, events) = biochip_telemetry::with_collection(f);
            // Written even when the run failed: a trace of a failing run is
            // exactly what one wants to look at.
            write_file(path, &biochip_telemetry::chrome_trace_json(&events))?;
            eprintln!("wrote {} trace event(s) to {path}", events.len());
            result
        }
    }
}

fn emit(path: Option<&str>, contents: &str, what: &str) -> Result<(), CliError> {
    match path {
        Some(path) => {
            write_file(path, contents)?;
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        None => {
            println!("{contents}");
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// biochip run
// ---------------------------------------------------------------------------

fn cmd_run(argv: &[String]) -> Result<(), CliError> {
    let extra = [
        OptionSpec {
            name: "--out",
            takes_value: true,
            help: "write the report JSON here (default: stdout summary only)",
        },
        OptionSpec {
            name: "--full",
            takes_value: false,
            help: "emit the complete pipeline state instead of just the report",
        },
        OptionSpec {
            name: "--render",
            takes_value: false,
            help: "print an ASCII rendering of the synthesized chip (stderr)",
        },
        TRACE_SPEC,
    ];
    if help_requested(argv) {
        let (_, specs) = parse_with(&[], &extra)?;
        print_help(
            "run",
            "Runs the full synthesis pipeline on one assay.",
            &specs,
        );
        return Ok(());
    }
    let (parsed, _) = parse_with(argv, &extra)?;
    let graph = assays::resolve(parsed.value("--assay"), parsed.value("--input"))?;
    let config = config_from_args(&parsed)?;

    let flow = SynthesisFlow::new(config.clone());
    let outcome = with_optional_trace(parsed.value("--trace"), || {
        flow.run(graph)
            .map_err(|e| CliError::runtime(format!("synthesis failed: {e}")))
    })?;

    eprintln!("{}", outcome.report);
    if parsed.flag("--render") {
        // The rendering goes to stderr alongside the summary so that stdout
        // stays parseable JSON even without --out.
        eprintln!("{}", render_ascii(&outcome.architecture, &HashSet::new()));
    }

    let json = if parsed.flag("--full") {
        PipelineState::from_outcome(config, &outcome).to_json_text()
    } else {
        biochip_json::to_string_pretty(&outcome.report)
    };
    emit(parsed.value("--out"), &json, "report")
}

// ---------------------------------------------------------------------------
// biochip schedule / synth / simulate — stage-at-a-time with file handoff
// ---------------------------------------------------------------------------

fn cmd_schedule(argv: &[String]) -> Result<(), CliError> {
    let extra = [
        OptionSpec {
            name: "--out",
            takes_value: true,
            help: "write the pipeline state here (default: stdout)",
        },
        TRACE_SPEC,
    ];
    if help_requested(argv) {
        let (_, specs) = parse_with(&[], &extra)?;
        print_help("schedule", "Runs scheduling & binding only.", &specs);
        return Ok(());
    }
    let (parsed, _) = parse_with(argv, &extra)?;
    let graph = assays::resolve(parsed.value("--assay"), parsed.value("--input"))?;
    let config = config_from_args(&parsed)?;

    let flow = SynthesisFlow::new(config.clone());
    let problem = flow.problem_for(graph);
    let started = Instant::now();
    let schedule = with_optional_trace(parsed.value("--trace"), || {
        flow.schedule(&problem)
            .map_err(|e| CliError::runtime(format!("scheduling failed: {e}")))
    })?;
    let scheduling_time = started.elapsed();

    eprintln!(
        "scheduled {}: makespan {}s, {} operations",
        problem.graph().name(),
        schedule.makespan(),
        schedule.len()
    );

    let mut state = PipelineState::new(problem.graph().name().to_owned(), config);
    state.timings.scheduling = scheduling_time;
    state.problem = Some(problem);
    state.schedule = Some(schedule);
    emit(
        parsed.value("--out"),
        &state.to_json_text(),
        "pipeline state",
    )
}

fn stage_input(parsed: &ParsedArgs) -> Result<PipelineState, CliError> {
    let path = parsed
        .value("--in")
        .ok_or_else(|| CliError::usage("--in <state.json> is required".to_owned()))?;
    PipelineState::from_json_text(&read_file(path)?, path)
}

const STAGE_SPECS: &[OptionSpec] = &[
    OptionSpec {
        name: "--in",
        takes_value: true,
        help: "pipeline-state JSON from the previous stage",
    },
    OptionSpec {
        name: "--out",
        takes_value: true,
        help: "write the updated pipeline state here (default: stdout)",
    },
    TRACE_SPEC,
];

const SYNTH_SPECS: &[OptionSpec] = &[
    OptionSpec {
        name: "--in",
        takes_value: true,
        help: "pipeline-state JSON from the previous stage",
    },
    OptionSpec {
        name: "--out",
        takes_value: true,
        help: "write the updated pipeline state here (default: stdout)",
    },
    OptionSpec {
        name: "--warm-from",
        takes_value: true,
        help: "completed pipeline state of a prior run; reuse its placement \
               and replay unchanged routes (byte-identical output)",
    },
    TRACE_SPEC,
];

/// Loads a prior completed pipeline state and turns it into a warm-start
/// hint. An unusable handoff (missing stages, mismatched schedule shape)
/// degrades to a cold run with a note on stderr — warm starts are an
/// optimization, never a correctness requirement.
fn warm_start_hint(path: &str) -> Result<Option<biochip_synth::arch::WarmStart>, CliError> {
    let prior = PipelineState::from_json_text(&read_file(path)?, path)?;
    let problem = prior.require_problem()?;
    let schedule = prior.require_schedule()?;
    let architecture = prior.require_architecture()?;
    let hint = biochip_synth::arch::WarmStart::from_prior(
        problem,
        schedule,
        architecture,
        &prior.config.synthesis,
    );
    if hint.is_none() {
        eprintln!("warm-start handoff `{path}` is not reusable here; running cold");
    }
    Ok(hint)
}

fn cmd_synth(argv: &[String]) -> Result<(), CliError> {
    if help_requested(argv) {
        print_help(
            "synth",
            "Architectural synthesis + physical design from a scheduled state.",
            SYNTH_SPECS,
        );
        return Ok(());
    }
    let parsed = ParsedArgs::parse(argv, SYNTH_SPECS)?;
    let mut state = stage_input(&parsed)?;
    let problem = state.require_problem()?.clone();
    let schedule = state.require_schedule()?.clone();
    schedule
        .validate(&problem)
        .map_err(|e| CliError::runtime(format!("state schedule is inconsistent: {e}")))?;
    let warm = match parsed.value("--warm-from") {
        Some(path) => warm_start_hint(path)?,
        None => None,
    };

    let options: SynthesisOptions = state.config.synthesis.clone();
    let mut architecture_time = Duration::ZERO;
    let mut layout_time = Duration::ZERO;
    let (architecture, layout) = with_optional_trace(parsed.value("--trace"), || {
        let started = Instant::now();
        let mut synthesizer = ArchitectureSynthesizer::new(options);
        if let Some(hint) = warm {
            synthesizer = synthesizer.with_warm_start(hint);
        }
        let architecture = synthesizer
            .synthesize(&problem, &schedule)
            .map_err(|e| CliError::runtime(format!("architectural synthesis failed: {e}")))?;
        architecture_time = started.elapsed();
        let started = Instant::now();
        let layout = generate_layout(&architecture, &state.config.layout);
        layout_time = started.elapsed();
        Ok((architecture, layout))
    })?;
    state.timings.architecture = architecture_time;
    state.timings.layout = layout_time;

    eprintln!(
        "synthesized {}: grid {}, {} kept edges, {} valves, compressed layout {}",
        state.assay,
        architecture.grid().dimensions(),
        architecture.used_edge_count(),
        architecture.valve_count(),
        layout.compressed
    );

    state.architecture = Some(architecture);
    state.layout = Some(layout);
    emit(
        parsed.value("--out"),
        &state.to_json_text(),
        "pipeline state",
    )
}

fn cmd_simulate(argv: &[String]) -> Result<(), CliError> {
    if help_requested(argv) {
        print_help(
            "simulate",
            "Replays the synthesized chip and completes the pipeline state.",
            STAGE_SPECS,
        );
        return Ok(());
    }
    let parsed = ParsedArgs::parse(argv, STAGE_SPECS)?;
    let mut state = stage_input(&parsed)?;
    let problem = state.require_problem()?.clone();
    let schedule = state.require_schedule()?.clone();
    let architecture = state.require_architecture()?.clone();
    let layout = state.require_layout()?.clone();

    // A handoff document can come from anywhere (another binary version, a
    // hand-edited file, a truncated upload): re-establish the invariants the
    // earlier stages guaranteed before replaying, so inconsistencies surface
    // as structured errors instead of panics or silently-wrong reports.
    schedule
        .validate(&problem)
        .map_err(|e| CliError::runtime(format!("state schedule is inconsistent: {e}")))?;
    architecture
        .verify()
        .map_err(|e| CliError::runtime(format!("state architecture is inconsistent: {e}")))?;

    let execution = with_optional_trace(parsed.value("--trace"), || {
        Ok(replay(&problem, &schedule, &architecture))
    })?;
    if execution.clamped {
        return Err(CliError::runtime(
            "replay produced out-of-bounds numbers (clamped report); \
             the state's architecture does not match its schedule"
                .to_owned(),
        ));
    }
    let dedicated = simulate_dedicated_storage(&problem, &schedule);
    let StageTimings {
        scheduling,
        architecture: architecture_time,
        layout: layout_time,
    } = state.timings;
    let report = SynthesisReport::collect(
        &problem,
        &schedule,
        &architecture,
        &layout,
        &execution,
        &dedicated,
        scheduling,
        architecture_time,
        layout_time,
    );

    eprintln!("{report}");

    state.execution = Some(execution);
    state.dedicated_baseline = Some(dedicated);
    state.report = Some(report);
    emit(
        parsed.value("--out"),
        &state.to_json_text(),
        "pipeline state",
    )
}

// ---------------------------------------------------------------------------
// biochip batch
// ---------------------------------------------------------------------------

fn cmd_batch(argv: &[String]) -> Result<(), CliError> {
    let extra = [
        OptionSpec {
            name: "--assays",
            takes_value: true,
            help: "comma-separated assay names (default: PCR,IVD,CPA,RA30)",
        },
        OptionSpec {
            name: "--mixer-counts",
            takes_value: true,
            help: "comma-separated mixer counts to sweep (default: 1,2,3)",
        },
        OptionSpec {
            name: "--schedulers",
            takes_value: true,
            help: "comma-separated scheduler choices to sweep (default: the --scheduler value)",
        },
        OptionSpec {
            name: "--out",
            takes_value: true,
            help: "write the aggregate batch report here (default: stdout)",
        },
    ];
    if help_requested(argv) {
        let (_, specs) = parse_with(&[], &extra)?;
        print_help(
            "batch",
            "Fans assays × configurations across a thread pool.",
            &specs,
        );
        return Ok(());
    }
    let (parsed, _) = parse_with(argv, &extra)?;
    if parsed.value("--assay").is_some() || parsed.value("--input").is_some() {
        return Err(CliError::usage(
            "batch sweeps --assays (plural); --assay/--input apply to single runs".to_owned(),
        ));
    }
    let mut base_config = config_from_args(&parsed)?;
    // In batch mode `--threads` sizes the *job pool*; the jobs themselves
    // stay sequential (one core each) — inter-job parallelism already
    // saturates the machine, and oversubscribing cores per job would only
    // add contention.
    base_config.parallelism = biochip_synth::arch::Parallelism::sequential();

    let assay_names = parsed
        .list_value("--assays")
        .unwrap_or_else(|| vec!["PCR".into(), "IVD".into(), "CPA".into(), "RA30".into()]);
    let mixer_counts: Vec<usize> = match parsed.list_value("--mixer-counts") {
        Some(raw) => raw
            .iter()
            .map(|s| {
                s.parse::<usize>()
                    .map_err(|e| CliError::usage(format!("invalid mixer count `{s}`: {e}")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![1, 2, 3],
    };
    let schedulers: Vec<SchedulerChoice> = match parsed.list_value("--schedulers") {
        Some(raw) => raw
            .iter()
            .map(|s| parse_scheduler(s))
            .collect::<Result<_, _>>()?,
        None => vec![base_config.scheduler],
    };
    if assay_names.is_empty() || mixer_counts.is_empty() || schedulers.is_empty() {
        return Err(CliError::usage(
            "batch needs at least one assay, mixer count and scheduler".to_owned(),
        ));
    }

    // Resolve every assay once up front so name errors surface before any
    // thread is spawned.
    let mut graphs = Vec::with_capacity(assay_names.len());
    for name in &assay_names {
        graphs.push((name.clone(), assays::by_name(name)?));
    }

    let mut jobs = Vec::new();
    for (_, graph) in &graphs {
        for &mixers in &mixer_counts {
            for &scheduler in &schedulers {
                jobs.push(BatchJob {
                    id: jobs.len(),
                    assay: graph.name().to_owned(),
                    graph: graph.clone(),
                    config: base_config
                        .clone()
                        .with_mixers(mixers)
                        .with_scheduler(scheduler),
                });
            }
        }
    }

    let threads = match parsed.parse_value::<usize>("--threads")? {
        Some(n) => n.max(1),
        None => biochip_pool::default_workers(),
    };

    eprintln!(
        "batch: {} jobs ({} assays x {} mixer counts x {} schedulers) on {} threads",
        jobs.len(),
        graphs.len(),
        mixer_counts.len(),
        schedulers.len(),
        threads.min(jobs.len()),
    );
    let report = run_batch(jobs, threads);
    eprintln!(
        "batch finished: {}/{} succeeded in {:.2}s wall ({:.2}s cpu)",
        report.succeeded, report.jobs, report.wall_seconds, report.cpu_seconds
    );
    for failure in report.failures() {
        eprintln!(
            "  FAILED {} (mixers={}, scheduler={}): {}",
            failure.assay,
            failure.mixers,
            failure.scheduler,
            failure.error.as_deref().unwrap_or("unknown")
        );
    }

    emit(
        parsed.value("--out"),
        &biochip_json::to_string_pretty(&report),
        "batch report",
    )?;
    if report.failed > 0 {
        return Err(CliError::runtime(format!(
            "{} batch job(s) failed",
            report.failed
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// biochip serve
// ---------------------------------------------------------------------------

fn cmd_serve(argv: &[String]) -> Result<(), CliError> {
    let specs = [
        OptionSpec {
            name: "--addr",
            takes_value: true,
            help: "listen address (default 127.0.0.1:7078; port 0 picks a free port)",
        },
        OptionSpec {
            name: "--workers",
            takes_value: true,
            help: "synthesis worker threads (default: available parallelism)",
        },
        OptionSpec {
            name: "--cache-capacity",
            takes_value: true,
            help: "content-addressed result-cache entries (default 64)",
        },
        OptionSpec {
            name: "--threads",
            takes_value: true,
            help: "scoring threads per cold job (default 0 = borrow idle workers; capped at 2x cores / workers)",
        },
        OptionSpec {
            name: "--data-dir",
            takes_value: true,
            help: "directory for the crash-safe result store and job journal (default: memory only)",
        },
        OptionSpec {
            name: "--store-mb",
            takes_value: true,
            help: "byte budget of the on-disk result store, in MiB (default 256)",
        },
        OptionSpec {
            name: "--max-queue",
            takes_value: true,
            help: "cold submissions answer 429 once this many jobs are queued (default 1024)",
        },
        OptionSpec {
            name: "--max-inflight",
            takes_value: true,
            help: "per-client in-flight job quota before a 429 (default 256)",
        },
    ];
    if help_requested(argv) {
        print_help(
            "serve",
            "Runs the persistent synthesis job service: POST /jobs,\n\
             GET /jobs/:id, DELETE /jobs/:id, GET /results/:id, GET /stats,\n\
             GET /metrics (Prometheus text), GET /healthz, POST /shutdown.\n\
             Results are cached under the canonical hash of the\n\
             (problem, config) pair, so identical submissions are lookups.\n\
             With --data-dir, results persist across restarts (crash-safe\n\
             store + job journal) and SIGTERM drains gracefully.",
            &specs,
        );
        return Ok(());
    }
    let parsed = ParsedArgs::parse(argv, &specs)?;
    if let Some(stray) = parsed.positional().first() {
        return Err(CliError::usage(format!("unexpected argument `{stray}`")));
    }
    let mut options = biochip_server::ServeOptions::default();
    if let Some(addr) = parsed.value("--addr") {
        options.addr = addr.to_owned();
    }
    if let Some(workers) = parsed.parse_value::<usize>("--workers")? {
        options.workers = workers;
    }
    if let Some(capacity) = parsed.parse_value::<usize>("--cache-capacity")? {
        options.cache_capacity = capacity;
    }
    if let Some(threads) = parsed.parse_value::<usize>("--threads")? {
        options.threads_per_job = threads;
    }
    if let Some(dir) = parsed.value("--data-dir") {
        options.data_dir = Some(dir.to_owned());
    }
    if let Some(mib) = parsed.parse_value::<u64>("--store-mb")? {
        options.store_bytes = mib.saturating_mul(1024 * 1024);
    }
    if let Some(depth) = parsed.parse_value::<usize>("--max-queue")? {
        options.max_queue_depth = depth;
    }
    if let Some(quota) = parsed.parse_value::<usize>("--max-inflight")? {
        options.max_inflight_per_client = quota;
    }

    let server = biochip_server::Server::bind(&options)
        .map_err(|e| CliError::runtime(format!("cannot bind `{}`: {e}", options.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::runtime(format!("cannot read bound address: {e}")))?;
    if let Err(err) = server.drain_on_term_signal() {
        eprintln!("biochip serve: no graceful SIGTERM drain ({err})");
    }
    eprintln!(
        "biochip serve: listening on http://{addr} \
         (POST /jobs, GET /jobs/:id, GET /results/:id, GET /stats, GET /metrics)"
    );
    server.run();
    Ok(())
}

// ---------------------------------------------------------------------------
// biochip bench
// ---------------------------------------------------------------------------

fn cmd_bench(argv: &[String]) -> Result<(), CliError> {
    let specs = [
        OptionSpec {
            name: "--what",
            takes_value: true,
            help: "table2 | fig8 | fig9 | fig10 | scale | arch | pipeline | editloop \
                   (default table2)",
        },
        OptionSpec {
            name: "--format",
            takes_value: true,
            help: "json | csv | text (default text)",
        },
        OptionSpec {
            name: "--out",
            takes_value: true,
            help: "write the result here (default: stdout)",
        },
        OptionSpec {
            name: "--sizes",
            takes_value: true,
            help: "scale/arch only: comma-separated graph sizes (default 100,1000,10000)",
        },
        OptionSpec {
            name: "--mixers",
            takes_value: true,
            help: "scale/arch only: mixer count for the sweep (default 8)",
        },
        OptionSpec {
            name: "--threads",
            takes_value: true,
            help: "pipeline only: comma-separated thread counts (default 1,<cores>)",
        },
        OptionSpec {
            name: "--assays",
            takes_value: true,
            help: "editloop only: comma-separated assay names (default RA1K)",
        },
        OptionSpec {
            name: "--edits",
            takes_value: true,
            help: "editloop only: edits per assay (default 6)",
        },
    ];
    if help_requested(argv) {
        print_help(
            "bench",
            "Reproduces the paper's evaluation numbers; `bench scale` sweeps\n\
             the list scheduler, `bench arch` sweeps place & route over the\n\
             RA1K/RA10K-style scale workloads, `bench pipeline` measures\n\
             the cold pipeline's per-stage latency and multi-core speedup\n\
             (and fails if output differs across thread counts), and\n\
             `bench editloop` replays single-edit resynthesis warm vs. cold\n\
             (and fails if any warm output key diverges from cold).",
            &specs,
        );
        return Ok(());
    }
    let parsed = ParsedArgs::parse(argv, &specs)?;
    // The target can be given positionally (`biochip bench scale`) or via
    // `--what`; giving both (or several positionals) is ambiguous.
    let what = match (parsed.positional(), parsed.value("--what")) {
        ([], what) => what.unwrap_or("table2"),
        ([one], None) => one.as_str(),
        ([one], Some(what)) if one == what => what,
        _ => {
            return Err(CliError::usage(
                "give one bench target: `biochip bench <target>` or `--what <target>`".to_owned(),
            ));
        }
    };
    if !matches!(what, "scale" | "arch")
        && (parsed.value("--sizes").is_some() || parsed.value("--mixers").is_some())
    {
        return Err(CliError::usage(
            "--sizes/--mixers only apply to `biochip bench scale` or `bench arch`".to_owned(),
        ));
    }
    if what != "pipeline" && parsed.value("--threads").is_some() {
        return Err(CliError::usage(
            "--threads only applies to `biochip bench pipeline`".to_owned(),
        ));
    }
    if what != "editloop"
        && (parsed.value("--assays").is_some() || parsed.value("--edits").is_some())
    {
        return Err(CliError::usage(
            "--assays/--edits only apply to `biochip bench editloop`".to_owned(),
        ));
    }
    let format = parsed.value("--format").unwrap_or("text");
    let contents = match (what, format) {
        ("pipeline", "json" | "csv" | "text") => {
            let threads: Vec<usize> = match parsed.list_value("--threads") {
                Some(raw) => raw
                    .iter()
                    .map(|s| {
                        s.parse::<usize>().map_err(|e| {
                            CliError::usage(format!("invalid thread count `{s}`: {e}"))
                        })
                    })
                    .collect::<Result<_, _>>()?,
                None => {
                    let host = biochip_pool::default_workers();
                    let mut defaults = vec![1, host];
                    defaults.dedup();
                    defaults
                }
            };
            if threads.is_empty() || threads.contains(&0) {
                return Err(CliError::usage(
                    "--threads needs at least one non-zero thread count".to_owned(),
                ));
            }
            let rows =
                biochip_bench::pipeline_rows(biochip_bench::DEFAULT_PIPELINE_ASSAYS, &threads)
                    .map_err(|e| CliError::runtime(format!("pipeline sweep failed: {e}")))?;
            biochip_bench::assert_thread_equality(&rows).map_err(|divergence| {
                CliError::runtime(format!("DETERMINISM FAILURE: {divergence}"))
            })?;
            match format {
                "json" => biochip_json::to_string_pretty(&rows),
                "csv" => biochip_bench::pipeline_csv(&rows),
                _ => biochip_bench::format_pipeline(&rows),
            }
        }
        ("editloop", "json" | "csv" | "text") => {
            let assays_raw = parsed.list_value("--assays");
            let assays: Vec<&str> = match &assays_raw {
                Some(raw) => raw.iter().map(String::as_str).collect(),
                None => biochip_bench::DEFAULT_EDITLOOP_ASSAYS.to_vec(),
            };
            if assays.is_empty() {
                return Err(CliError::usage(
                    "--assays needs at least one assay name".to_owned(),
                ));
            }
            let edits = parsed
                .parse_value::<usize>("--edits")?
                .unwrap_or(biochip_bench::DEFAULT_EDITLOOP_EDITS)
                .max(1);
            let rows = biochip_bench::editloop_rows(&assays, edits)
                .map_err(|e| CliError::runtime(format!("edit-loop sweep failed: {e}")))?;
            // Write the artifact before the identity gate so a failing run
            // still leaves the evidence for CI to upload.
            biochip_bench::write_bench_json("editloop", &rows);
            biochip_bench::assert_editloop_identity(&rows).map_err(|divergence| {
                CliError::runtime(format!("DETERMINISM FAILURE: {divergence}"))
            })?;
            match format {
                "json" => biochip_json::to_string_pretty(&rows),
                "csv" => biochip_bench::editloop_csv(&rows),
                _ => biochip_bench::format_editloop(&rows),
            }
        }
        ("scale" | "arch", "json" | "csv" | "text") => {
            let sizes: Vec<usize> = match parsed.list_value("--sizes") {
                Some(raw) => raw
                    .iter()
                    .map(|s| {
                        s.parse::<usize>()
                            .map_err(|e| CliError::usage(format!("invalid size `{s}`: {e}")))
                    })
                    .collect::<Result<_, _>>()?,
                None => biochip_bench::DEFAULT_SCALE_SIZES.to_vec(),
            };
            if sizes.is_empty() || sizes.contains(&0) {
                return Err(CliError::usage(
                    "--sizes needs at least one non-zero graph size".to_owned(),
                ));
            }
            let mixers = parsed
                .parse_value::<usize>("--mixers")?
                .unwrap_or(biochip_bench::DEFAULT_SCALE_MIXERS)
                .max(1);
            if what == "arch" {
                let rows = biochip_bench::arch_scale_rows(&sizes, mixers);
                match format {
                    "json" => biochip_json::to_string_pretty(&rows),
                    "csv" => biochip_bench::arch_scale_csv(&rows),
                    _ => biochip_bench::format_arch_scale(&rows),
                }
            } else {
                let rows = biochip_bench::scale_rows(&sizes, mixers);
                match format {
                    "json" => biochip_json::to_string_pretty(&rows),
                    "csv" => biochip_bench::scale_csv(&rows),
                    _ => biochip_bench::format_scale(&rows),
                }
            }
        }
        ("table2", "text") => biochip_bench::format_table2(&biochip_bench::table2_rows()),
        ("table2", "json") => biochip_json::to_string_pretty(&biochip_bench::table2_rows()),
        ("table2", "csv") => table2_csv(&biochip_bench::table2_rows()),
        ("fig8", "json") => biochip_json::to_string_pretty(&biochip_bench::fig8_rows()),
        ("fig8", "csv" | "text") => {
            ratio_csv("edge_ratio,valve_ratio", &biochip_bench::fig8_rows())
        }
        ("fig9", "json") => biochip_json::to_string_pretty(&biochip_bench::fig9_rows()),
        ("fig9", "csv" | "text") => fig9_csv(&biochip_bench::fig9_rows()),
        ("fig10", "json") => biochip_json::to_string_pretty(&biochip_bench::fig10_rows()),
        ("fig10", "csv" | "text") => {
            ratio_csv("execution_ratio,valve_ratio", &biochip_bench::fig10_rows())
        }
        (w, f)
            if !matches!(
                w,
                "table2" | "fig8" | "fig9" | "fig10" | "scale" | "arch" | "pipeline" | "editloop"
            ) =>
        {
            return Err(CliError::usage(format!(
                "unknown bench target `{f}`-formatted `{w}` \
                 (expected table2, fig8, fig9, fig10, scale, arch, pipeline or editloop)"
            )));
        }
        (_, f) => {
            return Err(CliError::usage(format!(
                "unknown format `{f}` (expected json, csv or text)"
            )));
        }
    };
    emit(parsed.value("--out"), &contents, "bench results")
}

fn table2_csv(rows: &[SynthesisReport]) -> String {
    let mut out = String::from(
        "assay,operations,execution_time_s,grid,used_edges,valves,dims_scaled,dims_expanded,dims_compressed,stored_samples,peak_storage,scheduling_s,architecture_s,layout_s\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3}\n",
            r.assay,
            r.operations,
            r.execution_time,
            r.grid,
            r.used_edges,
            r.valves,
            r.dims_scaled,
            r.dims_expanded,
            r.dims_compressed,
            r.stored_samples,
            r.peak_storage,
            r.scheduling_time.as_secs_f64(),
            r.architecture_time.as_secs_f64(),
            r.layout_time.as_secs_f64(),
        ));
    }
    out
}

fn ratio_csv(header: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = format!("assay,{header}\n");
    for (assay, a, b) in rows {
        out.push_str(&format!("{assay},{a:.4},{b:.4}\n"));
    }
    out
}

fn fig9_csv(rows: &[biochip_bench::Fig9Row]) -> String {
    let mut out = String::from(
        "assay,execution_baseline_s,execution_optimized_s,edges_baseline,edges_optimized,valves_baseline,valves_optimized\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.assay,
            r.execution_baseline,
            r.execution_optimized,
            r.edges.0,
            r.edges.1,
            r.valves.0,
            r.valves.1,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// biochip assays
// ---------------------------------------------------------------------------

fn cmd_lint(argv: &[String]) -> Result<(), CliError> {
    if help_requested(argv) {
        println!(
            "usage: biochip lint [--root DIR] [--baseline FILE] [--list-waived]\n\n\
             Runs the biochip-lint static analysis over every workspace crate\n\
             (D1 map-iteration order, D2 wall-clock, D3 RNG sources, P1\n\
             panic-safety, L1 lock discipline, U1 unsafe inventory). Fails on\n\
             any finding not suppressed by an inline waiver or the committed\n\
             baseline, and on baseline entries whose finding no longer exists.\n\
             `biochip-lint --write-baseline` (the standalone bin) rewrites the\n\
             baseline."
        );
        return Ok(());
    }
    let mut root: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut list_waived = false;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(std::path::PathBuf::from(
                    args.next()
                        .ok_or_else(|| CliError::usage("--root needs a value"))?,
                ));
            }
            "--baseline" => {
                baseline_path =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        CliError::usage("--baseline needs a value")
                    })?));
            }
            "--list-waived" => list_waived = true,
            other => {
                return Err(CliError::usage(format!(
                    "unknown option `{other}` (see `biochip lint --help`)"
                )));
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| CliError::runtime(e.to_string()))?;
            biochip_lint::workspace::find_root(&cwd).ok_or_else(|| {
                CliError::runtime("no workspace Cargo.toml found above the current directory")
            })?
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ci/lint-baseline.tsv"));
    let baseline =
        biochip_lint::baseline::Baseline::load(&baseline_path).map_err(CliError::runtime)?;
    let report = biochip_lint::workspace::run(&root, &baseline).map_err(CliError::runtime)?;

    if list_waived {
        for f in &report.waived {
            println!("waived: {f}");
        }
    }
    for (path, waiver) in &report.unused_waivers {
        println!(
            "warning: {path}:{}: unused waiver for {} (\"{}\")",
            waiver.line, waiver.rule, waiver.reason
        );
    }
    for (finding, _) in &report.new {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "stale baseline entry: {} {} {} ({})",
            entry.rule, entry.path, entry.key, entry.note
        );
    }
    println!(
        "biochip lint: {} crates, {} files — {} new finding(s), {} waived, {} baselined, \
         {} stale baseline entr{}",
        report.crates,
        report.files,
        report.new.len(),
        report.waived.len(),
        report.baselined.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
    );
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::runtime(format!(
            "{} new finding(s), {} stale baseline entr{}",
            report.new.len(),
            report.stale.len(),
            if report.stale.len() == 1 { "y" } else { "ies" },
        )))
    }
}

fn cmd_assays(argv: &[String]) -> Result<(), CliError> {
    if help_requested(argv) {
        println!("usage: biochip assays\n\nLists the built-in benchmark assays.");
        return Ok(());
    }
    println!("name     aliases              device-ops  depth  critical-path");
    for (canonical, aliases) in assays::LIBRARY {
        let graph = assays::by_name(canonical)?;
        println!(
            "{:<8} {:<20} {:<11} {:<6} {}s",
            canonical,
            aliases.join(","),
            graph.device_operations().len(),
            graph.depth(),
            graph.critical_path(),
        );
    }
    Ok(())
}
