//! Library backing the `biochip` command-line driver.
//!
//! The binary wires the workspace's pipeline crates to the file system and
//! the shell:
//!
//! * [`assays`] — resolves `--assay pcr` style names against the paper's
//!   benchmark library and loads assay files (line-oriented text format or
//!   JSON),
//! * [`state`] — the [`state::PipelineState`] JSON document that stage
//!   commands (`schedule` → `synth` → `simulate`) hand to each other,
//! * [`batch`] — the parallel batch-synthesis runner behind `biochip batch`,
//! * [`args`] — a tiny dependency-free option parser,
//! * [`commands`] — one entry point per subcommand.
//!
//! Everything here is deliberately a library so that integration tests (and
//! a future server front end) can drive the exact code paths of the binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod assays;
pub mod batch;
pub mod commands;
pub mod state;

use std::fmt;

/// A command-line failure: a message plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description printed to stderr.
    pub message: String,
    /// Process exit code (`2` for usage errors, `1` for runtime failures).
    pub code: i32,
}

impl CliError {
    /// A runtime failure (exit code 1).
    #[must_use]
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }

    /// A usage error (exit code 2).
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// The structured `biochip-error/v1` JSON body of this error — what a
    /// pipeline-mode caller (`--json-errors`) parses instead of scraping
    /// stderr. Rendered by the job service's [`biochip_server::error_body`]
    /// so the CLI and the server can never drift apart on the shape; the
    /// `code` field carries the process exit code here (an HTTP status on
    /// the server).
    #[must_use]
    pub fn json_body(&self) -> String {
        biochip_server::error_body(u16::try_from(self.code).unwrap_or(1), &self.message)
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Reads a whole file, wrapping I/O errors with the path.
pub fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read `{path}`: {e}")))
}

/// Writes a whole file, wrapping I/O errors with the path.
pub fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))
}
