//! The JSON pipeline-state document exchanged between stage commands.
//!
//! `biochip schedule` writes a [`PipelineState`] holding the problem and the
//! schedule; `biochip synth` reads it and adds the architecture and physical
//! design; `biochip simulate` completes it with the execution reports and the
//! Table-2 summary. `biochip run --full` emits the complete document in one
//! go. Later server/sharding work can stream these same documents between
//! workers.

use std::time::Duration;

use biochip_json::impl_json_struct;
use biochip_synth::arch::Architecture;
use biochip_synth::layout::PhysicalDesign;
use biochip_synth::schedule::{Schedule, ScheduleProblem};
use biochip_synth::sim::{DedicatedExecutionReport, ExecutionReport};
use biochip_synth::{SynthesisConfig, SynthesisOutcome, SynthesisReport};

use crate::CliError;

/// Wall-clock runtimes of the stages executed so far, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Scheduling runtime.
    pub scheduling: Duration,
    /// Architectural-synthesis runtime.
    pub architecture: Duration,
    /// Physical-design runtime.
    pub layout: Duration,
}

impl_json_struct!(StageTimings {
    scheduling,
    architecture,
    layout
});

/// Snapshot of the pipeline after some prefix of stages has run.
///
/// Every stage command deserializes the document, checks that the stages it
/// needs are present, and appends its own results. The `schema` field guards
/// against feeding a document from an incompatible future format version.
#[derive(Debug, Clone)]
pub struct PipelineState {
    /// Format version tag, currently [`PipelineState::SCHEMA`].
    pub schema: String,
    /// Assay name (duplicated from the problem for quick inspection).
    pub assay: String,
    /// The flow configuration the pipeline runs under.
    pub config: SynthesisConfig,
    /// Stage runtimes accumulated so far.
    pub timings: StageTimings,
    /// Scheduling problem (assay + device inventory). Present from the
    /// `schedule` stage onwards.
    pub problem: Option<ScheduleProblem>,
    /// The computed schedule.
    pub schedule: Option<Schedule>,
    /// The synthesized architecture.
    pub architecture: Option<Architecture>,
    /// The physical design.
    pub layout: Option<PhysicalDesign>,
    /// Replay of the synthesized chip.
    pub execution: Option<ExecutionReport>,
    /// The dedicated-storage baseline.
    pub dedicated_baseline: Option<DedicatedExecutionReport>,
    /// The Table-2-style summary row.
    pub report: Option<SynthesisReport>,
}

impl_json_struct!(PipelineState {
    schema,
    assay,
    config,
    timings,
    problem,
    schedule,
    architecture,
    layout,
    execution,
    dedicated_baseline,
    report,
});

impl PipelineState {
    /// The current schema tag written into every document.
    pub const SCHEMA: &'static str = "biochip-pipeline/v1";

    /// A fresh document for one assay and configuration.
    #[must_use]
    pub fn new(assay: impl Into<String>, config: SynthesisConfig) -> Self {
        PipelineState {
            schema: Self::SCHEMA.to_owned(),
            assay: assay.into(),
            config,
            timings: StageTimings::default(),
            problem: None,
            schedule: None,
            architecture: None,
            layout: None,
            execution: None,
            dedicated_baseline: None,
            report: None,
        }
    }

    /// A complete document from a full-flow outcome.
    #[must_use]
    pub fn from_outcome(config: SynthesisConfig, outcome: &SynthesisOutcome) -> Self {
        let mut state = PipelineState::new(outcome.problem.graph().name().to_owned(), config);
        state.timings = StageTimings {
            scheduling: outcome.report.scheduling_time,
            architecture: outcome.report.architecture_time,
            layout: outcome.report.layout_time,
        };
        state.problem = Some(outcome.problem.clone());
        state.schedule = Some(outcome.schedule.clone());
        state.architecture = Some(outcome.architecture.clone());
        state.layout = Some(outcome.layout.clone());
        state.execution = Some(outcome.execution);
        state.dedicated_baseline = Some(outcome.dedicated_baseline);
        state.report = Some(outcome.report.clone());
        state
    }

    /// Parses a document from JSON text, checking the schema tag.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`CliError`] on malformed JSON or a schema mismatch.
    pub fn from_json_text(text: &str, origin: &str) -> Result<Self, CliError> {
        let state: PipelineState = biochip_json::from_str(text)
            .map_err(|e| CliError::runtime(format!("`{origin}` is not a pipeline state: {e}")))?;
        if state.schema != Self::SCHEMA {
            // Distinguish "a pipeline state from another format version"
            // from "some other document entirely" — the fixes differ.
            let hint = if state.schema.starts_with("biochip-pipeline/") {
                "; re-run the earlier stages with this binary"
            } else {
                "; this does not look like a stage handoff document"
            };
            return Err(CliError::runtime(format!(
                "`{origin}` has schema `{}`, expected `{}`{hint}",
                state.schema,
                Self::SCHEMA
            )));
        }
        Ok(state)
    }

    /// Serializes the document as pretty JSON.
    #[must_use]
    pub fn to_json_text(&self) -> String {
        biochip_json::to_string_pretty(self)
    }

    /// The problem, or an error naming the stage that should have produced
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`CliError`] if the field is absent.
    pub fn require_problem(&self) -> Result<&ScheduleProblem, CliError> {
        self.problem.as_ref().ok_or_else(|| {
            CliError::runtime("state has no problem; run `biochip schedule` first".to_owned())
        })
    }

    /// The schedule, or an error naming the stage that should have produced
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`CliError`] if the field is absent.
    pub fn require_schedule(&self) -> Result<&Schedule, CliError> {
        self.schedule.as_ref().ok_or_else(|| {
            CliError::runtime("state has no schedule; run `biochip schedule` first".to_owned())
        })
    }

    /// The architecture, or an error naming the stage that should have
    /// produced it.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`CliError`] if the field is absent.
    pub fn require_architecture(&self) -> Result<&Architecture, CliError> {
        self.architecture.as_ref().ok_or_else(|| {
            CliError::runtime("state has no architecture; run `biochip synth` first".to_owned())
        })
    }

    /// The physical design, or an error naming the stage that should have
    /// produced it.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`CliError`] if the field is absent.
    pub fn require_layout(&self) -> Result<&PhysicalDesign, CliError> {
        self.layout.as_ref().ok_or_else(|| {
            CliError::runtime("state has no layout; run `biochip synth` first".to_owned())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biochip_synth::{SynthesisConfig, SynthesisFlow};

    #[test]
    fn fresh_state_round_trips() {
        let state = PipelineState::new("PCR", SynthesisConfig::default());
        let text = state.to_json_text();
        let back = PipelineState::from_json_text(&text, "test").unwrap();
        assert_eq!(back.assay, "PCR");
        assert_eq!(back.config, state.config);
        assert!(back.problem.is_none());
        assert!(back.require_schedule().is_err());
    }

    #[test]
    fn full_outcome_round_trips() {
        let config = SynthesisConfig::default().with_mixers(2);
        let outcome = SynthesisFlow::new(config.clone())
            .run(biochip_synth::assay::library::pcr())
            .unwrap();
        let state = PipelineState::from_outcome(config, &outcome);
        let back = PipelineState::from_json_text(&state.to_json_text(), "test").unwrap();
        assert_eq!(back.report.as_ref().unwrap(), &outcome.report);
        assert_eq!(back.schedule.as_ref().unwrap(), &outcome.schedule);
        assert_eq!(
            back.architecture.as_ref().unwrap().valve_count(),
            outcome.architecture.valve_count()
        );
        assert!(back.require_problem().is_ok());
        assert!(back.require_layout().is_ok());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut state = PipelineState::new("PCR", SynthesisConfig::default());
        state.schema = "biochip-pipeline/v999".to_owned();
        let err = PipelineState::from_json_text(&state.to_json_text(), "f.json").unwrap_err();
        assert!(err.message.contains("schema"));
    }
}
