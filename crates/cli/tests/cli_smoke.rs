//! End-to-end smoke tests that exercise the real `biochip` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

use biochip_cli::batch::BatchReport;
use biochip_cli::state::PipelineState;
use biochip_synth::SynthesisReport;

fn biochip(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_biochip"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

fn tmp_path(name: &str) -> String {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&path).unwrap();
    path.push(name);
    path.to_str().unwrap().to_owned()
}

fn assert_success(output: &Output, context: &str) {
    assert!(
        output.status.success(),
        "{context} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn run_pcr_emits_a_valid_report() {
    let out = tmp_path("report.json");
    let output = biochip(&[
        "run",
        "--assay",
        "pcr",
        "--mixers",
        "2",
        "--scheduler",
        "storage",
        "--out",
        &out,
    ]);
    assert_success(&output, "biochip run");

    let text = std::fs::read_to_string(&out).unwrap();
    let report: SynthesisReport =
        biochip_json::from_str(&text).expect("report JSON must deserialize");
    assert_eq!(report.assay, "PCR");
    assert_eq!(report.operations, 7);
    assert!(report.execution_time > 0);
    assert!(report.valves > 0);

    // The numbers must match an in-process run of the same configuration.
    let outcome = biochip_synth::SynthesisFlow::new(
        biochip_synth::SynthesisConfig::default()
            .with_mixers(2)
            .with_scheduler(biochip_synth::SchedulerChoice::StorageAware),
    )
    .run(biochip_synth::assay::library::pcr())
    .unwrap();
    assert_eq!(report.execution_time, outcome.report.execution_time);
    assert_eq!(report.used_edges, outcome.report.used_edges);
    assert_eq!(report.valves, outcome.report.valves);
}

#[test]
fn stage_commands_hand_off_through_files() {
    let scheduled = tmp_path("stage-scheduled.json");
    let synthesized = tmp_path("stage-synthesized.json");
    let simulated = tmp_path("stage-simulated.json");

    let output = biochip(&[
        "schedule",
        "--assay",
        "ivd",
        "--scheduler",
        "storage",
        "--out",
        &scheduled,
    ]);
    assert_success(&output, "biochip schedule");

    let output = biochip(&["synth", "--in", &scheduled, "--out", &synthesized]);
    assert_success(&output, "biochip synth");

    let output = biochip(&["simulate", "--in", &synthesized, "--out", &simulated]);
    assert_success(&output, "biochip simulate");

    let state =
        PipelineState::from_json_text(&std::fs::read_to_string(&simulated).unwrap(), "state")
            .unwrap();
    assert_eq!(state.assay, "IVD");
    let report = state.report.expect("simulate completes the report");
    assert_eq!(report.operations, 12);
    let schedule = state.schedule.expect("schedule stage output survives");
    let problem = state.problem.expect("problem survives");
    assert!(schedule.validate(&problem).is_ok());
    assert!(state
        .architecture
        .expect("architecture survives")
        .verify()
        .is_ok());
}

#[test]
fn batch_sweeps_the_acceptance_grid_without_panics() {
    let out = tmp_path("batch.json");
    let output = biochip(&[
        "batch",
        "--assays",
        "pcr,invitro,protein,RA30",
        "--mixer-counts",
        "1,2,3",
        "--scheduler",
        "storage",
        "--threads",
        "4",
        "--out",
        &out,
    ]);
    assert_success(&output, "biochip batch");

    let report: BatchReport =
        biochip_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.jobs, 12);
    assert_eq!(report.succeeded, 12);
    assert_eq!(report.failed, 0);
    let assays: std::collections::HashSet<&str> =
        report.results.iter().map(|r| r.assay.as_str()).collect();
    assert_eq!(assays, ["PCR", "IVD", "CPA", "RA30"].into_iter().collect());
    for mixers in 1..=3 {
        assert_eq!(
            report.results.iter().filter(|r| r.mixers == mixers).count(),
            4
        );
    }
}

#[test]
fn run_accepts_text_assay_files() {
    let assay_file = tmp_path("custom.assay");
    std::fs::write(
        &assay_file,
        "assay custom\nop a input 0\nop b input 0\nop m mix 30\ndep a m\ndep b m\n",
    )
    .unwrap();
    let out = tmp_path("custom-report.json");
    let output = biochip(&["run", "--input", &assay_file, "--out", &out]);
    assert_success(&output, "biochip run --input");
    let report: SynthesisReport =
        biochip_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.assay, "custom");
    assert_eq!(report.operations, 1);
}

#[test]
fn usage_errors_exit_with_code_two() {
    let output = biochip(&["run", "--assay", "nope"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown assay"));

    let output = biochip(&["run", "--frobnicate"]);
    assert_eq!(output.status.code(), Some(2));

    let output = biochip(&["definitely-not-a-command"]);
    assert_eq!(output.status.code(), Some(2));

    let output = biochip(&[]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn help_is_available_everywhere() {
    for args in [
        vec!["--help"],
        vec!["run", "--help"],
        vec!["schedule", "--help"],
        vec!["synth", "--help"],
        vec!["simulate", "--help"],
        vec!["batch", "--help"],
        vec!["serve", "--help"],
        vec!["bench", "--help"],
    ] {
        let output = biochip(&args);
        assert_success(&output, &format!("{args:?}"));
        assert!(!output.stdout.is_empty(), "{args:?} printed nothing");
    }
}

#[test]
fn json_errors_flag_emits_a_structured_error_body() {
    let output = biochip(&[
        "simulate",
        "--json-errors",
        "--in",
        "/nonexistent/state.json",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let body = String::from_utf8_lossy(&output.stdout);
    let parsed = biochip_json::parse(&body).expect("stdout is a JSON error document");
    assert_eq!(
        parsed.get("schema").unwrap().expect_str().unwrap(),
        "biochip-error/v1"
    );
    assert_eq!(parsed.get("code").unwrap().expect_number().unwrap(), 1.0);
    assert!(parsed
        .get("error")
        .unwrap()
        .expect_str()
        .unwrap()
        .contains("cannot read"));

    // Without the flag, stdout stays clean (errors only on stderr).
    let output = biochip(&["simulate", "--in", "/nonexistent/state.json"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(output.stdout.is_empty());
}

#[test]
fn stage_mismatched_handoffs_are_structured_errors() {
    // A schedule-stage document fed to `simulate` (skipping `synth`).
    let scheduled = tmp_path("mismatch-scheduled.json");
    let output = biochip(&["schedule", "--assay", "pcr", "--out", &scheduled]);
    assert_success(&output, "biochip schedule");

    let output = biochip(&["simulate", "--json-errors", "--in", &scheduled]);
    assert_eq!(output.status.code(), Some(1));
    let parsed = biochip_json::parse(&String::from_utf8_lossy(&output.stdout))
        .expect("structured error body");
    let message = parsed
        .get("error")
        .unwrap()
        .expect_str()
        .unwrap()
        .to_owned();
    assert!(message.contains("biochip synth"), "{message}");

    // A document from a future format version.
    let from_the_future = tmp_path("mismatch-future.json");
    let text = std::fs::read_to_string(&scheduled).unwrap();
    std::fs::write(
        &from_the_future,
        text.replace("biochip-pipeline/v1", "biochip-pipeline/v999"),
    )
    .unwrap();
    let output = biochip(&["simulate", "--json-errors", "--in", &from_the_future]);
    assert_eq!(output.status.code(), Some(1));
    let parsed = biochip_json::parse(&String::from_utf8_lossy(&output.stdout)).unwrap();
    let message = parsed
        .get("error")
        .unwrap()
        .expect_str()
        .unwrap()
        .to_owned();
    assert!(message.contains("biochip-pipeline/v999"), "{message}");
    assert!(message.contains("re-run the earlier stages"), "{message}");

    // Not a pipeline document at all.
    let garbage = tmp_path("mismatch-garbage.json");
    std::fs::write(&garbage, "{\"hello\": 1}").unwrap();
    let output = biochip(&["simulate", "--in", &garbage]);
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("not a pipeline state"));
}

#[test]
fn serve_answers_loopback_jobs_end_to_end() {
    use std::io::BufRead;

    // Spawn `biochip serve` on an ephemeral port and scrape the bound
    // address from its startup line.
    let mut child = Command::new(env!("CARGO_BIN_EXE_biochip"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve must spawn");
    let stderr = child.stderr.take().unwrap();
    let mut lines = std::io::BufReader::new(stderr).lines();
    let first = lines
        .next()
        .expect("serve prints a startup line")
        .expect("startup line is UTF-8");
    let addr: std::net::SocketAddr = first
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("startup line names the address")
        .parse()
        .expect("address parses");

    let run = || -> Result<(), String> {
        let accepted = biochip_server::client::submit(addr, r#"{"assay": "PCR"}"#)?;
        let id = biochip_server::client::job_id(&accepted)?;
        let done =
            biochip_server::client::wait_for_job(addr, id, std::time::Duration::from_secs(120))?;
        let status = done
            .get("status")
            .and_then(|s| s.expect_str().ok())
            .unwrap_or("?");
        if status != "done" {
            return Err(format!("job ended {status}"));
        }
        let (code, _) = biochip_server::client::get(addr, &format!("/results/{id}"))
            .map_err(|e| e.to_string())?;
        if code != 200 {
            return Err(format!("GET /results answered {code}"));
        }
        Ok(())
    };
    let outcome = run();
    child.kill().expect("serve stops on kill");
    let _ = child.wait();
    outcome.expect("loopback job must synthesize");
}
