//! End-to-end smoke tests that exercise the real `biochip` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

use biochip_cli::batch::BatchReport;
use biochip_cli::state::PipelineState;
use biochip_synth::SynthesisReport;

fn biochip(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_biochip"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

fn tmp_path(name: &str) -> String {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&path).unwrap();
    path.push(name);
    path.to_str().unwrap().to_owned()
}

fn assert_success(output: &Output, context: &str) {
    assert!(
        output.status.success(),
        "{context} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn run_pcr_emits_a_valid_report() {
    let out = tmp_path("report.json");
    let output = biochip(&[
        "run",
        "--assay",
        "pcr",
        "--mixers",
        "2",
        "--scheduler",
        "storage",
        "--out",
        &out,
    ]);
    assert_success(&output, "biochip run");

    let text = std::fs::read_to_string(&out).unwrap();
    let report: SynthesisReport =
        biochip_json::from_str(&text).expect("report JSON must deserialize");
    assert_eq!(report.assay, "PCR");
    assert_eq!(report.operations, 7);
    assert!(report.execution_time > 0);
    assert!(report.valves > 0);

    // The numbers must match an in-process run of the same configuration.
    let outcome = biochip_synth::SynthesisFlow::new(
        biochip_synth::SynthesisConfig::default()
            .with_mixers(2)
            .with_scheduler(biochip_synth::SchedulerChoice::StorageAware),
    )
    .run(biochip_synth::assay::library::pcr())
    .unwrap();
    assert_eq!(report.execution_time, outcome.report.execution_time);
    assert_eq!(report.used_edges, outcome.report.used_edges);
    assert_eq!(report.valves, outcome.report.valves);
}

#[test]
fn stage_commands_hand_off_through_files() {
    let scheduled = tmp_path("stage-scheduled.json");
    let synthesized = tmp_path("stage-synthesized.json");
    let simulated = tmp_path("stage-simulated.json");

    let output = biochip(&[
        "schedule",
        "--assay",
        "ivd",
        "--scheduler",
        "storage",
        "--out",
        &scheduled,
    ]);
    assert_success(&output, "biochip schedule");

    let output = biochip(&["synth", "--in", &scheduled, "--out", &synthesized]);
    assert_success(&output, "biochip synth");

    let output = biochip(&["simulate", "--in", &synthesized, "--out", &simulated]);
    assert_success(&output, "biochip simulate");

    let state =
        PipelineState::from_json_text(&std::fs::read_to_string(&simulated).unwrap(), "state")
            .unwrap();
    assert_eq!(state.assay, "IVD");
    let report = state.report.expect("simulate completes the report");
    assert_eq!(report.operations, 12);
    let schedule = state.schedule.expect("schedule stage output survives");
    let problem = state.problem.expect("problem survives");
    assert!(schedule.validate(&problem).is_ok());
    assert!(state
        .architecture
        .expect("architecture survives")
        .verify()
        .is_ok());
}

#[test]
fn batch_sweeps_the_acceptance_grid_without_panics() {
    let out = tmp_path("batch.json");
    let output = biochip(&[
        "batch",
        "--assays",
        "pcr,invitro,protein,RA30",
        "--mixer-counts",
        "1,2,3",
        "--scheduler",
        "storage",
        "--threads",
        "4",
        "--out",
        &out,
    ]);
    assert_success(&output, "biochip batch");

    let report: BatchReport =
        biochip_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.jobs, 12);
    assert_eq!(report.succeeded, 12);
    assert_eq!(report.failed, 0);
    let assays: std::collections::HashSet<&str> =
        report.results.iter().map(|r| r.assay.as_str()).collect();
    assert_eq!(assays, ["PCR", "IVD", "CPA", "RA30"].into_iter().collect());
    for mixers in 1..=3 {
        assert_eq!(
            report.results.iter().filter(|r| r.mixers == mixers).count(),
            4
        );
    }
}

#[test]
fn run_accepts_text_assay_files() {
    let assay_file = tmp_path("custom.assay");
    std::fs::write(
        &assay_file,
        "assay custom\nop a input 0\nop b input 0\nop m mix 30\ndep a m\ndep b m\n",
    )
    .unwrap();
    let out = tmp_path("custom-report.json");
    let output = biochip(&["run", "--input", &assay_file, "--out", &out]);
    assert_success(&output, "biochip run --input");
    let report: SynthesisReport =
        biochip_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.assay, "custom");
    assert_eq!(report.operations, 1);
}

#[test]
fn usage_errors_exit_with_code_two() {
    let output = biochip(&["run", "--assay", "nope"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown assay"));

    let output = biochip(&["run", "--frobnicate"]);
    assert_eq!(output.status.code(), Some(2));

    let output = biochip(&["definitely-not-a-command"]);
    assert_eq!(output.status.code(), Some(2));

    let output = biochip(&[]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn help_is_available_everywhere() {
    for args in [
        vec!["--help"],
        vec!["run", "--help"],
        vec!["schedule", "--help"],
        vec!["synth", "--help"],
        vec!["simulate", "--help"],
        vec!["batch", "--help"],
        vec!["bench", "--help"],
    ] {
        let output = biochip(&args);
        assert_success(&output, &format!("{args:?}"));
        assert!(!output.stdout.is_empty(), "{args:?} printed nothing");
    }
}
