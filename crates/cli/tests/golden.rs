//! Golden-file tests: committed fixtures pin the `biochip-pipeline/v1` JSON
//! contract and other machine-readable CLI output, so the format cannot
//! drift silently.
//!
//! On mismatch the test prints both documents; regenerate the fixtures with
//!
//! ```text
//! BIOCHIP_BLESS=1 cargo test -p biochip-cli --test golden
//! ```
//!
//! Wall-clock timing fields are normalized to `null` before comparison (and
//! before blessing), so the fixtures are deterministic across machines.

use std::path::PathBuf;
use std::process::{Command, Output};

use biochip_json::Json;

fn biochip(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_biochip"))
        .args(args)
        .output()
        .expect("binary must spawn")
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn blessing() -> bool {
    std::env::var("BIOCHIP_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Replaces every `timings` field (stage wall-clock times) with `null`,
/// recursively, so fixtures compare structurally across machines.
fn normalize(value: &mut Json) {
    match value {
        Json::Object(fields) => {
            for (key, field) in fields.iter_mut() {
                if key == "timings" {
                    *field = Json::Null;
                } else {
                    normalize(field);
                }
            }
        }
        Json::Array(items) => {
            for item in items.iter_mut() {
                normalize(item);
            }
        }
        _ => {}
    }
}

/// Runs the CLI, normalizes its stdout and compares against (or blesses)
/// the named fixture.
fn check_golden(name: &str, args: &[&str], json: bool) {
    let output = biochip(args);
    assert!(
        output.status.success(),
        "{args:?} failed:\nstderr: {}",
        String::from_utf8_lossy(&output.stderr),
    );
    let raw = String::from_utf8(output.stdout).expect("stdout must be UTF-8");
    let actual = if json {
        let mut value = biochip_json::parse(&raw).expect("stdout must be valid JSON");
        normalize(&mut value);
        biochip_json::to_string_pretty(&value)
    } else {
        raw
    };

    let path = fixture_path(name);
    if blessing() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {}: {e}\nrun `BIOCHIP_BLESS=1 cargo test -p biochip-cli \
             --test golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "`{args:?}` drifted from {} — if the change is intentional, regenerate with \
         BIOCHIP_BLESS=1",
        path.display(),
    );
}

#[test]
fn schedule_state_json_matches_fixture() {
    // The stage hand-off document: the core of the biochip-pipeline/v1
    // contract. Timings are normalized, everything else must be stable.
    check_golden(
        "schedule_pcr.json",
        &[
            "schedule",
            "--assay",
            "pcr",
            "--mixers",
            "2",
            "--scheduler",
            "storage",
            "--transport",
            "5",
        ],
        true,
    );
}

#[test]
fn bench_fig9_json_matches_fixture() {
    // Fig. 9 rows carry no timing fields: fully deterministic, and they pin
    // the scheduler's output makespans on three benchmark assays — a drift
    // here means the schedules themselves changed.
    check_golden(
        "bench_fig9.json",
        &["bench", "fig9", "--format", "json"],
        true,
    );
}

#[test]
fn assays_listing_matches_fixture() {
    // The assay catalogue (including the RA1K/RA10K scale family) with
    // depth and critical-path analytics per assay.
    check_golden("assays.txt", &["assays"], false);
}
