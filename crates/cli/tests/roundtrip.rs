//! JSON round-trips of every pipeline stage's types: each stage result is
//! serialized, deserialized, and the *deserialized* value is fed to the next
//! stage — proving the interchange formats carry everything downstream
//! stages need.

use biochip_synth::arch::{Architecture, ArchitectureSynthesizer, SynthesisOptions};
use biochip_synth::assay::{library, SequencingGraph};
use biochip_synth::layout::{generate_layout, LayoutOptions, PhysicalDesign};
use biochip_synth::schedule::{
    ListScheduler, Schedule, ScheduleProblem, Scheduler, SchedulingStrategy,
};
use biochip_synth::sim::{replay, ExecutionReport, Snapshot};
use biochip_synth::{SynthesisConfig, SynthesisFlow, SynthesisReport};

fn reload<T: biochip_json::Serialize + biochip_json::Deserialize>(value: &T) -> T {
    let text = biochip_json::to_string_pretty(value);
    biochip_json::from_str(&text).expect("serialized value must deserialize")
}

#[test]
fn assay_graph_round_trips_for_every_benchmark() {
    for (name, graph) in library::paper_benchmarks() {
        let back: SequencingGraph = reload(&graph);
        assert_eq!(back, graph, "{name}");
        assert!(back.validate().is_ok(), "{name}");
    }
}

#[test]
fn pipeline_stages_chain_through_json() {
    // Stage 1: problem + schedule.
    let problem = ScheduleProblem::new(library::pcr()).with_mixers(2);
    let problem: ScheduleProblem = reload(&problem);
    let schedule = ListScheduler::new(SchedulingStrategy::StorageAware)
        .schedule(&problem)
        .unwrap();
    let schedule: Schedule = reload(&schedule);
    assert!(schedule.validate(&problem).is_ok());

    // Stage 2: architecture from the *deserialized* problem and schedule.
    let architecture = ArchitectureSynthesizer::new(SynthesisOptions::default())
        .synthesize(&problem, &schedule)
        .unwrap();
    let architecture: Architecture = reload(&architecture);
    assert!(architecture.verify().is_ok());
    assert!(architecture.used_edge_count() > 0);

    // Stage 3: layout and execution report from the deserialized architecture.
    let layout = generate_layout(&architecture, &LayoutOptions::default());
    let layout: PhysicalDesign = reload(&layout);
    assert!(layout.compressed.area() <= layout.expanded.area());

    let execution = replay(&problem, &schedule, &architecture);
    let back: ExecutionReport = reload(&execution);
    assert_eq!(back, execution);
}

#[test]
fn full_outcome_report_and_snapshot_round_trip() {
    let config = SynthesisConfig::default().with_mixers(2);
    let outcome = SynthesisFlow::new(config).run(library::ivd()).unwrap();

    let report: SynthesisReport = reload(&outcome.report);
    assert_eq!(report, outcome.report);

    let t = outcome.schedule.makespan() / 2;
    let snapshot = biochip_synth::sim::snapshot_at(&outcome.architecture, t);
    let back: Snapshot = reload(&snapshot);
    assert_eq!(back, snapshot);
    assert_eq!(back.active_edges(), snapshot.active_edges());
}

#[test]
fn config_round_trip_preserves_every_knob() {
    let config = SynthesisConfig::default()
        .with_mixers(3)
        .with_detectors(1)
        .with_heaters(2)
        .with_scheduler(biochip_synth::SchedulerChoice::MakespanOnly)
        .with_transport_time(7);
    let back: SynthesisConfig = reload(&config);
    assert_eq!(back, config);
}

#[test]
fn malformed_documents_are_rejected_with_context() {
    let err = biochip_json::from_str::<SynthesisReport>("{\"assay\": \"PCR\"}").unwrap_err();
    assert!(err.to_string().contains("operations"), "{err}");

    let err = biochip_json::from_str::<Schedule>("[1, 2]").unwrap_err();
    assert!(err.to_string().contains("assignments"), "{err}");
}
