//! Fault injection against the real binary: SIGKILL the serve process
//! mid-job, restart it on the same data directory, and check what survived.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use biochip_server::client;

/// RA1K can take a while in debug builds; be generous.
const JOB_TIMEOUT: Duration = Duration::from_secs(300);

struct Serve {
    child: Child,
    addr: SocketAddr,
}

/// Spawns `biochip serve` on a free port and waits for its listening line.
/// The rest of stderr keeps draining on a thread — a full pipe would wedge
/// the server, and the server writing to a closed pipe would kill it.
fn spawn_serve(data_dir: &str) -> Serve {
    let mut child = Command::new(env!("CARGO_BIN_EXE_biochip"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--data-dir",
            data_dir,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary must spawn");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.split("listening on http://").nth(1) {
            addr = rest
                .split_whitespace()
                .next()
                .and_then(|a| a.parse::<SocketAddr>().ok());
            break;
        }
        line.clear();
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    let addr = addr.expect("serve must print its listening address");
    Serve { child, addr }
}

fn data_dir() -> String {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    path.push(format!("serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).unwrap();
    path.to_str().unwrap().to_owned()
}

#[test]
fn sigkill_mid_job_then_restart_recovers_results_and_reruns_the_victim() {
    let dir = data_dir();

    // Incarnation 1: one completed job, one job caught mid-flight.
    let mut serve = spawn_serve(&dir);
    let addr = serve.addr;

    let first = client::submit(addr, r#"{"assay": "RA1K"}"#).unwrap();
    let first_id = client::job_id(&first).unwrap();
    let done = client::wait_for_job(addr, first_id, JOB_TIMEOUT).unwrap();
    assert_eq!(
        done.get("status").unwrap().expect_str().unwrap(),
        "done",
        "{}",
        done.to_compact()
    );
    let (status, first_result) = client::get(addr, &format!("/results/{first_id}")).unwrap();
    assert_eq!(status, 200);

    // A different cold job (a config edit changes the content key); kill
    // the server once a worker has picked it up.
    let mut config = biochip_synth::SynthesisConfig::default();
    config.layout.channel_pitch += 1;
    let victim_body = format!(
        r#"{{"assay": "RA1K", "config": {}}}"#,
        biochip_json::to_string(&config)
    );
    let victim = client::submit(addr, &victim_body).unwrap();
    let victim_id = client::job_id(&victim).unwrap();
    let deadline = std::time::Instant::now() + JOB_TIMEOUT;
    loop {
        let (status, body) = client::get(addr, &format!("/jobs/{victim_id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = biochip_json::parse(&body).unwrap();
        if doc.get("status").unwrap().expect_str().unwrap() != "queued" {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{body}");
        std::thread::sleep(Duration::from_millis(2));
    }

    serve.child.kill().expect("SIGKILL the server");
    serve.child.wait().expect("reap the killed server");

    // Incarnation 2 on the same data dir.
    let mut serve = spawn_serve(&dir);
    let addr = serve.addr;

    // The completed job survived the crash: same status, same bytes.
    let (status, body) = client::get(addr, &format!("/jobs/{first_id}")).unwrap();
    assert_eq!(status, 200, "{body}");
    let recovered = biochip_json::parse(&body).unwrap();
    assert_eq!(
        recovered.get("status").unwrap().expect_str().unwrap(),
        "done",
        "{body}"
    );
    assert_eq!(
        recovered.get("recovered"),
        Some(&biochip_json::Json::Bool(true)),
        "{body}"
    );
    let (status, recovered_result) = client::get(addr, &format!("/results/{first_id}")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        first_result, recovered_result,
        "the recovered result must be byte-identical"
    );

    // The interrupted job was re-enqueued under its original id and runs
    // to completion (or, if it had just finished before the kill, its
    // stored result was restored) — either way it ends `done`.
    let rerun = client::wait_for_job(addr, victim_id, JOB_TIMEOUT).unwrap();
    assert_eq!(
        rerun.get("status").unwrap().expect_str().unwrap(),
        "done",
        "{}",
        rerun.to_compact()
    );
    assert_eq!(
        rerun.get("recovered"),
        Some(&biochip_json::Json::Bool(true)),
        "{}",
        rerun.to_compact()
    );

    // Resubmitting the first job is warm even though the process died.
    let resubmitted = client::submit(addr, r#"{"assay": "RA1K"}"#).unwrap();
    assert_eq!(
        resubmitted.get("cached"),
        Some(&biochip_json::Json::Bool(true)),
        "{}",
        resubmitted.to_compact()
    );

    serve.child.kill().expect("stop the second server");
    serve.child.wait().expect("reap the second server");
    let _ = std::fs::remove_dir_all(&dir);
}
