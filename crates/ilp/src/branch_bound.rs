//! Branch & bound over the LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::error::SolveError;
use crate::model::{Model, VarId};
use crate::options::SolverOptions;
use crate::simplex::{solve_relaxation_with_bounds, LpOutcome};
use crate::solution::{Solution, SolveStatus};

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MipResult {
    /// Outcome class.
    pub status: SolveStatus,
    /// Best feasible solution found, if any.
    pub solution: Option<Solution>,
    /// Best proven lower bound on the optimal objective.
    pub best_bound: f64,
    /// Number of branch & bound nodes explored.
    pub nodes_explored: usize,
    /// Wall-clock time spent in the solver.
    pub wall_time: Duration,
}

impl MipResult {
    /// Relative gap between the incumbent and the best bound
    /// (`0.0` when proven optimal, `f64::INFINITY` without an incumbent).
    #[must_use]
    pub fn gap(&self) -> f64 {
        match &self.solution {
            Some(sol) => {
                let denom = sol.objective.abs().max(1.0);
                ((sol.objective - self.best_bound).max(0.0)) / denom
            }
            None => f64::INFINITY,
        }
    }
}

/// An open node of the branch & bound tree.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// LP bound inherited from the parent (used as the heap priority).
    estimate: f64,
    depth: usize,
}

/// Best-first ordering: smallest estimate first, deeper nodes breaking ties
/// (to find incumbents quickly).
struct OrderedNode(Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.estimate == other.0.estimate && self.0.depth == other.0.depth
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert the estimate comparison so the
        // smallest bound is popped first, preferring deeper nodes on ties.
        other
            .0
            .estimate
            .partial_cmp(&self.0.estimate)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
    }
}

/// Solves a mixed-integer linear program by branch & bound.
///
/// Returns the best incumbent found together with a proven bound. With the
/// default options the solver runs until optimality or until the time/node
/// limit is reached, in which case the status is [`SolveStatus::Feasible`]
/// (an incumbent exists) or [`SolveStatus::Unknown`].
///
/// # Errors
///
/// Returns [`SolveError::EmptyModel`] for models without variables and
/// [`SolveError::Numerical`] if the underlying simplex fails.
///
/// # Example
///
/// ```
/// use biochip_ilp::{Model, SolverOptions, solve};
///
/// // Small knapsack: maximize 6a + 5b + 4c with 2a + 3b + 4c <= 5.
/// let mut m = Model::new("knapsack");
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// let c = m.add_binary("c");
/// m.add_le("capacity", [(a, 2.0), (b, 3.0), (c, 4.0)], 5.0);
/// m.minimize([(a, -6.0), (b, -5.0), (c, -4.0)]);
/// let result = solve(&m, &SolverOptions::default())?;
/// assert_eq!(result.solution.unwrap().objective.round() as i64, -11);
/// # Ok::<(), biochip_ilp::SolveError>(())
/// ```
pub fn solve(model: &Model, options: &SolverOptions) -> Result<MipResult, SolveError> {
    // biochip-lint: allow(D2, "explicit user-facing solver time budget (--ilp-time-limit); outcomes are status-gated via SolveStatus and the deterministic list scheduler is the default")
    let start = Instant::now();
    if model.num_variables() == 0 {
        return Err(SolveError::EmptyModel);
    }

    // Initial bounds: model bounds, tightened to integers for integral vars.
    let root_bounds: Vec<(f64, f64)> = model
        .variables()
        .iter()
        .map(|v| {
            if v.kind.is_integral() {
                (v.lower.ceil(), v.upper.floor())
            } else {
                (v.lower, v.upper)
            }
        })
        .collect();

    let integral_vars = model.integral_variables();
    let tol = options.integrality_tolerance;

    let mut incumbent: Option<Solution> = None;
    let mut incumbent_objective = options.warm_start_objective.unwrap_or(f64::INFINITY);
    let mut nodes_explored = 0usize;
    let mut best_bound = f64::NEG_INFINITY;
    let mut heap = BinaryHeap::new();
    heap.push(OrderedNode(Node {
        bounds: root_bounds,
        estimate: f64::NEG_INFINITY,
        depth: 0,
    }));
    let mut saw_unbounded_root = false;
    let mut hit_limit = false;

    while let Some(OrderedNode(node)) = heap.pop() {
        if nodes_explored >= options.node_limit || start.elapsed() >= options.time_limit {
            hit_limit = true;
            // The popped node is the best remaining bound.
            best_bound = best_bound.max(node.estimate.max(f64::NEG_INFINITY));
            break;
        }
        // Prune against the incumbent before paying for an LP solve.
        if node.estimate > incumbent_objective - absolute_gap(options, incumbent_objective) {
            continue;
        }
        nodes_explored += 1;

        let outcome = solve_relaxation_with_bounds(model, &node.bounds)?;
        let relaxed = match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if node.depth == 0 {
                    saw_unbounded_root = true;
                    break;
                }
                // An unbounded child with a bounded parent means the
                // objective ray ignores the integrality restrictions; treat
                // the subtree as unbounded as well.
                saw_unbounded_root = true;
                break;
            }
            LpOutcome::Optimal(solution) => solution,
        };

        if node.depth == 0 {
            best_bound = relaxed.objective;
        }

        if relaxed.objective >= incumbent_objective - absolute_gap(options, incumbent_objective) {
            continue;
        }

        // Find the most fractional integral variable.
        let branch_var = most_fractional(&integral_vars, &relaxed.values, tol);
        match branch_var {
            None => {
                // Integral: new incumbent. Round the integral entries exactly
                // and re-evaluate the objective to remove LP round-off.
                let mut values = relaxed.values.clone();
                for &v in &integral_vars {
                    values[v.index()] = values[v.index()].round();
                }
                let objective = model.objective().evaluate(&values);
                if objective < incumbent_objective {
                    incumbent_objective = objective;
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((var, value)) => {
                let floor = value.floor();
                let mut down = node.bounds.clone();
                down[var.index()].1 = down[var.index()].1.min(floor);
                let mut up = node.bounds.clone();
                up[var.index()].0 = up[var.index()].0.max(floor + 1.0);
                for bounds in [down, up] {
                    heap.push(OrderedNode(Node {
                        bounds,
                        estimate: relaxed.objective,
                        depth: node.depth + 1,
                    }));
                }
            }
        }
    }

    let wall_time = start.elapsed();
    if saw_unbounded_root {
        return Ok(MipResult {
            status: SolveStatus::Unbounded,
            solution: None,
            best_bound: f64::NEG_INFINITY,
            nodes_explored,
            wall_time,
        });
    }

    // When the heap drained completely the incumbent is optimal; when a limit
    // was hit it is only known to be feasible.
    let exhausted = !hit_limit;
    let status = match (&incumbent, exhausted) {
        (Some(_), true) => SolveStatus::Optimal,
        (Some(_), false) => SolveStatus::Feasible,
        (None, true) => SolveStatus::Infeasible,
        (None, false) => SolveStatus::Unknown,
    };
    if exhausted {
        if let Some(sol) = &incumbent {
            best_bound = sol.objective;
        }
    }
    Ok(MipResult {
        status,
        solution: incumbent,
        best_bound,
        nodes_explored,
        wall_time,
    })
}

fn absolute_gap(options: &SolverOptions, incumbent_objective: f64) -> f64 {
    if incumbent_objective.is_finite() {
        options.mip_gap * incumbent_objective.abs().max(1.0)
    } else {
        0.0
    }
}

/// Returns the integral variable whose relaxation value is farthest from an
/// integer, or `None` when all integral variables are (near-)integral.
fn most_fractional(vars: &[VarId], values: &[f64], tol: f64) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for &v in vars {
        let x = values[v.index()];
        let frac = (x - x.round()).abs();
        if frac > tol {
            let distance_to_half = (x - x.floor() - 0.5).abs();
            match best {
                None => best = Some((v, x, distance_to_half)),
                Some((_, _, best_distance)) if distance_to_half < best_distance => {
                    best = Some((v, x, distance_to_half));
                }
                _ => {}
            }
        }
    }
    best.map(|(v, x, _)| (v, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarKind;
    use proptest::prelude::*;
    use std::time::Duration;

    fn options() -> SolverOptions {
        SolverOptions::default().with_time_limit(Duration::from_secs(5))
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 4.0);
        m.minimize([(x, -1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!((r.solution.unwrap().value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_optimum() {
        // maximize 10a + 13b + 7c + 4d, 3a + 4b + 2c + d <= 7.
        // Optimum: a + b = 23 (weight 7).
        let mut m = Model::new("knap");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.add_le("w", [(a, 3.0), (b, 4.0), (c, 2.0), (d, 1.0)], 7.0);
        m.minimize([(a, -10.0), (b, -13.0), (c, -7.0), (d, -4.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        let sol = r.solution.unwrap();
        assert_eq!(sol.objective.round() as i64, -24);
        assert!(sol.is_set(b));
        assert!(sol.is_set(c));
        assert!(sol.is_set(d));
    }

    #[test]
    fn integer_rounding_matters() {
        // maximize x + y s.t. 2x + 3y <= 12, 2x + y <= 6, integer.
        // LP optimum is fractional; ILP optimum is 5 (x=1..? enumerate):
        // feasible integer points maximizing x+y: (1,3) -> 4? check (0,4): 2*0+3*4=12 ok, 0+4=4 <=6 ok → 4.
        // (1,3): 2+9=11 ok, 2+3=5 ok → 4. (2,2): 4+6=10, 4+2=6 → 4. So optimum 4.
        let mut m = Model::new("int");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.add_le("c1", [(x, 2.0), (y, 3.0)], 12.0);
        m.add_le("c2", [(x, 2.0), (y, 1.0)], 6.0);
        m.minimize([(x, -1.0), (y, -1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert_eq!(r.solution.unwrap().objective.round() as i64, -4);
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new("inf");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_ge("impossible", [(x, 1.0), (y, 1.0)], 3.0);
        m.minimize([(x, 1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Infeasible);
        assert!(r.solution.is_none());
    }

    #[test]
    fn unbounded_model() {
        let mut m = Model::new("unb");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let b = m.add_binary("b");
        m.add_ge("link", [(x, 1.0), (b, 1.0)], 1.0);
        m.minimize([(x, -1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Unbounded);
    }

    #[test]
    fn empty_model_errors() {
        let m = Model::new("empty");
        assert_eq!(solve(&m, &options()), Err(SolveError::EmptyModel));
    }

    #[test]
    fn warm_start_does_not_cut_off_optimum() {
        let mut m = Model::new("warm");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_le("w", [(a, 1.0), (b, 1.0)], 1.0);
        m.minimize([(a, -2.0), (b, -1.0)]);
        let opts = options().with_warm_start(-1.0);
        let r = solve(&m, &opts).unwrap();
        assert_eq!(r.solution.unwrap().objective.round() as i64, -2);
    }

    #[test]
    fn node_limit_returns_unknown_or_feasible() {
        let mut m = Model::new("limited");
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("b{i}"))).collect();
        m.add_le(
            "cap",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            6.0,
        );
        m.minimize(vars.iter().map(|&v| (v, -1.0)).collect::<Vec<_>>());
        let opts = options().with_node_limit(1);
        let r = solve(&m, &opts).unwrap();
        assert!(matches!(
            r.status,
            SolveStatus::Feasible | SolveStatus::Unknown | SolveStatus::Optimal
        ));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn equality_constrained_assignment() {
        // Assign 3 tasks to 3 machines, each machine at most one task,
        // minimizing cost.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new("assign");
        let mut x = vec![vec![VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i][j] = m.add_binary(format!("x{i}{j}"));
            }
        }
        for i in 0..3 {
            m.add_eq(
                format!("task{i}"),
                (0..3).map(|j| (x[i][j], 1.0)).collect::<Vec<_>>(),
                1.0,
            );
        }
        for j in 0..3 {
            m.add_le(
                format!("machine{j}"),
                (0..3).map(|i| (x[i][j], 1.0)).collect::<Vec<_>>(),
                1.0,
            );
        }
        let mut obj = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.push((x[i][j], costs[i][j]));
            }
        }
        m.minimize(obj);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        // Optimal assignment: t0→m1 (2), t1→m2 (7), t2→m0 (3) = 12.
        assert_eq!(r.solution.unwrap().objective.round() as i64, 12);
    }

    #[test]
    fn result_gap_is_zero_at_optimality() {
        let mut m = Model::new("gap");
        let x = m.add_binary("x");
        m.minimize([(x, 1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert!(r.gap() < 1e-9);
    }

    /// Brute-force solver for tiny binary MILPs, used as the property-test
    /// oracle.
    fn brute_force(model: &Model) -> Option<f64> {
        let n = model.num_variables();
        assert!(n <= 12);
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let values: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
            if model.check_feasible(&values, 1e-9).is_none() {
                let obj = model.objective().evaluate(&values);
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn matches_brute_force_on_random_binary_programs(
            n in 2usize..7,
            num_constraints in 1usize..5,
            coeff_seed in 0u64..10_000,
        ) {
            // Deterministic pseudo-random coefficients from the seed.
            let mut state = coeff_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 21) as i64 - 10
            };
            let mut m = Model::new("random");
            let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("b{i}"))).collect();
            for c in 0..num_constraints {
                let terms: Vec<_> = vars.iter().map(|&v| (v, next() as f64)).collect();
                let rhs = next() as f64;
                if c % 2 == 0 {
                    m.add_le(format!("c{c}"), terms, rhs);
                } else {
                    m.add_ge(format!("c{c}"), terms, rhs);
                }
            }
            m.minimize(vars.iter().map(|&v| (v, next() as f64)).collect::<Vec<_>>());

            let result = solve(&m, &options()).unwrap();
            let expected = brute_force(&m);
            match expected {
                None => prop_assert_eq!(result.status, SolveStatus::Infeasible),
                Some(best) => {
                    prop_assert_eq!(result.status, SolveStatus::Optimal);
                    let got = result.solution.unwrap().objective;
                    prop_assert!((got - best).abs() < 1e-5,
                        "solver returned {}, brute force {}", got, best);
                }
            }
        }

        #[test]
        fn solutions_are_always_model_feasible(
            n in 2usize..6,
            seed in 0u64..5_000,
        ) {
            let mut state = seed.wrapping_add(17).wrapping_mul(2862933555777941757);
            let mut next = || {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 33) % 15) as i64 - 7
            };
            let mut m = Model::new("feas");
            let vars: Vec<_> = (0..n).map(|i| m.add_integer(format!("i{i}"), 0.0, 3.0)).collect();
            let terms: Vec<_> = vars.iter().map(|&v| (v, next() as f64)).collect();
            m.add_le("c", terms, 5.0);
            m.minimize(vars.iter().map(|&v| (v, next() as f64)).collect::<Vec<_>>());
            let result = solve(&m, &options()).unwrap();
            if let Some(sol) = result.solution {
                prop_assert_eq!(m.check_feasible(&sol.values, 1e-5), None);
            }
        }
    }

    #[test]
    fn integer_variables_with_fractional_bounds() {
        let mut m = Model::new("frac-bounds");
        let x = m.add_variable("x", VarKind::Integer, 0.3, 4.7);
        m.minimize([(x, -1.0)]);
        let r = solve(&m, &options()).unwrap();
        assert_eq!(r.solution.unwrap().int_value(x), 4);
    }
}
