//! Solver error type.

use std::fmt;

/// Errors produced while solving a model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The model has no variables or no finite formulation to work with.
    EmptyModel,
    /// The LP relaxation is unbounded below, so the MILP has no finite
    /// optimum (or the model is missing bounds).
    Unbounded,
    /// An internal numerical failure (e.g. the simplex lost feasibility due
    /// to ill-conditioned data).
    Numerical {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::EmptyModel => write!(f, "model has no variables"),
            SolveError::Unbounded => write!(f, "problem is unbounded below"),
            SolveError::Numerical { message } => write!(f, "numerical failure: {message}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SolveError::EmptyModel.to_string().contains("no variables"));
        assert!(SolveError::Unbounded.to_string().contains("unbounded"));
        let e = SolveError::Numerical {
            message: "pivot too small".to_owned(),
        };
        assert!(e.to_string().contains("pivot too small"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SolveError>();
    }
}
