//! A small mixed-integer linear programming (MILP) solver.
//!
//! The paper solves its scheduling/binding and architectural-synthesis
//! formulations with Gurobi. This crate is the in-repo substitute: a
//! self-contained MILP solver consisting of
//!
//! * a modelling API ([`Model`], [`LinExpr`], [`Constraint`]) for building
//!   minimization problems over continuous, integer and binary variables,
//! * a dense **two-phase primal simplex** for the LP relaxation
//!   ([`solve_relaxation`]), and
//! * a **branch & bound** search over fractional integer variables
//!   ([`solve`]) with best-first node selection, warm-start incumbents, and
//!   time/node limits mirroring the "best-effort after a time limit"
//!   semantics the paper uses for its largest assays.
//!
//! The solver is exact on the small formulations used in this workspace; it is
//! not intended to compete with industrial solvers on large models.
//!
//! # Example
//!
//! ```
//! use biochip_ilp::{Model, SolverOptions};
//!
//! // maximize x + 2y  s.t.  x + y <= 4, x,y in {0,..,3}  (as minimization)
//! let mut model = Model::new("demo");
//! let x = model.add_integer("x", 0.0, 3.0);
//! let y = model.add_integer("y", 0.0, 3.0);
//! model.add_le("cap", [(x, 1.0), (y, 1.0)], 4.0);
//! model.minimize([(x, -1.0), (y, -2.0)]);
//!
//! let result = biochip_ilp::solve(&model, &SolverOptions::default())?;
//! let sol = result.solution.expect("feasible");
//! assert_eq!(sol.value(y).round() as i64, 3);
//! assert_eq!(sol.objective.round() as i64, -7);
//! # Ok::<(), biochip_ilp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod model;
mod options;
mod simplex;
mod solution;

pub use branch_bound::{solve, MipResult};
pub use error::SolveError;
pub use model::{Constraint, ConstraintOp, LinExpr, Model, VarId, VarKind, Variable};
pub use options::SolverOptions;
pub use simplex::{solve_relaxation, LpOutcome};
pub use solution::{Solution, SolveStatus};

/// Numerical tolerance used throughout the solver for feasibility and
/// integrality tests.
pub const EPSILON: f64 = 1e-6;

/// A "big M" constant suitable for indicator-style constraints in the models
/// built by this workspace (all times and counts are far below this value).
pub const BIG_M: f64 = 1.0e6;
