//! Modelling API: variables, linear expressions, constraints, models.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Binary (a convenience alias for an integer in `[0, 1]`).
    Binary,
}

impl VarKind {
    /// Whether the variable must take an integer value.
    #[must_use]
    pub fn is_integral(self) -> bool {
        matches!(self, VarKind::Integer | VarKind::Binary)
    }
}

/// A decision variable: name, kind and bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Descriptive name (used in error messages and debugging dumps).
    pub name: String,
    /// Domain kind.
    pub kind: VarKind,
    /// Lower bound (may be 0 for the common non-negative case).
    pub lower: f64,
    /// Upper bound (`f64::INFINITY` when unbounded above).
    pub upper: f64,
}

/// A linear expression `Σ coeff_i · var_i + constant`.
///
/// Expressions can be built from pairs, added together and scaled:
///
/// ```
/// use biochip_ilp::{LinExpr, Model};
/// let mut m = Model::new("ex");
/// let x = m.add_continuous("x", 0.0, 10.0);
/// let y = m.add_continuous("y", 0.0, 10.0);
/// let expr = LinExpr::from_terms([(x, 2.0), (y, 1.0)]) + LinExpr::constant(3.0);
/// assert_eq!(expr.coefficient(x), 2.0);
/// assert_eq!(expr.constant, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    /// Terms as `(variable, coefficient)` pairs; duplicates are merged lazily
    /// by [`normalize`](Self::normalize).
    pub terms: Vec<(VarId, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The empty expression (value 0).
    #[must_use]
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// An expression consisting only of a constant.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// An expression from an iterator of `(variable, coefficient)` pairs.
    #[must_use]
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, f64)>) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant: 0.0,
        }
    }

    /// A single-variable expression with coefficient 1.
    #[must_use]
    pub fn var(v: VarId) -> Self {
        LinExpr::from_terms([(v, 1.0)])
    }

    /// Adds `coefficient * variable` to the expression.
    pub fn add_term(&mut self, variable: VarId, coefficient: f64) -> &mut Self {
        self.terms.push((variable, coefficient));
        self
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// Merges duplicate variables and removes zero coefficients.
    pub fn normalize(&mut self) {
        self.terms.sort_by_key(|(v, _)| *v);
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        merged.retain(|(_, c)| c.abs() > f64::EPSILON);
        self.terms = merged;
    }

    /// The (merged) coefficient of `variable` in this expression.
    #[must_use]
    pub fn coefficient(&self, variable: VarId) -> f64 {
        self.terms
            .iter()
            .filter(|(v, _)| *v == variable)
            .map(|(_, c)| c)
            .sum()
    }

    /// Evaluates the expression for the given assignment (indexed by variable
    /// index).
    #[must_use]
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// Returns this expression scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        LinExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c * factor)).collect(),
            constant: self.constant * factor,
        }
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<f64> for LinExpr {
    fn from(value: f64) -> Self {
        LinExpr::constant(value)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: f64) -> LinExpr {
        self.scaled(rhs)
    }
}

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Descriptive name.
    pub name: String,
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Whether the constraint is satisfied (within `tol`) by the assignment.
    #[must_use]
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs + tol,
            ConstraintOp::Ge => lhs >= self.rhs - tol,
            ConstraintOp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A minimization MILP model.
///
/// All problems are stated as minimization; negate the objective coefficients
/// to maximize.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    name: String,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Model {
    /// Creates an empty model.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a variable with explicit kind and bounds, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_variable(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(lower <= upper, "lower bound must not exceed upper bound");
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
        });
        id
    }

    /// Adds a continuous variable.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_variable(name, VarKind::Continuous, lower, upper)
    }

    /// Adds an integer variable.
    pub fn add_integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_variable(name, VarKind::Integer, lower, upper)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_variable(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a constraint built from an expression.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        op: ConstraintOp,
        rhs: f64,
    ) {
        let mut expr = expr.into();
        expr.normalize();
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            op,
            rhs,
        });
    }

    /// Adds `Σ terms <= rhs`.
    pub fn add_le(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        rhs: f64,
    ) {
        self.add_constraint(name, LinExpr::from_terms(terms), ConstraintOp::Le, rhs);
    }

    /// Adds `Σ terms >= rhs`.
    pub fn add_ge(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        rhs: f64,
    ) {
        self.add_constraint(name, LinExpr::from_terms(terms), ConstraintOp::Ge, rhs);
    }

    /// Adds `Σ terms == rhs`.
    pub fn add_eq(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        rhs: f64,
    ) {
        self.add_constraint(name, LinExpr::from_terms(terms), ConstraintOp::Eq, rhs);
    }

    /// Sets the minimization objective from `(variable, coefficient)` pairs.
    pub fn minimize(&mut self, terms: impl IntoIterator<Item = (VarId, f64)>) {
        let mut expr = LinExpr::from_terms(terms);
        expr.normalize();
        self.objective = expr;
    }

    /// Sets the minimization objective from a full expression.
    pub fn minimize_expr(&mut self, expr: impl Into<LinExpr>) {
        let mut expr = expr.into();
        expr.normalize();
        self.objective = expr;
    }

    /// The objective expression.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// All variables.
    #[must_use]
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    #[must_use]
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of variables.
    #[must_use]
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of all integral (integer or binary) variables.
    #[must_use]
    pub fn integral_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integral())
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Checks an assignment against every constraint, bound and integrality
    /// requirement; returns the name of the first violated item.
    #[must_use]
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Option<String> {
        for (i, var) in self.variables.iter().enumerate() {
            let x = values.get(i).copied().unwrap_or(0.0);
            if x < var.lower - tol || x > var.upper + tol {
                return Some(format!("bound of {}", var.name));
            }
            if var.kind.is_integral() && (x - x.round()).abs() > tol {
                return Some(format!("integrality of {}", var.name));
            }
        }
        for c in &self.constraints {
            if !c.is_satisfied(values, tol) {
                return Some(c.name.clone());
            }
        }
        None
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model `{}`: {} variables, {} constraints",
            self.name,
            self.num_variables(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_building_and_evaluation() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        let mut e = LinExpr::new();
        e.add_term(x, 2.0).add_term(y, 3.0).add_constant(1.0);
        assert_eq!(e.evaluate(&[2.0, 1.0]), 2.0 * 2.0 + 3.0 + 1.0);
        let sum = e.clone() + LinExpr::var(x);
        assert_eq!(sum.coefficient(x), 3.0);
        let scaled = e.scaled(2.0);
        assert_eq!(scaled.constant, 2.0);
        assert_eq!(scaled.coefficient(y), 6.0);
    }

    #[test]
    fn normalize_merges_and_drops_zeros() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        let mut e = LinExpr::from_terms([(x, 1.0), (y, 2.0), (x, -1.0), (y, 1.0)]);
        e.normalize();
        assert_eq!(e.terms, vec![(y, 3.0)]);
    }

    #[test]
    fn constraint_satisfaction() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_le("c", [(x, 1.0)], 5.0);
        let c = &m.constraints()[0];
        assert!(c.is_satisfied(&[5.0], 1e-9));
        assert!(!c.is_satisfied(&[5.1], 1e-9));
    }

    #[test]
    fn check_feasible_reports_violations() {
        let mut m = Model::new("t");
        let x = m.add_binary("x");
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_ge("cover", [(x, 1.0), (y, 1.0)], 1.5);
        assert_eq!(m.check_feasible(&[1.0, 0.5], 1e-6), None);
        assert_eq!(
            m.check_feasible(&[0.5, 1.0], 1e-6),
            Some("integrality of x".to_owned())
        );
        assert_eq!(
            m.check_feasible(&[0.0, 3.0], 1e-6),
            Some("bound of y".to_owned())
        );
        assert_eq!(
            m.check_feasible(&[0.0, 1.0], 1e-6),
            Some("cover".to_owned())
        );
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_bounds_panic() {
        let mut m = Model::new("t");
        let _ = m.add_continuous("x", 1.0, 0.0);
    }

    #[test]
    fn integral_variable_listing() {
        let mut m = Model::new("t");
        let _x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        let i = m.add_integer("i", 0.0, 5.0);
        assert_eq!(m.integral_variables(), vec![b, i]);
    }

    #[test]
    fn display_contains_counts() {
        let mut m = Model::new("counts");
        let x = m.add_binary("x");
        m.add_le("c", [(x, 1.0)], 1.0);
        let shown = m.to_string();
        assert!(shown.contains("1 variables"));
        assert!(shown.contains("1 constraints"));
    }
}
