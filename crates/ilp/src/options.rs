//! Solver options.

use std::time::Duration;

/// Options controlling the branch & bound search.
///
/// The defaults are tuned for the small scheduling models built by this
/// workspace: a few seconds of wall time and a bounded node count, returning
/// the best incumbent found so far when a limit is hit (the same best-effort
/// semantics the paper uses with its 30-minute Gurobi limit).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Maximum number of branch & bound nodes to explore.
    pub node_limit: usize,
    /// Relative optimality gap at which the search stops
    /// (`|incumbent - bound| <= gap * max(1, |incumbent|)`).
    pub mip_gap: f64,
    /// Known feasible objective value used to prune the search from the
    /// start (for example from a heuristic schedule).
    pub warm_start_objective: Option<f64>,
    /// Absolute integrality tolerance.
    pub integrality_tolerance: f64,
}

impl SolverOptions {
    /// Default options (10 s, 200 000 nodes, 10⁻⁶ gap).
    #[must_use]
    pub fn new() -> Self {
        SolverOptions {
            time_limit: Duration::from_secs(10),
            node_limit: 200_000,
            mip_gap: 1e-6,
            warm_start_objective: None,
            integrality_tolerance: 1e-6,
        }
    }

    /// Sets the wall-clock limit.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Sets the node limit.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the relative MIP gap.
    #[must_use]
    pub fn with_mip_gap(mut self, gap: f64) -> Self {
        self.mip_gap = gap.max(0.0);
        self
    }

    /// Provides a warm-start incumbent objective value for pruning.
    #[must_use]
    pub fn with_warm_start(mut self, objective: f64) -> Self {
        self.warm_start_objective = Some(objective);
        self
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_setters() {
        let o = SolverOptions::new()
            .with_time_limit(Duration::from_millis(500))
            .with_node_limit(10)
            .with_mip_gap(0.05)
            .with_warm_start(42.0);
        assert_eq!(o.time_limit, Duration::from_millis(500));
        assert_eq!(o.node_limit, 10);
        assert_eq!(o.mip_gap, 0.05);
        assert_eq!(o.warm_start_objective, Some(42.0));
    }

    #[test]
    fn negative_gap_is_clamped() {
        let o = SolverOptions::new().with_mip_gap(-1.0);
        assert_eq!(o.mip_gap, 0.0);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(SolverOptions::default(), SolverOptions::new());
    }
}
