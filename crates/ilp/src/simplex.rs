//! Dense two-phase primal simplex for the LP relaxation.
//!
//! The solver converts the model into standard form (shifted non-negative
//! variables, equality rows with slack/surplus and artificial variables) and
//! runs the classical two-phase primal simplex on a dense tableau. Dantzig
//! pricing is used initially and Bland's rule is enabled after an iteration
//! threshold to guarantee termination.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model};
use crate::solution::Solution;
use crate::EPSILON;

/// Result of solving an LP relaxation.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic feasible solution was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// The optimal solution, if any.
    #[must_use]
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Solves the LP relaxation of `model` (integrality requirements dropped),
/// using the variable bounds stored in the model.
///
/// # Errors
///
/// Returns [`SolveError::EmptyModel`] for a model without variables,
/// [`SolveError::Numerical`] if the simplex fails to converge and
/// [`SolveError::Numerical`] for variables with non-finite lower bounds
/// (the workspace's formulations always use finite lower bounds).
pub fn solve_relaxation(model: &Model) -> Result<LpOutcome, SolveError> {
    let bounds: Vec<(f64, f64)> = model
        .variables()
        .iter()
        .map(|v| (v.lower, v.upper))
        .collect();
    solve_relaxation_with_bounds(model, &bounds)
}

/// Solves the LP relaxation with per-variable bound overrides (used by branch
/// & bound to implement branching decisions).
///
/// # Errors
///
/// See [`solve_relaxation`].
pub fn solve_relaxation_with_bounds(
    model: &Model,
    bounds: &[(f64, f64)],
) -> Result<LpOutcome, SolveError> {
    if model.num_variables() == 0 {
        return Err(SolveError::EmptyModel);
    }
    debug_assert_eq!(bounds.len(), model.num_variables());
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        if !lo.is_finite() {
            return Err(SolveError::Numerical {
                message: format!(
                    "variable `{}` has a non-finite lower bound; shift the model",
                    model.variable(crate::VarId(i)).name
                ),
            });
        }
        if lo > hi + EPSILON {
            // Empty domain introduced by branching: trivially infeasible.
            return Ok(LpOutcome::Infeasible);
        }
    }

    let standard = StandardForm::build(model, bounds);
    let mut tableau = Tableau::new(&standard);
    match tableau.run_two_phase()? {
        TableauOutcome::Infeasible => Ok(LpOutcome::Infeasible),
        TableauOutcome::Unbounded => Ok(LpOutcome::Unbounded),
        TableauOutcome::Optimal => {
            let shifted = tableau.primal_values(standard.num_structural);
            let values: Vec<f64> = shifted
                .iter()
                .zip(bounds.iter())
                .map(|(x, &(lo, _))| x + lo)
                .collect();
            let objective = model.objective().evaluate(&values);
            Ok(LpOutcome::Optimal(Solution { values, objective }))
        }
    }
}

/// The model rewritten over shifted non-negative variables with equality rows.
struct StandardForm {
    /// Number of structural (original) variables.
    num_structural: usize,
    /// Equality rows: coefficients over structural variables.
    rows: Vec<Vec<f64>>,
    /// Right-hand sides of the equality rows (before sign normalization).
    rhs: Vec<f64>,
    /// Per row: +1 for a slack (`<=`), -1 for a surplus (`>=`), 0 for none (`=`).
    slack_sign: Vec<f64>,
    /// Objective coefficients over structural variables.
    objective: Vec<f64>,
}

impl StandardForm {
    fn build(model: &Model, bounds: &[(f64, f64)]) -> Self {
        let n = model.num_variables();
        let mut rows = Vec::new();
        let mut rhs = Vec::new();
        let mut slack_sign = Vec::new();

        // Model constraints, shifted by the lower bounds: for x = lo + x',
        // Σ a_j x_j op b  becomes  Σ a_j x'_j op (b - Σ a_j lo_j).
        for constraint in model.constraints() {
            let mut coeffs = vec![0.0; n];
            let mut shift = 0.0;
            for &(v, c) in &constraint.expr.terms {
                coeffs[v.index()] += c;
                shift += c * bounds[v.index()].0;
            }
            let b = constraint.rhs - constraint.expr.constant - shift;
            let sign = match constraint.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => 0.0,
            };
            rows.push(coeffs);
            rhs.push(b);
            slack_sign.push(sign);
        }

        // Finite upper bounds become x'_j <= hi - lo rows.
        for (j, &(lo, hi)) in bounds.iter().enumerate() {
            if hi.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[j] = 1.0;
                rows.push(coeffs);
                rhs.push(hi - lo);
                slack_sign.push(1.0);
            }
        }

        // Objective over shifted variables (the constant part is re-added by
        // evaluating the original objective on the unshifted values later).
        let mut objective = vec![0.0; n];
        for &(v, c) in &model.objective().terms {
            objective[v.index()] += c;
        }

        StandardForm {
            num_structural: n,
            rows,
            rhs,
            slack_sign,
            objective,
        }
    }
}

enum TableauOutcome {
    Optimal,
    Infeasible,
    Unbounded,
}

/// Dense simplex tableau with an explicit objective row.
struct Tableau {
    /// `m x (n_total + 1)` matrix; the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `n_total + 1`.
    objective: Vec<f64>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns excluding the RHS.
    n_total: usize,
    /// Column index at which artificial variables start.
    artificial_start: usize,
    /// Original (phase 2) cost of every column.
    costs: Vec<f64>,
}

impl Tableau {
    fn new(form: &StandardForm) -> Self {
        let m = form.rows.len();
        let n = form.num_structural;
        let num_slack = form.slack_sign.iter().filter(|s| **s != 0.0).count();

        // Column layout: [structural | slacks/surpluses | artificials | rhs].
        // Every row receives an artificial unless its slack can serve as the
        // initial basic variable (slack sign +1 and rhs >= 0 after sign fix).
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut slack_col = n;
        let artificial_start = n + num_slack;
        let mut artificial_col = artificial_start;

        // First pass: normalize signs so every rhs is non-negative and place
        // slack columns.
        let mut pending_artificial = Vec::new();
        for (i, coeffs) in form.rows.iter().enumerate() {
            let mut row = vec![0.0; artificial_start];
            row[..n].copy_from_slice(coeffs);
            let mut b = form.rhs[i];
            let mut slack = form.slack_sign[i];
            if slack != 0.0 {
                row[slack_col] = slack;
            }
            if b < 0.0 {
                for value in row.iter_mut() {
                    *value = -*value;
                }
                b = -b;
                slack = -slack;
            }
            if slack > 0.0 {
                basis[i] = slack_col;
            } else {
                pending_artificial.push(i);
            }
            if form.slack_sign[i] != 0.0 {
                slack_col += 1;
            }
            row.push(b);
            rows.push(row);
        }

        let num_artificial = pending_artificial.len();
        let n_total = artificial_start + num_artificial;
        for row in &mut rows {
            let b = row.pop().expect("rhs present");
            row.resize(n_total, 0.0);
            row.push(b);
        }
        for &i in &pending_artificial {
            rows[i][artificial_col] = 1.0;
            basis[i] = artificial_col;
            artificial_col += 1;
        }

        let mut costs = vec![0.0; n_total];
        costs[..n].copy_from_slice(&form.objective);

        Tableau {
            rows,
            objective: vec![0.0; n_total + 1],
            basis,
            n_total,
            artificial_start,
            costs,
        }
    }

    fn run_two_phase(&mut self) -> Result<TableauOutcome, SolveError> {
        // Phase 1: minimize the sum of artificial variables.
        if self.n_total > self.artificial_start {
            let mut phase1 = vec![0.0; self.n_total + 1];
            for cell in &mut phase1[self.artificial_start..self.n_total] {
                *cell = 1.0;
            }
            self.objective = phase1;
            self.price_out_basis();
            match self.pivot_until_optimal()? {
                TableauOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by zero; this cannot
                    // happen with consistent data.
                    return Err(SolveError::Numerical {
                        message: "phase-1 simplex reported an unbounded objective".to_owned(),
                    });
                }
                TableauOutcome::Infeasible | TableauOutcome::Optimal => {}
            }
            let infeasibility = -self.objective[self.n_total];
            if infeasibility > 1e-6 {
                return Ok(TableauOutcome::Infeasible);
            }
            self.drive_out_artificials();
        }

        // Phase 2: minimize the real objective.
        let mut phase2 = vec![0.0; self.n_total + 1];
        phase2[..self.n_total].copy_from_slice(&self.costs);
        self.objective = phase2;
        self.price_out_basis();
        self.pivot_until_optimal()
    }

    /// Makes the objective row consistent with the current basis (reduced
    /// costs of basic columns become zero).
    fn price_out_basis(&mut self) {
        for (row_idx, &basic_col) in self.basis.iter().enumerate() {
            let cost = self.objective[basic_col];
            if cost.abs() > f64::EPSILON {
                for col in 0..=self.n_total {
                    self.objective[col] -= cost * self.rows[row_idx][col];
                }
            }
        }
    }

    /// Removes artificial variables from the basis after phase 1 when
    /// possible (degenerate rows keep a zero-valued artificial, which is
    /// harmless because its column is never selected again).
    fn drive_out_artificials(&mut self) {
        for row_idx in 0..self.rows.len() {
            if self.basis[row_idx] < self.artificial_start {
                continue;
            }
            let pivot_col =
                (0..self.artificial_start).find(|&col| self.rows[row_idx][col].abs() > 1e-9);
            if let Some(col) = pivot_col {
                self.pivot(row_idx, col);
            }
        }
    }

    fn pivot_until_optimal(&mut self) -> Result<TableauOutcome, SolveError> {
        let max_iterations = 200 * (self.rows.len() + self.n_total).max(50);
        let bland_threshold = 50 * (self.rows.len() + self.n_total).max(50);
        for iteration in 0..max_iterations {
            let use_bland = iteration > bland_threshold;
            let Some(entering) = self.choose_entering(use_bland) else {
                return Ok(TableauOutcome::Optimal);
            };
            let Some(leaving) = self.choose_leaving(entering, use_bland) else {
                return Ok(TableauOutcome::Unbounded);
            };
            self.pivot(leaving, entering);
        }
        Err(SolveError::Numerical {
            message: "simplex did not converge within the iteration limit".to_owned(),
        })
    }

    fn choose_entering(&self, bland: bool) -> Option<usize> {
        // Artificial columns never re-enter the basis: once driven out after
        // phase 1 they must stay at zero, otherwise phase 2 could return a
        // point violating the original constraints.
        let candidates = 0..self.artificial_start;
        if bland {
            candidates.clone().find(|&c| self.objective[c] < -EPSILON)
        } else {
            let mut best = None;
            let mut best_value = -EPSILON;
            for c in candidates {
                if self.objective[c] < best_value {
                    best_value = self.objective[c];
                    best = Some(c);
                }
            }
            best
        }
    }

    fn choose_leaving(&self, entering: usize, bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (row_idx, row) in self.rows.iter().enumerate() {
            let coeff = row[entering];
            if coeff > EPSILON {
                let ratio = row[self.n_total] / coeff;
                match best {
                    None => best = Some((row_idx, ratio)),
                    Some((best_row, best_ratio)) => {
                        let better = ratio < best_ratio - 1e-12
                            || ((ratio - best_ratio).abs() <= 1e-12
                                && if bland {
                                    self.basis[row_idx] < self.basis[best_row]
                                } else {
                                    row_idx < best_row
                                });
                        if better {
                            best = Some((row_idx, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(row, _)| row)
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.rows[pivot_row][pivot_col];
        debug_assert!(pivot_value.abs() > 1e-12, "pivot on a zero element");
        for value in &mut self.rows[pivot_row] {
            *value /= pivot_value;
        }
        for row_idx in 0..self.rows.len() {
            if row_idx == pivot_row {
                continue;
            }
            let factor = self.rows[row_idx][pivot_col];
            if factor.abs() > 1e-12 {
                for col in 0..=self.n_total {
                    self.rows[row_idx][col] -= factor * self.rows[pivot_row][col];
                }
            }
        }
        let factor = self.objective[pivot_col];
        if factor.abs() > 1e-12 {
            for col in 0..=self.n_total {
                self.objective[col] -= factor * self.rows[pivot_row][col];
            }
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Values of the first `count` (structural, shifted) variables.
    fn primal_values(&self, count: usize) -> Vec<f64> {
        let mut values = vec![0.0; count];
        for (row_idx, &basic_col) in self.basis.iter().enumerate() {
            if basic_col < count {
                values[basic_col] = self.rows[row_idx][self.n_total];
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_maximization_as_minimization() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0
        // optimum at (4, 0) with value 12.
        let mut m = Model::new("lp1");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_le("c1", [(x, 1.0), (y, 1.0)], 4.0);
        m.add_le("c2", [(x, 1.0), (y, 3.0)], 6.0);
        m.minimize([(x, -3.0), (y, -2.0)]);
        let out = solve_relaxation(&m).unwrap();
        let sol = out.solution().expect("optimal");
        assert_close(sol.objective, -12.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn handles_ge_and_eq_constraints() {
        // minimize 2x + 3y s.t. x + y = 10, x >= 3, y >= 2.
        let mut m = Model::new("lp2");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_eq("sum", [(x, 1.0), (y, 1.0)], 10.0);
        m.add_ge("xmin", [(x, 1.0)], 3.0);
        m.add_ge("ymin", [(y, 1.0)], 2.0);
        m.minimize([(x, 2.0), (y, 3.0)]);
        let out = solve_relaxation(&m).unwrap();
        let sol = out.solution().expect("optimal");
        assert_close(sol.value(x), 8.0);
        assert_close(sol.value(y), 2.0);
        assert_close(sol.objective, 22.0);
    }

    #[test]
    fn respects_variable_bounds() {
        // minimize -x with x in [0, 7].
        let mut m = Model::new("lp3");
        let x = m.add_continuous("x", 0.0, 7.0);
        m.minimize([(x, -1.0)]);
        let out = solve_relaxation(&m).unwrap();
        let sol = out.solution().expect("optimal");
        assert_close(sol.value(x), 7.0);
    }

    #[test]
    fn shifted_lower_bounds() {
        // minimize x + y with x >= 2.5, y >= 1.5 and x + y >= 5.
        let mut m = Model::new("lp4");
        let x = m.add_continuous("x", 2.5, f64::INFINITY);
        let y = m.add_continuous("y", 1.5, f64::INFINITY);
        m.add_ge("sum", [(x, 1.0), (y, 1.0)], 5.0);
        m.minimize([(x, 1.0), (y, 1.0)]);
        let out = solve_relaxation(&m).unwrap();
        let sol = out.solution().expect("optimal");
        assert_close(sol.objective, 5.0);
        assert!(sol.value(x) >= 2.5 - 1e-9);
        assert!(sol.value(y) >= 1.5 - 1e-9);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("inf");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge("impossible", [(x, 1.0)], 2.0);
        m.minimize([(x, 1.0)]);
        assert_eq!(solve_relaxation(&m).unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("unb");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.minimize([(x, -1.0)]);
        assert_eq!(solve_relaxation(&m).unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn empty_model_is_an_error() {
        let m = Model::new("empty");
        assert_eq!(solve_relaxation(&m), Err(SolveError::EmptyModel));
    }

    #[test]
    fn branching_bounds_override_model_bounds() {
        let mut m = Model::new("b");
        let x = m.add_continuous("x", 0.0, 10.0);
        m.minimize([(x, -1.0)]);
        let out = solve_relaxation_with_bounds(&m, &[(0.0, 3.0)]).unwrap();
        assert_close(out.solution().unwrap().value(x), 3.0);
        // An empty domain created by branching is infeasible, not an error.
        let out = solve_relaxation_with_bounds(&m, &[(4.0, 3.0)]).unwrap();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; ensures the Bland fallback terminates.
        let mut m = Model::new("degenerate");
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY);
        m.add_le("c1", [(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le("c2", [(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le("c3", [(x1, 1.0)], 1.0);
        m.minimize([(x1, -10.0), (x2, 57.0), (x3, 9.0)]);
        let out = solve_relaxation(&m).unwrap();
        assert!(out.solution().is_some());
    }

    #[test]
    fn equality_with_negative_rhs() {
        // x - y = -2, minimize x + y, x,y >= 0 → x = 0, y = 2.
        let mut m = Model::new("negrhs");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_eq("diff", [(x, 1.0), (y, -1.0)], -2.0);
        m.minimize([(x, 1.0), (y, 1.0)]);
        let sol = solve_relaxation(&m).unwrap();
        let sol = sol.solution().expect("optimal");
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn objective_constant_is_preserved() {
        let mut m = Model::new("const");
        let x = m.add_continuous("x", 0.0, 5.0);
        let mut obj = crate::LinExpr::from_terms([(x, 1.0)]);
        obj.add_constant(100.0);
        m.minimize_expr(obj);
        m.add_ge("floor", [(x, 1.0)], 2.0);
        let out = solve_relaxation(&m).unwrap();
        assert_close(out.solution().unwrap().objective, 102.0);
    }
}
