//! Solution and status types.

use crate::model::VarId;

/// Outcome class of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// The returned solution is proven optimal (within the MIP gap).
    Optimal,
    /// A feasible solution was found but the search stopped at a time or
    /// node limit before proving optimality.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded below.
    Unbounded,
    /// The search hit a time or node limit before finding any feasible
    /// solution; feasibility is unknown.
    Unknown,
}

impl SolveStatus {
    /// Whether a usable solution accompanies this status.
    #[must_use]
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// A feasible assignment of values to all model variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of every variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Objective value of this assignment.
    pub objective: f64,
}

impl Solution {
    /// The value of a variable in this solution.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// The value of a variable rounded to the nearest integer (convenient
    /// for binary/integer variables).
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to the solved model.
    #[must_use]
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// Whether a binary variable is set (value ≥ 0.5).
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to the solved model.
    #[must_use]
    pub fn is_set(&self, var: VarId) -> bool {
        self.value(var) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
    }

    #[test]
    fn solution_accessors() {
        let s = Solution {
            values: vec![0.9999, 0.0001, 2.5],
            objective: 7.0,
        };
        assert_eq!(s.int_value(VarId(0)), 1);
        assert!(s.is_set(VarId(0)));
        assert!(!s.is_set(VarId(1)));
        assert!((s.value(VarId(2)) - 2.5).abs() < 1e-12);
    }
}
