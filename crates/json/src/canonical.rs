//! Canonical form and content hashing of JSON values.
//!
//! The server's result cache is keyed by *what* was submitted, not by the
//! bytes that happened to arrive: two submissions that serialize the same
//! `(problem, config)` pair must map to the same cache entry even if their
//! object keys were ordered differently or the documents were formatted
//! differently. [`canonicalize`] produces the canonical form (object keys
//! sorted recursively) and [`canonical_hash`] folds it into a 64-bit FNV-1a
//! digest without materializing the canonical text.

use crate::{Json, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher (dependency-free; `std::hash` hashers
/// are not guaranteed stable across releases, cache keys must be).
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Returns the canonical form of a JSON value: object keys sorted
/// (recursively), everything else unchanged. Arrays keep their order —
/// JSON arrays are sequences, their order is meaning.
#[must_use]
pub fn canonicalize(value: &Json) -> Json {
    match value {
        Json::Object(pairs) => {
            let mut sorted: Vec<(String, Json)> = pairs
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|(a, _), (b, _)| a.cmp(b));
            Json::Object(sorted)
        }
        Json::Array(items) => Json::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

fn hash_into(value: &Json, hasher: &mut Fnv) {
    // Each kind gets a distinct tag byte so that e.g. the string "1" and the
    // number 1 cannot collide structurally.
    match value {
        Json::Null => hasher.write(b"n"),
        Json::Bool(false) => hasher.write(b"f"),
        Json::Bool(true) => hasher.write(b"t"),
        Json::Number(n) => {
            hasher.write(b"#");
            // Hash the printed form, not the raw bits: the printer is the
            // single source of truth for number identity (it collapses
            // 1.0 and 1, and maps non-finite values to null).
            hasher.write(Json::Number(*n).to_compact().as_bytes());
        }
        Json::String(s) => {
            hasher.write(b"\"");
            hasher.write(s.as_bytes());
            hasher.write(&[0]);
        }
        Json::Array(items) => {
            hasher.write(b"[");
            for item in items {
                hash_into(item, hasher);
            }
            hasher.write(b"]");
        }
        Json::Object(pairs) => {
            let mut keys: Vec<usize> = (0..pairs.len()).collect();
            keys.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
            hasher.write(b"{");
            for i in keys {
                let (k, v) = &pairs[i];
                hasher.write(b"\"");
                hasher.write(k.as_bytes());
                hasher.write(&[0]);
                hash_into(v, hasher);
            }
            hasher.write(b"}");
        }
    }
}

/// Hashes the canonical form of a JSON value (key order does not matter).
#[must_use]
pub fn canonical_hash(value: &Json) -> u64 {
    let mut hasher = Fnv::new();
    hash_into(value, &mut hasher);
    hasher.0
}

/// Serializes a value and hashes its canonical JSON form.
///
/// This is the content address used by the result cache: equal values (in
/// the JSON interchange sense) get equal keys regardless of field order or
/// formatting.
#[must_use]
pub fn content_key<T: Serialize + ?Sized>(value: &T) -> u64 {
    canonical_hash(&value.to_json())
}

/// [`content_key`] rendered as the fixed-width hex string used in URLs,
/// reports and logs.
#[must_use]
pub fn content_key_hex<T: Serialize + ?Sized>(value: &T) -> String {
    format!("{:016x}", content_key(value))
}

/// Derives a stage key by chaining an upstream key with a stage label and
/// the stage-relevant payload (typically the slice of the configuration the
/// stage consumes).
///
/// This is the per-stage refinement of [`content_key`]: the full pipeline
/// identity `schedule key → placement key → route key` is built by folding
/// each stage's config slice onto the key of the stage before it, so an
/// edit that only touches a downstream slice leaves every upstream key —
/// and therefore every upstream cached artifact — intact.
///
/// The parent key, the label and the payload are all domain-separated in
/// the digest: `chain_key(k, "a", x)` never collides structurally with
/// `chain_key(k, "ax", ...)` or with a differently parented chain.
#[must_use]
pub fn chain_key(parent: u64, stage: &str, payload: &Json) -> u64 {
    let mut hasher = Fnv::new();
    hasher.write(&parent.to_be_bytes());
    hasher.write(b">");
    hasher.write(stage.as_bytes());
    hasher.write(&[0]);
    hash_into(payload, &mut hasher);
    hasher.0
}

/// A raw 64-bit key rendered as the fixed-width hex string used in URLs,
/// reports and logs (the same format as [`content_key_hex`]).
#[must_use]
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn key_order_does_not_change_the_hash() {
        let a = parse(r#"{"x": 1, "y": {"b": 2, "a": 3}}"#).unwrap();
        let b = parse(r#"{"y": {"a": 3, "b": 2}, "x": 1}"#).unwrap();
        assert_ne!(a, b);
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn formatting_does_not_change_the_hash() {
        let a = parse("{\"x\": [1, 2.0, true]}").unwrap();
        let b = parse("{ \"x\" : [ 1.0,\n 2, true ] }").unwrap();
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn different_values_get_different_hashes() {
        let base = parse(r#"{"x": 1, "y": 2}"#).unwrap();
        for other in [
            r#"{"x": 1, "y": 3}"#,
            r#"{"x": 1}"#,
            r#"{"x": 1, "y": "2"}"#,
            r#"{"x": 1, "y": null}"#,
            r#"[{"x": 1, "y": 2}]"#,
        ] {
            let other = parse(other).unwrap();
            assert_ne!(
                canonical_hash(&base),
                canonical_hash(&other),
                "{}",
                other.to_compact()
            );
        }
    }

    #[test]
    fn array_order_still_matters() {
        let a = parse("[1, 2]").unwrap();
        let b = parse("[2, 1]").unwrap();
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn structural_tags_prevent_flattening_collisions() {
        // Without per-kind tags these would hash the same byte stream.
        let a = parse(r#"["ab"]"#).unwrap();
        let b = parse(r#"["a", "b"]"#).unwrap();
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
        assert_ne!(
            canonical_hash(&parse("\"1\"").unwrap()),
            canonical_hash(&parse("1").unwrap())
        );
    }

    #[test]
    fn chain_key_separates_parent_stage_and_payload() {
        let payload = parse(r#"{"moves": 2000}"#).unwrap();
        let base = chain_key(1, "placement", &payload);
        // A different parent, stage or payload each changes the key.
        assert_ne!(base, chain_key(2, "placement", &payload));
        assert_ne!(base, chain_key(1, "route", &payload));
        assert_ne!(base, chain_key(1, "placement", &parse("{}").unwrap()));
        // Label/payload boundaries are domain-separated: shifting bytes
        // between the stage name and a string payload cannot collide.
        assert_ne!(
            chain_key(0, "ab", &parse("\"c\"").unwrap()),
            chain_key(0, "a", &parse("\"bc\"").unwrap())
        );
        // Payload key order is canonicalized like content_key.
        assert_eq!(
            chain_key(7, "s", &parse(r#"{"a": 1, "b": 2}"#).unwrap()),
            chain_key(7, "s", &parse(r#"{"b": 2, "a": 1}"#).unwrap())
        );
    }

    #[test]
    fn key_hex_matches_content_key_hex_format() {
        let value = parse(r#"{"assay": "PCR"}"#).unwrap();
        assert_eq!(key_hex(canonical_hash(&value)), content_key_hex(&value));
        assert_eq!(key_hex(0).len(), 16);
        assert_eq!(key_hex(0xdead_beef), "00000000deadbeef");
    }

    #[test]
    fn content_key_hex_is_stable_and_fixed_width() {
        let key = content_key_hex(&parse(r#"{"assay": "PCR"}"#).unwrap());
        assert_eq!(key.len(), 16);
        assert_eq!(
            key,
            content_key_hex(&parse(r#"{ "assay" : "PCR" }"#).unwrap())
        );
    }
}
