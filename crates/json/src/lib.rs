//! A self-contained JSON interchange layer for the biochip workspace.
//!
//! The build environment of this workspace is fully offline, so the usual
//! `serde`/`serde_json` pair is not available. This crate is the in-repo
//! substitute: a [`Json`] value type with a strict parser and compact/pretty
//! printers, plus serde-style [`Serialize`]/[`Deserialize`] traits and the
//! [`impl_json_struct!`]/[`impl_json_enum!`] macros that stand in for
//! `#[derive(Serialize, Deserialize)]` on the workspace's core types.
//!
//! Every pipeline stage (assay → schedule → architecture → layout →
//! execution report) serializes through this crate, which defines the
//! on-disk contracts of the `biochip` CLI.
//!
//! # Example
//!
//! ```
//! use biochip_json::{from_str, to_string_pretty, Deserialize, Json, Serialize};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point {
//!     x: u64,
//!     y: u64,
//! }
//! biochip_json::impl_json_struct!(Point { x, y });
//!
//! let p = Point { x: 3, y: 4 };
//! let text = to_string_pretty(&p);
//! let back: Point = from_str(&text)?;
//! assert_eq!(p, back);
//! # Ok::<(), biochip_json::JsonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
mod parse;
mod print;
mod traits;
mod value;

pub use canonical::{
    canonical_hash, canonicalize, chain_key, content_key, content_key_hex, key_hex,
};
pub use parse::parse;
pub use traits::{Deserialize, Serialize};
pub use value::{Json, JsonError};

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes a value to a pretty-printed JSON string (two-space indent,
/// trailing newline).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = value.to_json().to_pretty();
    out.push('\n');
    out
}

/// Parses a JSON document and deserializes it into `T`.
///
/// # Errors
///
/// Returns a [`JsonError`] if the text is not valid JSON or does not match
/// the shape `T` expects.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, JsonError> {
    let value = parse(text)?;
    T::from_json(&value)
}
