//! A strict recursive-descent JSON parser.

use crate::{Json, JsonError};

/// Parses a complete JSON document.
///
/// The full RFC 8259 grammar is supported (nested values, escapes including
/// `\uXXXX` with surrogate pairs, scientific-notation numbers). Trailing
/// non-whitespace input is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] with a line/column position on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Maximum nesting depth, mirroring serde_json's default recursion limit.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        JsonError::new(format!("{message} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        let value = self.value_inner();
        self.depth -= 1;
        value
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate escape"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.error("invalid code point"))?
                        } else {
                            char::from_u32(unit)
                                .ok_or_else(|| self.error("unpaired surrogate escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence is valid.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Number(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap(), &Json::String("x".into()));
        let a = v.get("a").unwrap().expect_array().unwrap();
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1].get("b").unwrap(), &Json::Null);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::String("é".into()));
        assert_eq!(
            parse(r#""\ud83e\udde0""#).unwrap(),
            Json::String("🧠".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "\"\\x\"", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("128"), "{err}");
        // Just inside the limit parses fine.
        let ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("{\n  \"a\": !\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
