//! Compact and pretty JSON printers.

use std::fmt::Write as _;

use crate::Json;

impl Json {
    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders the value with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => write_number(out, *n),
        Json::String(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_round_trips() {
        let text = r#"{"name":"pcr","ops":[1,2,3],"ok":true,"ratio":0.5,"none":null}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.to_compact(), text);
    }

    #[test]
    fn pretty_round_trips() {
        let value = Json::object([
            ("a", Json::array([Json::Number(1.0), Json::Bool(false)])),
            ("b", Json::object([("nested", Json::Null)])),
        ]);
        let pretty = value.to_pretty();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn escapes_control_characters() {
        let value = Json::String("a\"b\\c\n\u{1}".into());
        let printed = value.to_compact();
        assert_eq!(printed, r#""a\"b\\c\n\u0001""#);
        assert_eq!(parse(&printed).unwrap(), value);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Number(42.0).to_compact(), "42");
        assert_eq!(Json::Number(-3.25).to_compact(), "-3.25");
    }
}
