//! Serde-style serialization traits and blanket impls for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use crate::{Json, JsonError};

/// Types that can render themselves as a [`Json`] value.
///
/// The in-repo stand-in for `serde::Serialize`; implement it with
/// [`crate::impl_json_struct!`] / [`crate::impl_json_enum!`] where possible.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from a [`Json`] value.
///
/// The in-repo stand-in for `serde::Deserialize`.
pub trait Deserialize: Sized {
    /// Rebuilds a value from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first shape mismatch.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_number()
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl Serialize for $ty {
                /// # Panics
                ///
                /// Panics if the value cannot be represented exactly as an
                /// `f64` (magnitude above 2^53) — silent precision loss on a
                /// round-trip would be worse than a loud failure.
                fn to_json(&self) -> Json {
                    let as_f64 = *self as f64;
                    assert!(
                        as_f64 as $ty == *self,
                        "{} value {} is not exactly representable in JSON",
                        stringify!($ty),
                        self
                    );
                    Json::Number(as_f64)
                }
            }

            impl Deserialize for $ty {
                fn from_json(value: &Json) -> Result<Self, JsonError> {
                    let n = value.expect_number()?;
                    if n.fract() != 0.0 {
                        return Err(JsonError::new(format!(
                            "expected integer, found {n}"
                        )));
                    }
                    if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                        return Err(JsonError::new(format!(
                            "integer {n} out of range for {}", stringify!($ty)
                        )));
                    }
                    Ok(n as $ty)
                }
            }
        )+
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.expect_array()?;
        if items.len() != 2 {
            return Err(JsonError::new(format!(
                "expected 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.expect_array()?;
        if items.len() != 3 {
            return Err(JsonError::new(format!(
                "expected 3-element array, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    /// Keys are emitted in sorted order so that output is deterministic.
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by_key(|(k, _)| k.as_str());
        Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.expect_array()?.iter().map(T::from_json).collect()
    }
}

impl Serialize for Duration {
    /// Durations serialize as fractional seconds, matching how the paper
    /// reports runtimes.
    fn to_json(&self) -> Json {
        Json::Number(self.as_secs_f64())
    }
}

impl Deserialize for Duration {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let secs = value.expect_number()?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(JsonError::new(format!("invalid duration {secs}")));
        }
        Ok(Duration::from_secs_f64(secs))
    }
}

/// Implements [`Serialize`]/[`Deserialize`] for a struct, mapping each listed
/// field to a same-named JSON object key — the stand-in for
/// `#[derive(Serialize, Deserialize)]`.
///
/// Works wherever the expanding crate can name the fields, so crates use it
/// on their own private-field types.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::object([
                    $((stringify!($field), $crate::Serialize::to_json(&self.$field)),)+
                ])
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: value.field(stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`Serialize`]/[`Deserialize`] for a fieldless enum as its
/// variant name string.
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_json(&self) -> $crate::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                };
                $crate::Json::String(name.to_owned())
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match value.expect_str()? {
                    $(s if s == stringify!($variant) => Ok(<$ty>::$variant),)+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_str, to_string};

    #[derive(Debug, PartialEq)]
    struct Sample {
        name: String,
        count: usize,
        ratio: f64,
        tags: Vec<String>,
        parent: Option<u64>,
    }
    crate::impl_json_struct!(Sample {
        name,
        count,
        ratio,
        tags,
        parent
    });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Thorough,
    }
    crate::impl_json_enum!(Mode { Fast, Thorough });

    #[test]
    fn struct_macro_round_trips() {
        let s = Sample {
            name: "pcr".into(),
            count: 7,
            ratio: 0.25,
            tags: vec!["a".into(), "b".into()],
            parent: None,
        };
        let back: Sample = from_str(&to_string(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn enum_macro_round_trips() {
        assert_eq!(to_string(&Mode::Thorough), "\"Thorough\"");
        assert_eq!(from_str::<Mode>("\"Fast\"").unwrap(), Mode::Fast);
        assert!(from_str::<Mode>("\"Slow\"").is_err());
    }

    #[test]
    fn missing_field_errors_name_the_field() {
        let err = from_str::<Sample>(r#"{"name":"x"}"#).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn integer_bounds_are_checked() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u64>("1.5").is_err());
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
    }

    #[test]
    #[should_panic(expected = "not exactly representable")]
    fn oversized_integers_fail_loudly_instead_of_corrupting() {
        let _ = to_string(&((1u64 << 53) + 1));
    }

    #[test]
    fn durations_serialize_as_seconds() {
        let d = Duration::from_millis(1500);
        assert_eq!(to_string(&d), "1.5");
        assert_eq!(from_str::<Duration>("1.5").unwrap(), d);
        assert!(from_str::<Duration>("-1").is_err());
    }

    #[test]
    fn maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u64);
        m.insert("b".to_owned(), 2u64);
        let back: BTreeMap<String, u64> = from_str(&to_string(&m)).unwrap();
        assert_eq!(back, m);
    }
}
