//! The JSON value type and the shared error type.

use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve insertion order so that serialized files are stable and
/// diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; all quantities in this workspace
    /// (seconds, counts, coordinates) fit without precision loss.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value of `key`, or a "missing field" error mentioning the key.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not an object or lacks the key.
    pub fn expect_field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}` in {}", self.kind())))
    }

    /// Looks up a key and deserializes it.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the field is missing or has the wrong shape;
    /// the error message names the field.
    pub fn field<T: crate::Deserialize>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.expect_field(key)?)
            .map_err(|e| JsonError::new(format!("field `{key}`: {e}")))
    }

    /// The elements if `self` is an array.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not an array.
    pub fn expect_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The string contents if `self` is a string.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not a string.
    pub fn expect_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The numeric value if `self` is a number.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not a number.
    pub fn expect_number(&self) -> Result<f64, JsonError> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(JsonError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// Error produced by parsing or by a shape mismatch during deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        JsonError(message.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}
