//! Scaling, device insertion and iterative compression.

use std::collections::{BTreeSet, HashSet};

use biochip_arch::{Architecture, GridEdgeId, NodeId};

use crate::design::{Dimensions, LayoutOptions, PhysicalDesign, PlacedDevice, RoutedSegment};

/// Step 1: scale the architectural-synthesis result by the channel pitch.
///
/// The dimensions are the bounding box of all grid nodes touched by kept
/// segments or devices (`d_r` of Table 2).
#[must_use]
pub fn scale_architecture(architecture: &Architecture, options: &LayoutOptions) -> Dimensions {
    let (rows, cols) = occupied_extent(architecture);
    Dimensions::new(
        cols as u64 * options.channel_pitch.max(1),
        rows as u64 * options.channel_pitch.max(1),
    )
}

/// Step 2: expand the layout so that every grid track is wide enough for a
/// device footprint plus one channel, and every segment is at least the
/// storage length (`d_e` of Table 2).
#[must_use]
pub fn expand_layout(
    scaled: &Dimensions,
    architecture: &Architecture,
    options: &LayoutOptions,
) -> Dimensions {
    let (rows, cols) = occupied_extent(architecture);
    let track = options.device_size + options.storage_segment_length.max(options.channel_pitch);
    let _ = scaled;
    Dimensions::new(cols as u64 * track, rows as u64 * track)
}

/// Step 3: iteratively compress the expanded layout towards the upper-right
/// corner.
///
/// Each iteration removes one channel-pitch unit from a grid column or row
/// that does not need it (tracks without devices shrink to the channel
/// pitch; tracks with devices keep the device footprint). Channel segments
/// whose straight-line span becomes shorter than the storage length receive
/// bend points so that their fluidic length is preserved, exactly as in
/// Fig. 7 of the paper.
#[must_use]
pub fn compress_layout(
    expanded: Dimensions,
    architecture: &Architecture,
    options: &LayoutOptions,
) -> PhysicalDesign {
    let grid = architecture.grid();
    let placement = architecture.placement();
    let used: &BTreeSet<GridEdgeId> = architecture.connection_graph().used_edges();

    // Which grid rows/columns are occupied at all, and which contain devices.
    let mut used_rows = BTreeSet::new();
    let mut used_cols = BTreeSet::new();
    let mut device_rows = HashSet::new();
    let mut device_cols = HashSet::new();
    for node in occupied_nodes(architecture) {
        let coord = grid.coord(node);
        used_rows.insert(coord.row);
        used_cols.insert(coord.col);
        if placement.device_at(node).is_some() {
            device_rows.insert(coord.row);
            device_cols.insert(coord.col);
        }
    }

    // Final track widths after compression.
    let track_width = |has_device: bool| -> u64 {
        if has_device {
            options.device_size
        } else {
            options.channel_pitch.max(1)
        }
    };
    let compressed_width: u64 = used_cols
        .iter()
        .map(|c| track_width(device_cols.contains(c)))
        .sum();
    let compressed_height: u64 = used_rows
        .iter()
        .map(|r| track_width(device_rows.contains(r)))
        .sum();
    let compressed = Dimensions::new(compressed_width.max(1), compressed_height.max(1));

    // Number of one-unit compression iterations needed to go from the
    // expanded bounding box to the compressed one.
    let compression_iterations = (expanded.width.saturating_sub(compressed.width)
        + expanded.height.saturating_sub(compressed.height))
        as usize;

    // Physical device positions: prefix sums of compressed track widths.
    let col_offset = |col: usize| -> u64 {
        used_cols
            .iter()
            .take_while(|&&c| c < col)
            .map(|c| track_width(device_cols.contains(c)))
            .sum()
    };
    let row_offset = |row: usize| -> u64 {
        used_rows
            .iter()
            .take_while(|&&r| r < row)
            .map(|r| track_width(device_rows.contains(r)))
            .sum()
    };
    let mut devices = Vec::new();
    for node in occupied_nodes(architecture) {
        if let Some(device) = placement.device_at(node) {
            let coord = grid.coord(node);
            devices.push(PlacedDevice {
                device,
                x: col_offset(coord.col),
                y: row_offset(coord.row),
                size: options.device_size,
            });
        }
    }
    devices.sort_by_key(|d| d.device);

    // Channel segments: span after compression, with bends restoring the
    // storage length where needed.
    let storage_edges: HashSet<GridEdgeId> = architecture
        .storage_routes()
        .iter()
        .filter_map(|r| r.cache_edge)
        .collect();
    let mut segments = Vec::new();
    for &edge in used {
        let (a, b) = grid.endpoints(edge);
        let (ca, cb) = (grid.coord(a), grid.coord(b));
        let span = (col_offset(ca.col).abs_diff(col_offset(cb.col)))
            + (row_offset(ca.row).abs_diff(row_offset(cb.row)));
        let span = span.max(1);
        let used_for_storage = storage_edges.contains(&edge);
        let required = if used_for_storage {
            options.storage_segment_length.max(1)
        } else {
            1
        };
        let length = span.max(required);
        // One bend per missing channel-pitch unit, zig-zagging inside the
        // track (Fig. 7(c) of the paper).
        let bends = (length - span) as usize;
        segments.push(RoutedSegment {
            edge,
            span,
            length,
            bends,
            used_for_storage,
        });
    }

    PhysicalDesign {
        scaled: scale_architecture(architecture, options),
        expanded,
        compressed,
        devices,
        segments,
        compression_iterations,
    }
}

/// Grid nodes that appear in the final chip: device nodes plus the endpoints
/// of every kept segment.
fn occupied_nodes(architecture: &Architecture) -> Vec<NodeId> {
    let grid = architecture.grid();
    let mut nodes: BTreeSet<NodeId> = architecture
        .placement()
        .device_nodes()
        .iter()
        .copied()
        .collect();
    for &edge in architecture.connection_graph().used_edges() {
        let (a, b) = grid.endpoints(edge);
        nodes.insert(a);
        nodes.insert(b);
    }
    nodes.into_iter().collect()
}

/// Number of grid rows and columns spanned by the occupied nodes.
fn occupied_extent(architecture: &Architecture) -> (usize, usize) {
    let grid = architecture.grid();
    let nodes = occupied_nodes(architecture);
    if nodes.is_empty() {
        return (1, 1);
    }
    let rows: Vec<usize> = nodes.iter().map(|&n| grid.coord(n).row).collect();
    let cols: Vec<usize> = nodes.iter().map(|&n| grid.coord(n).col).collect();
    let row_span = rows.iter().max().unwrap() - rows.iter().min().unwrap() + 1;
    let col_span = cols.iter().max().unwrap() - cols.iter().min().unwrap() + 1;
    (row_span, col_span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biochip_arch::{ArchitectureSynthesizer, SynthesisOptions};
    use biochip_assay::library;
    use biochip_schedule::{ListScheduler, ScheduleProblem, Scheduler};

    fn pcr_architecture() -> (Architecture, LayoutOptions) {
        let problem = ScheduleProblem::new(library::pcr())
            .with_mixers(2)
            .with_transport_time(5);
        let schedule = ListScheduler::default().schedule(&problem).unwrap();
        let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
            .synthesize(&problem, &schedule)
            .unwrap();
        (arch, LayoutOptions::default())
    }

    #[test]
    fn compression_never_grows_the_layout() {
        let (arch, options) = pcr_architecture();
        let scaled = scale_architecture(&arch, &options);
        let expanded = expand_layout(&scaled, &arch, &options);
        let design = compress_layout(expanded, &arch, &options);
        assert!(design.compressed.width <= design.expanded.width);
        assert!(design.compressed.height <= design.expanded.height);
        assert!(design.compressed.area() <= design.expanded.area());
        assert!(design.compression_ratio() >= 0.0);
    }

    #[test]
    fn expansion_is_larger_than_the_scaled_result() {
        let (arch, options) = pcr_architecture();
        let scaled = scale_architecture(&arch, &options);
        let expanded = expand_layout(&scaled, &arch, &options);
        assert!(expanded.area() >= scaled.area());
    }

    #[test]
    fn devices_do_not_overlap_after_compression() {
        let (arch, options) = pcr_architecture();
        let design = crate::generate_layout(&arch, &options);
        for (i, a) in design.devices.iter().enumerate() {
            for b in design.devices.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{:?} overlaps {:?}", a, b);
            }
        }
        assert_eq!(design.devices.len(), arch.placement().len());
    }

    #[test]
    fn storage_segments_keep_their_length_through_bends() {
        let (arch, options) = pcr_architecture();
        let design = crate::generate_layout(&arch, &options);
        assert_eq!(design.segments.len(), arch.used_edge_count());
        for segment in &design.segments {
            assert!(segment.length >= segment.span);
            if segment.used_for_storage {
                assert!(segment.length >= options.storage_segment_length);
            }
            assert_eq!(segment.bends as u64, segment.length - segment.span);
        }
    }

    #[test]
    fn all_benchmarks_produce_layouts() {
        for (name, graph) in library::paper_benchmarks() {
            let problem = ScheduleProblem::new(graph)
                .with_mixers(3)
                .with_detectors(2)
                .with_heaters(1);
            let schedule = ListScheduler::default().schedule(&problem).unwrap();
            let arch = ArchitectureSynthesizer::default()
                .synthesize(&problem, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let design = crate::generate_layout(&arch, &LayoutOptions::default());
            assert!(design.compressed.area() > 0, "{name}");
            assert!(
                design.compressed.area() <= design.expanded.area(),
                "{name}: compression must not grow the chip"
            );
        }
    }
}
