//! Physical-design data types.

use serde::{Deserialize, Serialize};

use biochip_arch::{DeviceId, GridEdgeId};

/// Width × height of a (rectangular) chip region, in channel-pitch units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Dimensions {
    /// Horizontal extent.
    pub width: u64,
    /// Vertical extent.
    pub height: u64,
}

impl Dimensions {
    /// Creates a dimension pair.
    #[must_use]
    pub fn new(width: u64, height: u64) -> Self {
        Dimensions { width, height }
    }

    /// Chip area.
    #[must_use]
    pub fn area(&self) -> u64 {
        self.width * self.height
    }
}

impl std::fmt::Display for Dimensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// Options of the physical-design flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutOptions {
    /// Minimum distance between two parallel channels (the scaling unit of
    /// the whole layout).
    pub channel_pitch: u64,
    /// Side length of a device footprint, in channel-pitch units.
    pub device_size: u64,
    /// Minimum length of a channel segment used as storage, in channel-pitch
    /// units (a segment must hold one full fluid sample).
    pub storage_segment_length: u64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            channel_pitch: 1,
            device_size: 3,
            storage_segment_length: 2,
        }
    }
}

/// A device with its physical position (lower-left corner) and footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedDevice {
    /// The device.
    pub device: DeviceId,
    /// Horizontal position of the lower-left corner.
    pub x: u64,
    /// Vertical position of the lower-left corner.
    pub y: u64,
    /// Side length of the square footprint.
    pub size: u64,
}

impl PlacedDevice {
    /// Whether two device footprints overlap.
    #[must_use]
    pub fn overlaps(&self, other: &PlacedDevice) -> bool {
        self.x < other.x + other.size
            && other.x < self.x + self.size
            && self.y < other.y + other.size
            && other.y < self.y + self.size
    }
}

/// A channel segment in the physical layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedSegment {
    /// The grid edge this segment realizes.
    pub edge: GridEdgeId,
    /// Straight-line span between its two end points after compression.
    pub span: u64,
    /// Physical length including the bends inserted to satisfy the storage
    /// length requirement (always ≥ `span`).
    pub length: u64,
    /// Number of bend points inserted.
    pub bends: usize,
    /// Whether the segment caches a fluid sample at some point of the assay.
    pub used_for_storage: bool,
}

/// The result of the physical-design flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalDesign {
    /// Dimensions straight after architectural synthesis, scaled by the
    /// channel pitch (`d_r` in Table 2).
    pub scaled: Dimensions,
    /// Dimensions after device insertion and segment stretching (`d_e`).
    pub expanded: Dimensions,
    /// Dimensions after iterative compression (`d_p`).
    pub compressed: Dimensions,
    /// Devices with their physical positions in the compressed layout.
    pub devices: Vec<PlacedDevice>,
    /// Channel segments with their physical lengths in the compressed layout.
    pub segments: Vec<RoutedSegment>,
    /// Number of compression iterations performed.
    pub compression_iterations: usize,
}

impl PhysicalDesign {
    /// Area reduction achieved by compression, as a fraction of the expanded
    /// area (0 when compression achieved nothing).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.expanded.area() == 0 {
            return 0.0;
        }
        1.0 - self.compressed.area() as f64 / self.expanded.area() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_area_and_display() {
        let d = Dimensions::new(4, 6);
        assert_eq!(d.area(), 24);
        assert_eq!(d.to_string(), "4x6");
    }

    #[test]
    fn device_overlap_detection() {
        let a = PlacedDevice {
            device: DeviceId(0),
            x: 0,
            y: 0,
            size: 3,
        };
        let b = PlacedDevice {
            device: DeviceId(1),
            x: 3,
            y: 0,
            size: 3,
        };
        let c = PlacedDevice {
            device: DeviceId(2),
            x: 2,
            y: 2,
            size: 3,
        };
        assert!(!a.overlaps(&b), "touching footprints do not overlap");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn compression_ratio_bounds() {
        let design = PhysicalDesign {
            scaled: Dimensions::new(4, 4),
            expanded: Dimensions::new(16, 16),
            compressed: Dimensions::new(8, 8),
            devices: Vec::new(),
            segments: Vec::new(),
            compression_iterations: 3,
        };
        assert!((design.compression_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn default_options_are_sane() {
        let o = LayoutOptions::default();
        assert!(o.channel_pitch >= 1);
        assert!(o.device_size >= 1);
        assert!(o.storage_segment_length >= 1);
    }
}
