//! Physical design: from a connection graph to a compact chip layout.
//!
//! This crate implements Section 3.3 of the paper. The architectural
//! synthesis result (devices and switches on a connection grid, with the
//! kept channel segments) is turned into a physical layout in three steps:
//!
//! 1. **Scaling** — the connection graph is scaled by the minimum channel
//!    pitch chosen by the designer ([`LayoutOptions::channel_pitch`]),
//!    giving the `d_r` dimensions of Table 2.
//! 2. **Device insertion** — devices have real footprints, so the layout is
//!    expanded to make room for them; every channel segment is stretched to
//!    at least the minimum storage length (`d_e` dimensions).
//! 3. **Iterative compression** — the layout is repeatedly compacted towards
//!    the upper-right corner, one grid row or column at a time, inserting
//!    bend points so that segments keep their required length, until no
//!    further compression is possible (`d_p` dimensions).
//!
//! # Example
//!
//! ```
//! use biochip_assay::library;
//! use biochip_schedule::{ListScheduler, ScheduleProblem, Scheduler};
//! use biochip_arch::{ArchitectureSynthesizer, SynthesisOptions};
//! use biochip_layout::{generate_layout, LayoutOptions};
//!
//! let problem = ScheduleProblem::new(library::pcr()).with_mixers(2);
//! let schedule = ListScheduler::default().schedule(&problem)?;
//! let arch = ArchitectureSynthesizer::new(SynthesisOptions::default())
//!     .synthesize(&problem, &schedule)?;
//! let design = generate_layout(&arch, &LayoutOptions::default());
//! assert!(design.compressed.area() <= design.expanded.area());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod design;
mod render;

pub use compress::{compress_layout, expand_layout, scale_architecture};
pub use design::{Dimensions, LayoutOptions, PhysicalDesign, PlacedDevice, RoutedSegment};
pub use render::render_ascii;

use biochip_arch::Architecture;

/// Runs the full physical-design flow (scale → insert devices → compress).
#[must_use]
pub fn generate_layout(architecture: &Architecture, options: &LayoutOptions) -> PhysicalDesign {
    let scaled = scale_architecture(architecture, options);
    let expanded = expand_layout(&scaled, architecture, options);
    compress_layout(expanded, architecture, options)
}
