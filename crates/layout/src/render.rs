//! ASCII rendering of synthesized chips (used for the Fig. 11 snapshots).

use std::collections::HashSet;

use biochip_arch::{Architecture, GridEdgeId};

/// Renders the connection graph of a synthesized chip as ASCII art.
///
/// Device nodes are drawn as `D`, switches as `+`, kept channel segments as
/// `-`/`|`, and the segments in `highlight` (for example the paths and cache
/// segments active at one instant, as in the paper's Fig. 11) as `=`/`#`.
/// Unused grid positions are blank.
#[must_use]
pub fn render_ascii(architecture: &Architecture, highlight: &HashSet<GridEdgeId>) -> String {
    let grid = architecture.grid();
    let placement = architecture.placement();
    let used = architecture.connection_graph().used_edges();

    // Character canvas: every grid node occupies a 2x2 cell (node + the
    // half-edges to its right and below).
    let mut canvas = vec![vec![' '; grid.cols() * 2]; grid.rows() * 2];
    for node in grid.nodes() {
        let coord = grid.coord(node);
        let (r, c) = (coord.row * 2, coord.col * 2);
        let is_device = placement.device_at(node).is_some();
        let touched = grid.incident_edges(node).iter().any(|e| used.contains(e));
        canvas[r][c] = if is_device {
            'D'
        } else if touched {
            '+'
        } else {
            ' '
        };
    }
    for &edge in used {
        let (a, b) = grid.endpoints(edge);
        let (ca, cb) = (grid.coord(a), grid.coord(b));
        let emphasized = highlight.contains(&edge);
        if ca.row == cb.row {
            let col = ca.col.min(cb.col) * 2 + 1;
            canvas[ca.row * 2][col] = if emphasized { '=' } else { '-' };
        } else {
            let row = ca.row.min(cb.row) * 2 + 1;
            canvas[row][ca.col * 2] = if emphasized { '#' } else { '|' };
        }
    }

    let mut out = String::new();
    for row in canvas {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biochip_assay::library;
    use biochip_schedule::{ListScheduler, ScheduleProblem, Scheduler};

    fn pcr_architecture() -> Architecture {
        let problem = ScheduleProblem::new(library::pcr())
            .with_mixers(2)
            .with_transport_time(5);
        let schedule = ListScheduler::default().schedule(&problem).unwrap();
        biochip_arch::ArchitectureSynthesizer::default()
            .synthesize(&problem, &schedule)
            .unwrap()
    }

    #[test]
    fn rendering_contains_devices_and_segments() {
        let arch = pcr_architecture();
        let art = render_ascii(&arch, &HashSet::new());
        assert_eq!(art.matches('D').count(), arch.placement().len());
        let drawn_edges = art.matches('-').count() + art.matches('|').count();
        assert_eq!(drawn_edges, arch.used_edge_count());
    }

    #[test]
    fn highlighted_edges_use_emphasis_characters() {
        let arch = pcr_architecture();
        let highlight: HashSet<GridEdgeId> = arch
            .connection_graph()
            .used_edges()
            .iter()
            .copied()
            .take(2)
            .collect();
        let art = render_ascii(&arch, &highlight);
        let emphasized = art.matches('=').count() + art.matches('#').count();
        assert_eq!(emphasized, highlight.len());
    }

    #[test]
    fn rendering_is_rectangular_text() {
        let arch = pcr_architecture();
        let art = render_ascii(&arch, &HashSet::new());
        assert!(art.lines().count() >= arch.grid().rows());
    }
}
