//! The committed baseline of accepted pre-existing findings, and the
//! stale-entry honesty check.
//!
//! Format (hand-editable, line-oriented — no JSON dependency so the lint
//! stays std-only and the diff stays reviewable):
//!
//! ```text
//! # biochip-lint-baseline/v1
//! # rule <tab> path <tab> key <tab> note
//! P1 <tab> crates/server/src/http.rs <tab> a1b2c3d4e5f60718 <tab> bounded by the parse above
//! ```
//!
//! The `key` is the finding's [`crate::Finding::baseline_key`]: an FNV-1a
//! hash of the trimmed source-line text plus an occurrence index, so the
//! entry survives unrelated edits (line numbers shifting) but dies with
//! the code it describes — at which point the runner reports it **stale**
//! and exits non-zero, mirroring `ci/check_bench_provenance.sh`'s rule
//! that committed artifacts may not outlive the code they vouch for.

use std::collections::HashMap;
use std::path::Path;

use crate::{Finding, Rule};

/// Magic first line of a baseline file.
pub const HEADER: &str = "# biochip-lint-baseline/v1";

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule of the accepted finding.
    pub rule: Rule,
    /// Workspace-relative path.
    pub path: String,
    /// [`crate::Finding::baseline_key`] of the accepted finding.
    pub key: String,
    /// Why it was accepted (free text, required).
    pub note: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable files or malformed lines.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("cannot read baseline `{}`: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("baseline `{}`: {e}", path.display()))
    }

    /// Parses baseline text.
    ///
    /// # Errors
    ///
    /// Returns a message for a bad header or malformed entry lines.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first.trim() == HEADER => {}
            _ => return Err(format!("first line must be `{HEADER}`")),
        }
        let mut entries = Vec::new();
        for (no, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (rule, path, key, note) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or("").trim(),
            );
            let rule = Rule::from_name(rule)
                .ok_or_else(|| format!("line {}: unknown rule `{rule}`", no + 2))?;
            if path.is_empty() || key.is_empty() || note.is_empty() {
                return Err(format!(
                    "line {}: expected `rule<TAB>path<TAB>key<TAB>note` with all fields",
                    no + 2
                ));
            }
            entries.push(BaselineEntry {
                rule,
                path: path.to_owned(),
                key: key.to_owned(),
                note: note.to_owned(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline back to its file format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        out.push_str("# rule\tpath\tkey\tnote\n");
        for e in &self.entries {
            out.push_str(&format!("{}\t{}\t{}\t{}\n", e.rule, e.path, e.key, e.note));
        }
        out
    }
}

/// Outcome of matching findings (already waiver-filtered) against a
/// baseline.
#[derive(Debug, Default)]
pub struct BaselineMatch {
    /// Findings with no baseline entry (paired with their computed key) —
    /// these fail the run.
    pub new: Vec<(Finding, String)>,
    /// Findings covered by the baseline (paired with their key).
    pub accepted: Vec<(Finding, String)>,
    /// Baseline entries that matched nothing — stale; these also fail.
    pub stale: Vec<BaselineEntry>,
}

/// Matches findings against the baseline. `keys` maps each finding (by
/// index) to its computed baseline key.
#[must_use]
pub fn match_findings(
    findings: Vec<Finding>,
    keys: &[String],
    baseline: &Baseline,
) -> BaselineMatch {
    let mut unmatched: HashMap<(Rule, &str, &str), usize> = HashMap::new();
    for (idx, e) in baseline.entries.iter().enumerate() {
        unmatched.insert((e.rule, e.path.as_str(), e.key.as_str()), idx);
    }
    let mut result = BaselineMatch::default();
    let mut used = vec![false; baseline.entries.len()];
    for (finding, key) in findings.into_iter().zip(keys) {
        let lookup = (finding.rule, finding.path.as_str(), key.as_str());
        if let Some(&idx) = unmatched.get(&lookup) {
            used[idx] = true;
            result.accepted.push((finding, key.clone()));
        } else {
            result.new.push((finding, key.clone()));
        }
    }
    for (idx, entry) in baseline.entries.iter().enumerate() {
        if !used[idx] {
            result.stale.push(entry.clone());
        }
    }
    result
}

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash over more bytes.
#[must_use]
pub fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
