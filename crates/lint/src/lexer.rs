//! A real (if deliberately small) Rust token lexer.
//!
//! The rule passes cannot be grep: a `HashMap` inside a string literal, an
//! `unwrap()` in a doc comment or a `{` in a `format!` template must not
//! confuse scope tracking or pattern matching. This lexer understands every
//! token shape that matters for that:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte/C strings, and raw strings with an
//!   arbitrary number of `#` guards (`r"…"`, `br##"…"##`, `cr#"…"#`),
//! * the `'a'` char vs `'a` lifetime ambiguity (including `'\''` and
//!   `'_'`),
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`),
//! * numbers with suffixes, and single-character punctuation.
//!
//! It does not validate Rust — unterminated literals are closed at EOF and
//! reported as ordinary tokens — because the lint must keep walking a file
//! even when it is mid-edit.

/// The coarse classification a rule pass needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, stored without the
    /// `r#` prefix).
    Ident,
    /// A lifetime such as `'a` or `'static` (stored without the quote).
    Lifetime,
    /// Any string-like literal: `"…"`, `b"…"`, `r#"…"#`, `c"…"`.
    Str,
    /// A character or byte-character literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal (integer or float, suffix included).
    Number,
    /// A single punctuation character.
    Punct,
    /// `// …` (text stored without the slashes, untrimmed).
    LineComment,
    /// `/* … */`, nesting respected (text stored without the delimiters).
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse kind; see [`TokenKind`].
    pub kind: TokenKind,
    /// Token text. Identifiers/numbers carry their spelling, comments their
    /// content, strings their *body* (delimiters stripped), puncts the
    /// single character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }
}

/// Lexes `source` into a flat token stream (comments included).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' | 'c' if self.literal_prefix() => {}
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.out.push(Token::new(TokenKind::Punct, c, line));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out
            .push(Token::new(TokenKind::LineComment, text, line));
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out
            .push(Token::new(TokenKind::BlockComment, text, line));
    }

    /// Handles the `r` / `b` / `c` prefix family: raw strings (`r"`,
    /// `r#"`…), byte strings (`b"`), byte chars (`b'`), C strings (`c"`),
    /// combined prefixes (`br#"`, `cr"`) and raw identifiers (`r#match`).
    /// Returns `true` when it consumed a literal; `false` leaves the
    /// identifier path to run.
    fn literal_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // Longest prefix of [brc] characters that ends at a quote or `#`.
        let mut prefix_len = 1;
        if matches!(
            (c0, self.peek(1)),
            ('b' | 'c', Some('r')) | ('r', Some('b' | 'c'))
        ) {
            prefix_len = 2;
        }
        let raw = (0..prefix_len).any(|i| self.peek(i) == Some('r'));
        let after = self.peek(prefix_len);
        match after {
            Some('"') if !raw => {
                for _ in 0..=prefix_len {
                    self.bump();
                }
                self.string_body(line);
                true
            }
            Some('\'') if c0 == 'b' && prefix_len == 1 => {
                self.bump();
                self.bump();
                self.char_body(line);
                true
            }
            Some('"') | Some('#') if raw => {
                // Count the `#` guards. `r#ident` (one hash, then an ident
                // start) is a raw identifier, not a raw string.
                let mut hashes = 0;
                while self.peek(prefix_len + hashes) == Some('#') {
                    hashes += 1;
                }
                match self.peek(prefix_len + hashes) {
                    Some('"') => {
                        for _ in 0..prefix_len + hashes + 1 {
                            self.bump();
                        }
                        self.raw_string_body(line, hashes);
                        true
                    }
                    Some(c) if hashes == 1 && prefix_len == 1 && is_ident_start(c) => {
                        // Raw identifier `r#match`.
                        self.bump(); // r
                        self.bump(); // #
                        self.ident(line);
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Consumes a normal (escaped) string body after the opening quote.
    fn string_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        self.out.push(Token::new(TokenKind::Str, text, line));
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        self.string_body(line);
    }

    /// Consumes a raw string body after `r#*"`, looking for `"#*`.
    fn raw_string_body(&mut self, line: u32, hashes: usize) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let closing = (0..hashes).all(|i| self.peek(i) == Some('#'));
                if closing {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
        }
        self.out.push(Token::new(TokenKind::Str, text, line));
    }

    /// Consumes a char body after the opening `'` (escapes included).
    fn char_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        self.out.push(Token::new(TokenKind::Char, text, line));
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{1F600}'` — escapes are always chars.
            Some('\\') => self.char_body(line),
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                if self.peek(1) == Some('\'') {
                    // `'a'` — a one-character char literal.
                    self.char_body(line);
                } else {
                    // `'a`, `'static`, `'_` — a lifetime.
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.out.push(Token::new(TokenKind::Lifetime, name, line));
                }
            }
            // `'('` and friends: a one-character char literal of punctuation.
            Some(_) if self.peek(1) == Some('\'') => self.char_body(line),
            _ => {
                // Stray quote (malformed source) — emit as punctuation and
                // keep going.
                self.out.push(Token::new(TokenKind::Punct, '\'', line));
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.push(Token::new(TokenKind::Ident, text, line));
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                // `1.5` yes; `1..10` and `1.method()` no.
                || (c == '.'
                    && !text.contains('.')
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.push(Token::new(TokenKind::Number, text, line));
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}
