//! `biochip-lint` — workspace static analysis for the determinism and
//! panic-safety contracts.
//!
//! The load-bearing invariant of this workspace is that synthesis output is
//! **bit-identical** across thread counts, warm vs. cold starts, and oracle
//! on/off. The dynamic gates (`parallel_determinism.rs`,
//! `warm_determinism.rs`, `oracle_equivalence.rs`, the CI `output_key`
//! comparisons) catch a violation only when a test seed happens to exercise
//! it; this crate catches the *source patterns* that cause violations before
//! they ever run, plus the panic hazards that PRs 4 and 7 swept by hand.
//!
//! Rules (see [`Rule`]):
//!
//! * **D1** — unordered `HashMap`/`HashSet` iteration in result-bearing
//!   crates, unless the statement feeds an order-insensitive sink.
//! * **D2** — wall-clock reads (`Instant::now`/`SystemTime`) in
//!   result-bearing crates outside the explicitly timing-excluded paths.
//! * **D3** — RNG construction from nondeterministic sources anywhere.
//! * **P1** — `unwrap`/`expect`/`panic!`/slice-indexing on the server
//!   request paths and pool worker paths.
//! * **L1** — inconsistent lock-acquisition order, and lock guards held
//!   across blocking calls, in `pool`/`server`.
//! * **U1** — `unsafe` inventory: every `unsafe` block/impl carries a
//!   `// SAFETY:` comment, and unsafe-free crates say
//!   `#![forbid(unsafe_code)]` in every target entry file.
//!
//! Findings are suppressed only by an inline waiver
//! (`// biochip-lint: allow(RULE, "reason")` on the finding's line or the
//! line above) or by an entry in the committed baseline file; the binary
//! exits non-zero on any new unwaived finding **and** on baseline entries
//! that no longer match anything (the stale-baseline honesty check).
//!
//! Everything here is std-only, like the rest of the offline stand-ins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod scopes;
pub mod workspace;

use std::fmt;

use lexer::{Token, TokenKind};
use scopes::TokenCtx;

/// The rule that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Unordered map/set iteration in result-bearing crates.
    D1,
    /// Wall-clock reads in result-bearing crates.
    D2,
    /// Nondeterministic RNG construction.
    D3,
    /// Panic hazards on request/worker paths.
    P1,
    /// Lock-order / guard-across-blocking-call hazards.
    L1,
    /// Unsafe inventory (`SAFETY:` comments, `forbid(unsafe_code)`).
    U1,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::P1, Rule::L1, Rule::U1];

    /// The rule's short name as written in waivers and the baseline.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::P1 => "P1",
            Rule::L1 => "L1",
            Rule::U1 => "U1",
        }
    }

    /// Parses a rule name (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.name().eq_ignore_ascii_case(name.trim()))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the hazard.
    pub message: String,
}

impl Finding {
    /// The finding's line-number-independent identity used by the baseline:
    /// `rule` + `path` + an FNV-1a hash of the trimmed source line text and
    /// the finding's occurrence index among same-text findings in the file.
    /// Editing *other* lines of the file does not invalidate it.
    #[must_use]
    pub fn baseline_key(&self, source_line: &str, occurrence: usize) -> String {
        let mut hash = baseline::fnv1a(source_line.trim().as_bytes());
        hash = baseline::fnv1a_continue(hash, &occurrence.to_le_bytes());
        format!("{hash:016x}")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// An inline waiver comment: `// biochip-lint: allow(RULE, "reason")`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived rule.
    pub rule: Rule,
    /// The justification string (required non-empty).
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Lines the waiver applies to: its own line and the next code line.
    pub applies_to: Vec<u32>,
}

/// A fully lexed-and-scoped source file, ready for rule passes.
pub struct SourceFile {
    /// Workspace-relative path (used in findings).
    pub rel_path: String,
    /// The crate directory name under `crates/` (e.g. `arch`, `server`).
    pub crate_name: String,
    /// Token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-token scope context, parallel to `tokens`.
    pub ctx: Vec<TokenCtx>,
    /// Raw source lines (for baseline keys and messages).
    pub lines: Vec<String>,
    /// Parsed inline waivers.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    /// Lexes and scopes `source`.
    #[must_use]
    pub fn parse(rel_path: &str, crate_name: &str, source: &str) -> SourceFile {
        let tokens = lexer::lex(source);
        let ctx = scopes::scan(&tokens);
        let lines: Vec<String> = source.lines().map(str::to_owned).collect();
        let waivers = parse_waivers(&tokens);
        SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name: crate_name.to_owned(),
            tokens,
            ctx,
            lines,
            waivers,
        }
    }

    /// The trimmed text of a 1-based source line (empty if out of range).
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", |l| l.trim())
    }
}

/// Result of analyzing one file: surviving findings plus waiver accounting.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings that were *not* waived (baseline matching happens later).
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline waiver.
    pub waived: Vec<Finding>,
    /// Waivers that suppressed nothing (likely stale).
    pub unused_waivers: Vec<Waiver>,
}

/// Runs every applicable rule over one file and applies inline waivers.
///
/// `rel_path` selects path-scoped behaviour (e.g. only `src/` files get the
/// determinism rules); `crate_name` selects crate-scoped rules.
#[must_use]
pub fn analyze_source(rel_path: &str, crate_name: &str, source: &str) -> FileAnalysis {
    let file = SourceFile::parse(rel_path, crate_name, source);
    let mut raw = Vec::new();
    rules::run_file_rules(&file, &mut raw);
    apply_waivers(&file, raw)
}

/// Splits raw findings into surviving vs. waived, and reports unused
/// waivers.
#[must_use]
pub fn apply_waivers(file: &SourceFile, raw: Vec<Finding>) -> FileAnalysis {
    let mut analysis = FileAnalysis::default();
    let mut used = vec![false; file.waivers.len()];
    for finding in raw {
        let waiver = file
            .waivers
            .iter()
            .enumerate()
            .find(|(_, w)| w.rule == finding.rule && w.applies_to.contains(&finding.line));
        if let Some((idx, _)) = waiver {
            used[idx] = true;
            analysis.waived.push(finding);
        } else {
            analysis.findings.push(finding);
        }
    }
    for (idx, waiver) in file.waivers.iter().enumerate() {
        if !used[idx] {
            analysis.unused_waivers.push(waiver.clone());
        }
    }
    analysis
}

/// Extracts `// biochip-lint: allow(RULE, "reason")` waivers from the
/// comment tokens. A malformed waiver (unknown rule, missing reason) is
/// ignored — it will fail to suppress, which surfaces it immediately.
#[must_use]
pub fn parse_waivers(tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some((rule, reason)) = parse_waiver_text(&tok.text) else {
            continue;
        };
        // Applies to the comment's own line and the first code line after
        // it (so the waiver can sit above the offending statement).
        let mut applies_to = vec![tok.line];
        if let Some(next) = tokens[i + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        {
            applies_to.push(next.line);
        }
        out.push(Waiver {
            rule,
            reason,
            line: tok.line,
            applies_to,
        });
    }
    out
}

/// Parses the waiver payload out of one comment's text.
fn parse_waiver_text(comment: &str) -> Option<(Rule, String)> {
    let rest = comment.split("biochip-lint:").nth(1)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule_name, reason_part) = inner.split_once(',')?;
    let rule = Rule::from_name(rule_name)?;
    let reason = reason_part.trim().trim_matches('"').trim();
    if reason.is_empty() {
        return None;
    }
    Some((rule, reason.to_owned()))
}
