//! The `biochip-lint` binary.
//!
//! ```text
//! biochip-lint [--root DIR] [--baseline FILE] [--write-baseline] [--list-waived]
//! ```
//!
//! Exit codes: `0` clean, `1` new unwaived findings or stale baseline
//! entries, `2` usage / I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use biochip_lint::baseline::{Baseline, BaselineEntry};
use biochip_lint::workspace;

const USAGE: &str = "usage: biochip-lint [options]

Static analysis over every workspace crate, enforcing the determinism
(D1 map-iteration order, D2 wall-clock, D3 RNG sources), panic-safety
(P1), lock-discipline (L1) and unsafe-inventory (U1) contracts.

options:
  --root DIR        workspace root (default: walk up from the current dir)
  --baseline FILE   accepted-findings file (default: <root>/ci/lint-baseline.tsv)
  --write-baseline  rewrite the baseline to accept all current findings
  --list-waived     also print findings suppressed by inline waivers
  -h, --help        this help
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("biochip-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut list_waived = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--write-baseline" => write_baseline = true,
            "--list-waived" => list_waived = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            workspace::find_root(&cwd)
                .ok_or("no workspace Cargo.toml found above the current directory")?
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ci/lint-baseline.tsv"));
    let baseline = Baseline::load(&baseline_path)?;

    let report = workspace::run(&root, &baseline)?;

    if list_waived {
        for f in &report.waived {
            println!("waived: {f}");
        }
    }
    for (path, waiver) in &report.unused_waivers {
        println!(
            "warning: {path}:{}: unused waiver for {} (\"{}\") — remove it or fix the rule match",
            waiver.line, waiver.rule, waiver.reason
        );
    }
    for (finding, _) in &report.new {
        println!("{finding}");
    }
    for entry in &report.stale {
        println!(
            "stale baseline entry: {} {} {} ({}) — the finding it accepted no longer exists; \
             remove the entry",
            entry.rule, entry.path, entry.key, entry.note
        );
    }

    if write_baseline {
        let mut next = Baseline::default();
        // Keep the notes of still-valid accepted entries, then append the
        // new findings with a placeholder note to fill in.
        for (finding, key) in report.baselined.iter().chain(report.new.iter()) {
            let note = baseline
                .entries
                .iter()
                .find(|e| e.rule == finding.rule && e.path == finding.path && &e.key == key)
                .map_or("TODO: justify or fix", |e| e.note.as_str());
            next.entries.push(BaselineEntry {
                rule: finding.rule,
                path: finding.path.clone(),
                key: key.clone(),
                note: note.to_owned(),
            });
        }
        if let Some(parent) = baseline_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create `{}`: {e}", parent.display()))?;
        }
        std::fs::write(&baseline_path, next.render())
            .map_err(|e| format!("cannot write `{}`: {e}", baseline_path.display()))?;
        println!(
            "wrote {} entries to {}",
            next.entries.len(),
            baseline_path.display()
        );
    }

    let by_rule: Vec<String> = report
        .new_by_rule()
        .into_iter()
        .map(|(rule, n)| format!("{rule}:{n}"))
        .collect();
    println!(
        "biochip-lint: {} crates, {} files — {} new finding(s){}{}, {} waived, {} baselined, \
         {} stale baseline entr{}",
        report.crates,
        report.files,
        report.new.len(),
        if by_rule.is_empty() {
            String::new()
        } else {
            format!(" ({})", by_rule.join(", "))
        },
        if report.unused_waivers.is_empty() {
            String::new()
        } else {
            format!(", {} unused waiver(s)", report.unused_waivers.len())
        },
        report.waived.len(),
        report.baselined.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" },
    );

    Ok(report.is_clean() || write_baseline)
}
