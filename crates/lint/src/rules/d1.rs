//! **D1** — unordered `HashMap`/`HashSet` iteration in result-bearing
//! crates.
//!
//! `std`'s hash maps iterate in randomized order (`RandomState` seeds per
//! process), so any loop over one whose effect can escape into a schedule,
//! a route, a report or a serialized document is a determinism bug waiting
//! for a hasher change. The pass:
//!
//! 1. collects every name declared or annotated as `HashMap`/`HashSet` in
//!    the file (lets, fields, params — `name: HashMap<…>` and
//!    `name = HashMap::new()` shapes),
//! 2. flags `.iter()` / `.keys()` / `.values()` / `.drain()` /
//!    `.into_iter()` / `.retain()` calls and `for … in &name` loops on
//!    those names,
//! 3. unless the same statement visibly feeds an **order-insensitive
//!    sink** — a sort, a count/sum/min/max reduction, a membership test,
//!    or a collect into a `BTreeMap`/`BTreeSet` (or back into a hash
//!    map).
//!
//! Anything genuinely order-safe for a subtler reason takes a waiver with
//! the reason written down.

use std::collections::HashSet;

use crate::lexer::TokenKind;
use crate::rules::{is_punct, report};
use crate::scopes::{next_code, prev_code};
use crate::{Finding, Rule, SourceFile};

/// Iterator-producing methods whose order is the map's order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Statement-level sinks that make iteration order unobservable.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    // Collecting into an ordered (or another unordered) container erases
    // the iteration order.
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
];

/// Runs the pass.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let map_names = collect_map_names(file);
    if map_names.is_empty() {
        return;
    }
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident || !map_names.contains(tok.text.as_str()) {
            continue;
        }
        if file.ctx[i].in_test {
            continue;
        }
        // `name.iter()` and friends.
        if let Some(dot) = next_code(&file.tokens, i + 1) {
            if is_punct(file, dot, ".") {
                if let Some(m) = next_code(&file.tokens, dot + 1) {
                    let method = &file.tokens[m];
                    if method.kind == TokenKind::Ident
                        && ITER_METHODS.contains(&method.text.as_str())
                        && !statement_has_sink(file, m)
                    {
                        report(
                            out,
                            Rule::D1,
                            file,
                            tok.line,
                            format!(
                                "iteration over unordered map/set `{}` via `.{}()` — order can \
                                 escape into results; sort, reduce order-insensitively, or waive \
                                 with the reason order cannot escape",
                                tok.text, method.text
                            ),
                        );
                        continue;
                    }
                }
            }
        }
        // `for pat in &name {` / `for pat in name {`.
        if is_for_loop_subject(file, i) {
            report(
                out,
                Rule::D1,
                file,
                tok.line,
                format!(
                    "`for` loop over unordered map/set `{}` — iteration order can escape into \
                     results; iterate a sorted view or waive with the reason order cannot escape",
                    tok.text
                ),
            );
        }
    }
}

/// Collects identifiers declared/annotated as `HashMap`/`HashSet` in this
/// file: `name: [&][mut] [path::]Hash{Map,Set}<…>` and
/// `name = [path::]Hash{Map,Set}::new/with_capacity/from(…)`.
fn collect_map_names(file: &SourceFile) -> HashSet<&str> {
    let mut names = HashSet::new();
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        if let Some(name) = binder_before(file, i) {
            names.insert(name);
        }
    }
    names
}

/// Walks backwards from a `HashMap`/`HashSet` type token over the path
/// (`std :: collections ::`) and any `&`/`mut`/lifetime sigils; if the
/// walk lands on a `name :` annotation or `name =` binding, returns the
/// bound name.
fn binder_before(file: &SourceFile, i: usize) -> Option<&str> {
    let mut j = prev_code(&file.tokens, i)?;
    loop {
        let t = &file.tokens[j];
        // `::` lexes as two `:` puncts; a path pair means skip it and the
        // segment ident before it (`collections`, `std`…).
        if is_punct(file, j, ":")
            && prev_code(&file.tokens, j).is_some_and(|p| is_punct(file, p, ":"))
        {
            let first_colon = prev_code(&file.tokens, j)?;
            let segment = prev_code(&file.tokens, first_colon)?;
            if file.tokens[segment].kind != TokenKind::Ident {
                return None;
            }
            j = prev_code(&file.tokens, segment)?;
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "&") | (TokenKind::Ident, "mut") | (TokenKind::Lifetime, _) => {
                j = prev_code(&file.tokens, j)?;
            }
            // `name : HashMap<…>` or `name = HashMap::new()`.
            (TokenKind::Punct, ":" | "=") => {
                let p = prev_code(&file.tokens, j)?;
                let binder = &file.tokens[p];
                return (binder.kind == TokenKind::Ident && binder.text != "mut")
                    .then_some(binder.text.as_str());
            }
            _ => return None,
        }
    }
}

/// Whether the ident at `i` is the subject of a `for … in` loop:
/// backwards over optional `&`/`mut` sits the keyword `in`.
fn is_for_loop_subject(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    loop {
        let Some(p) = prev_code(&file.tokens, j) else {
            return false;
        };
        let t = &file.tokens[p];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "&") | (TokenKind::Ident, "mut") => j = p,
            (TokenKind::Ident, "in") => return true,
            _ => return false,
        }
    }
}

/// Scans forward from the iterator-method token to the end of the
/// statement (`;`, or the `{` opening a loop body) looking for an
/// order-insensitive sink.
fn statement_has_sink(file: &SourceFile, from: usize) -> bool {
    let mut paren_depth = 0i32;
    for j in from..file.tokens.len().min(from + 160) {
        let t = &file.tokens[j];
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => paren_depth += 1,
                ")" | "]" => {
                    paren_depth -= 1;
                    if paren_depth < 0 {
                        // End of the enclosing call — e.g. the map iter was
                        // an argument; stop at the expression boundary.
                        return false;
                    }
                }
                ";" if paren_depth == 0 => return false,
                "{" if paren_depth == 0 => return false,
                _ => {}
            },
            TokenKind::Ident if ORDER_INSENSITIVE_SINKS.contains(&t.text.as_str()) => {
                return true;
            }
            _ => {}
        }
    }
    false
}
