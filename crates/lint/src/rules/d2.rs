//! **D2** — wall-clock reads in result-bearing crates.
//!
//! `Instant::now()` / `SystemTime::now()` inside code whose output is
//! serialized or content-keyed makes two identical runs produce different
//! bytes. `telemetry` (whose whole job is timing) and the bench/CLI/server
//! infrastructure are out of scope by crate; within the result-bearing
//! crates, the explicitly timing-excluded functions
//! ([`crate::rules::D2_EXEMPT_FNS`], e.g. `synthesize_timed` whose timings
//! are stripped before serialization) are skipped; everything else needs a
//! waiver stating why the clock value cannot reach serialized output.

use crate::lexer::TokenKind;
use crate::rules::{is_ident, is_punct, report, D2_EXEMPT_FNS};
use crate::scopes::next_code;
use crate::{Finding, Rule, SourceFile};

/// Runs the pass.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let clock = match tok.text.as_str() {
            "Instant" | "SystemTime" => tok.text.as_str(),
            _ => continue,
        };
        // Require the `Type::now(` shape so `Instant` in a type position
        // (fields, signatures) doesn't fire — storing an instant someone
        // else read is the *caller's* finding.
        let Some(c1) = next_code(&file.tokens, i + 1) else {
            continue;
        };
        let Some(c2) = next_code(&file.tokens, c1 + 1) else {
            continue;
        };
        let Some(m) = next_code(&file.tokens, c2 + 1) else {
            continue;
        };
        if !(is_punct(file, c1, ":") && is_punct(file, c2, ":") && is_ident(file, m, "now")) {
            continue;
        }
        let ctx = &file.ctx[i];
        if ctx.in_test {
            continue;
        }
        if let Some(fn_name) = &ctx.fn_name {
            if D2_EXEMPT_FNS.contains(&fn_name.as_str()) {
                continue;
            }
        }
        let where_ = ctx
            .fn_name
            .as_deref()
            .map_or_else(String::new, |f| format!(" in `{f}`"));
        report(
            out,
            Rule::D2,
            file,
            tok.line,
            format!(
                "wall-clock read `{clock}::now()`{where_} in result-bearing crate \
                 `{}` — two identical runs diverge; keep clocks in telemetry or \
                 timing-excluded paths, or waive with the reason the value cannot \
                 reach serialized output",
                file.crate_name
            ),
        );
    }
}
