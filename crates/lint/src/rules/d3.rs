//! **D3** — RNG construction from nondeterministic sources.
//!
//! Every random stream in this workspace is a seeded `biochip_rand`
//! xoshiro stream, forked with `split_seed` for parallel work — that is
//! what makes multi-start placement and fanned-out route scoring
//! reproducible. Constructing an RNG from the environment (`thread_rng`,
//! `from_entropy`, `OsRng`, raw `getrandom`) or seeding one from the clock
//! silently breaks every byte-identity gate, so it is flagged everywhere,
//! in every crate.

use crate::lexer::TokenKind;
use crate::rules::report;
use crate::{Finding, Rule, SourceFile};

/// Identifiers that mean "entropy from the environment".
const NONDETERMINISTIC_SOURCES: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "EntropyRng",
    "random_seed",
];

/// Runs the pass.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident || !NONDETERMINISTIC_SOURCES.contains(&tok.text.as_str()) {
            continue;
        }
        if file.ctx[i].in_test {
            continue;
        }
        report(
            out,
            Rule::D3,
            file,
            tok.line,
            format!(
                "nondeterministic RNG source `{}` — all randomness must come from \
                 seeded `biochip_rand` streams (fork with `split_seed`); waive only \
                 with the reason the stream cannot influence results",
                tok.text
            ),
        );
    }
}
