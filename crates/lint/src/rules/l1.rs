//! **L1** — lock discipline in `pool` and `server`.
//!
//! Two hazards, both deadlock-shaped:
//!
//! * **Inconsistent acquisition order** — if one code path locks `jobs`
//!   then `cache` and another locks `cache` then `jobs`, two threads can
//!   deadlock. The pass records every nested acquisition (a lock taken
//!   while another guard is live) per crate and flags pairs that occur in
//!   both orders.
//! * **Guard held across a blocking call** — `recv`, `join`, `accept`,
//!   `sleep`… while holding a mutex stalls every other thread that needs
//!   it (and can deadlock against the woken side). `Condvar::wait(guard)`
//!   is the sanctioned exception: it *releases* the guard while parked.
//!
//! Guards are tracked per function with statement-level liveness: a
//! let-bound guard lives until its block closes or an explicit
//! `drop(guard)`; a temporary (`foo.lock().unwrap().bar`) lives to the end
//! of its statement.

use std::collections::HashMap;

use crate::lexer::TokenKind;
use crate::rules::{has_empty_args, is_method_call, is_punct, report};
use crate::scopes::{next_code, prev_code};
use crate::{Finding, Rule, SourceFile};

/// Calls that park or block the calling thread.
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "accept",
    "sleep",
    "park",
    "wait",
    "wait_timeout",
    "wait_while",
    "read_to_end",
    "read_to_string",
];

/// A live guard inside a function walk.
#[derive(Debug, Clone)]
struct Guard {
    receiver: String,
    /// Binding name for let-bound guards; `None` for temporaries.
    var: Option<String>,
    /// Brace depth at the binding (guard dies when depth drops below).
    depth: u32,
    /// Temporaries die at the next `;` at their depth.
    temp: bool,
    line: u32,
}

/// Per-file pass: guard-across-blocking-call findings, plus collection of
/// nested acquisition order into `orders` for the crate-level check.
fn walk(
    file: &SourceFile,
    out: &mut Vec<Finding>,
    orders: &mut HashMap<(String, String), Vec<(String, u32)>>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut current_fn: Option<String> = None;

    for i in 0..file.tokens.len() {
        let tok = &file.tokens[i];
        let ctx = &file.ctx[i];
        if ctx.in_test {
            continue;
        }
        // Entering a different function resets guard tracking.
        if ctx.fn_name != current_fn {
            current_fn = ctx.fn_name.clone();
            guards.clear();
        }
        match tok.kind {
            TokenKind::Punct if tok.text == "}" => {
                guards.retain(|g| g.depth < ctx.depth);
            }
            TokenKind::Punct if tok.text == ";" => {
                guards.retain(|g| !(g.temp && g.depth == ctx.depth));
            }
            TokenKind::Ident if tok.text == "drop" => {
                // `drop(guard)` ends a binding's life early.
                if let Some(open) = next_code(&file.tokens, i + 1) {
                    if is_punct(file, open, "(") {
                        if let Some(arg) = next_code(&file.tokens, open + 1) {
                            let name = &file.tokens[arg].text;
                            guards.retain(|g| g.var.as_deref() != Some(name.as_str()));
                        }
                    }
                }
            }
            TokenKind::Ident
                if matches!(tok.text.as_str(), "lock" | "read" | "write")
                    && is_method_call(file, i)
                    && has_empty_args(file, i) =>
            {
                let Some(receiver) = receiver_of(file, i) else {
                    continue;
                };
                // Nested acquisition: record (held, new) order pairs.
                for held in &guards {
                    if held.receiver != receiver {
                        orders
                            .entry((held.receiver.clone(), receiver.clone()))
                            .or_default()
                            .push((file.rel_path.clone(), tok.line));
                    }
                }
                let (var, depth_of_let) = let_binding_of(file, i);
                guards.push(Guard {
                    receiver,
                    temp: var.is_none(),
                    var,
                    depth: depth_of_let.unwrap_or(ctx.depth),
                    line: tok.line,
                });
            }
            TokenKind::Ident
                if BLOCKING_CALLS.contains(&tok.text.as_str())
                    && !guards.is_empty()
                    && is_call(file, i) =>
            {
                // Condvar handshake: `cv.wait(guard)` / `cv.wait_timeout(guard, …)`
                // consumes (and releases) the guard it is passed.
                if tok.text.starts_with("wait") {
                    if let Some(arg) = first_arg_ident(file, i) {
                        if let Some(pos) =
                            guards.iter().position(|g| g.var.as_deref() == Some(&arg))
                        {
                            // The guard is re-acquired on return; liveness
                            // unchanged, and parking with it is fine.
                            let _ = pos;
                            continue;
                        }
                    }
                }
                let held: Vec<&str> = guards.iter().map(|g| g.receiver.as_str()).collect();
                report(
                    out,
                    Rule::L1,
                    file,
                    tok.line,
                    format!(
                        "blocking call `{}` while holding lock guard(s) on `{}` (acquired \
                         line {}) — release the guard first, or waive with the reason the \
                         block is bounded and deadlock-free",
                        tok.text,
                        held.join("`, `"),
                        guards[0].line
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Per-file entry: emits guard-across-blocking-call findings only (order
/// consistency needs the whole crate; see [`check_crate`]).
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut orders = HashMap::new();
    walk(file, out, &mut orders);
}

/// Crate-level entry: re-walks every file collecting nested-acquisition
/// orders, then flags pairs acquired in both orders anywhere in the crate.
pub fn check_crate(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut orders: HashMap<(String, String), Vec<(String, u32)>> = HashMap::new();
    let mut sink = Vec::new(); // blocking-call findings already reported per-file
    for file in files {
        walk(file, &mut sink, &mut orders);
    }
    // Deterministic iteration for reporting: sort the pair keys.
    let mut pairs: Vec<&(String, String)> = orders.keys().collect();
    pairs.sort();
    for pair in pairs {
        let (a, b) = pair;
        if a >= b {
            continue; // visit each unordered pair once, from its (a<b) side
        }
        let reverse = (b.clone(), a.clone());
        if !orders.contains_key(&reverse) {
            continue;
        }
        for (path, line) in orders[pair].iter().chain(orders[&reverse].iter()) {
            let file = files.iter().find(|f| &f.rel_path == path);
            if let Some(file) = file {
                report(
                    out,
                    Rule::L1,
                    file,
                    *line,
                    format!(
                        "inconsistent lock order: `{a}` and `{b}` are acquired in both \
                         orders in this crate — pick one order (or waive with the reason \
                         the paths cannot contend)"
                    ),
                );
            }
        }
    }
}

/// Normalized receiver of a `.lock()`-style call: the last identifier of
/// the dotted chain before the method (`self.jobs.lock()` → `jobs`,
/// `state.lock()` → `state`). `None` when the receiver is not a simple
/// path (e.g. a call result), where ordering identity is unknowable.
fn receiver_of(file: &SourceFile, method: usize) -> Option<String> {
    let dot = prev_code(&file.tokens, method)?;
    if !is_punct(file, dot, ".") {
        return None;
    }
    let recv = prev_code(&file.tokens, dot)?;
    let t = &file.tokens[recv];
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}

/// If the lock expression is let-bound (`let [mut] g = …lock()…` or
/// `[while/if] let Ok(g) = …lock()`), returns the binding name and the
/// brace depth of the binding.
fn let_binding_of(file: &SourceFile, method: usize) -> (Option<String>, Option<u32>) {
    // Walk back a bounded window looking for `let` before any `;`/`{`.
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut j = method;
    for _ in 0..24 {
        let Some(p) = prev_code(&file.tokens, j) else {
            break;
        };
        let t = &file.tokens[p];
        match t.kind {
            TokenKind::Punct if t.text == ";" || t.text == "{" || t.text == "}" => break,
            TokenKind::Ident if t.text == "let" => {
                // Binding name: the last plain ident between `let` and `=`
                // that isn't a pattern constructor.
                let name = names.iter().rev().find_map(|(_, n)| {
                    (!matches!(n.as_str(), "Ok" | "Err" | "Some" | "mut")).then(|| n.clone())
                });
                return (name, Some(file.ctx[p].depth));
            }
            TokenKind::Ident => names.push((p, t.text.clone())),
            _ => {}
        }
        j = p;
    }
    (None, None)
}

/// Whether the ident at `i` is called (followed by `(`), either as a
/// method or a free function.
fn is_call(file: &SourceFile, i: usize) -> bool {
    next_code(&file.tokens, i + 1).is_some_and(|n| is_punct(file, n, "("))
}

/// First argument of the call at ident `i`, when it is a plain identifier.
fn first_arg_ident(file: &SourceFile, i: usize) -> Option<String> {
    let open = next_code(&file.tokens, i + 1)?;
    if !is_punct(file, open, "(") {
        return None;
    }
    let arg = next_code(&file.tokens, open + 1)?;
    let t = &file.tokens[arg];
    (t.kind == TokenKind::Ident).then(|| t.text.clone())
}
